//! Property-based tests of the multiset algebra.
//!
//! The framework relies on the bag-algebra identities stated implicitly in
//! the paper (`S_{B∪C} = S_B ⊎ S_C`, associativity/commutativity of `⊎`);
//! these tests pin them down.

use proptest::prelude::*;
use selfsim_multiset::Multiset;

fn multiset_strategy() -> impl Strategy<Value = Multiset<i32>> {
    proptest::collection::vec(-50i32..50, 0..40).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn union_is_commutative(x in multiset_strategy(), y in multiset_strategy()) {
        prop_assert_eq!(x.union(&y), y.union(&x));
    }

    #[test]
    fn union_is_associative(
        x in multiset_strategy(),
        y in multiset_strategy(),
        z in multiset_strategy(),
    ) {
        prop_assert_eq!(x.union(&y).union(&z), x.union(&y.union(&z)));
    }

    #[test]
    fn empty_is_union_identity(x in multiset_strategy()) {
        let empty = Multiset::new();
        prop_assert_eq!(x.union(&empty), x.clone());
        prop_assert_eq!(empty.union(&x), x);
    }

    #[test]
    fn union_cardinality_adds(x in multiset_strategy(), y in multiset_strategy()) {
        prop_assert_eq!(x.union(&y).len(), x.len() + y.len());
    }

    #[test]
    fn difference_then_union_recovers_superset(
        x in multiset_strategy(),
        y in multiset_strategy(),
    ) {
        // (x ⊎ y) ∖ y == x
        let u = x.union(&y);
        prop_assert_eq!(u.difference(&y), x);
    }

    #[test]
    fn intersection_is_subset_of_both(x in multiset_strategy(), y in multiset_strategy()) {
        let i = x.intersection(&y);
        prop_assert!(i.is_subset(&x));
        prop_assert!(i.is_subset(&y));
    }

    #[test]
    fn inclusion_exclusion_on_cardinality(x in multiset_strategy(), y in multiset_strategy()) {
        // |x ∩ y| + |x ∖ y| == |x|
        prop_assert_eq!(x.intersection(&y).len() + x.difference(&y).len(), x.len());
    }

    #[test]
    fn to_vec_is_sorted_and_has_right_len(x in multiset_strategy()) {
        let v = x.to_vec();
        prop_assert_eq!(v.len(), x.len());
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn count_sums_to_len(x in multiset_strategy()) {
        let total: usize = x.iter_counts().map(|(_, c)| c).sum();
        prop_assert_eq!(total, x.len());
    }

    #[test]
    fn from_iter_is_order_insensitive(mut v in proptest::collection::vec(-50i32..50, 0..30)) {
        let a: Multiset<i32> = v.iter().copied().collect();
        v.reverse();
        let b: Multiset<i32> = v.into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn insert_then_remove_is_identity(x in multiset_strategy(), v in -50i32..50) {
        let mut y = x.clone();
        y.insert(v);
        prop_assert!(y.remove(&v));
        prop_assert_eq!(y, x);
    }

    #[test]
    fn map_identity_is_identity(x in multiset_strategy()) {
        prop_assert_eq!(x.map(|v| *v), x);
    }

    #[test]
    fn fill_with_preserves_len(x in multiset_strategy(), v in -50i32..50) {
        let y = x.fill_with(v);
        prop_assert_eq!(y.len(), x.len());
        if !x.is_empty() {
            prop_assert_eq!(y.distinct_len(), 1);
            prop_assert_eq!(y.count(&v), x.len());
        }
    }
}
