//! Multisets (bags) of agent states.
//!
//! The model of Chandy & Charpentier (ICDCS 2007) represents the collective
//! state of a set of agents as a *multiset* of agent states: two agents may
//! be in the same local state, and the identity of agents is deliberately
//! abstracted away (self-similar algorithms treat every group of agents the
//! same way, regardless of identities).
//!
//! [`Multiset<T>`] is an ordered multiset backed by a `BTreeMap<T, usize>`,
//! giving deterministic iteration order, cheap union (the paper's `⊎`
//! operator), and value/multiplicity queries.  All of the paper's algebraic
//! machinery — super-idempotent functions, the conservation law, variant
//! functions in summation form — is expressed over this type.
//!
//! # Examples
//!
//! ```
//! use selfsim_multiset::Multiset;
//!
//! let x: Multiset<i64> = [3, 5, 3, 7].into_iter().collect();
//! assert_eq!(x.len(), 4);
//! assert_eq!(x.count(&3), 2);
//!
//! let y: Multiset<i64> = [3, 9].into_iter().collect();
//! let u = x.union(&y);
//! assert_eq!(u.len(), 6);
//! assert_eq!(u.count(&3), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multiset;
mod ops;
mod signed;

pub use multiset::{IntoIter, Iter, Multiset};
pub use ops::{map, max, min, partition_by, sum_by};
pub use signed::SignedCounts;
