//! The [`Multiset`] container.

use std::collections::BTreeMap;
use std::fmt;
use std::iter::FromIterator;

use serde::{Deserialize, Serialize};

/// An ordered multiset (bag) of values.
///
/// Elements must implement [`Ord`]; the container stores each distinct value
/// with a multiplicity and iterates in ascending value order, so two
/// multisets constructed from the same elements in different orders are
/// structurally identical.  This determinism matters for the reproduction:
/// the distributed functions `f` of the paper are functions *of multisets*,
/// and the test-suite compares their outputs for equality.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
    len: usize,
}

impl<T: Ord> Default for Multiset<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
            len: 0,
        }
    }

    /// Creates a multiset containing a single element.
    pub fn singleton(value: T) -> Self {
        let mut m = Multiset::new();
        m.insert(value);
        m
    }

    /// Returns the total number of elements, counting multiplicities.
    ///
    /// The paper calls this the *cardinality* of the multiset of agent
    /// states; it always equals the number of agents in the group.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the multiset contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the number of *distinct* values.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Returns the multiplicity of `value`.
    pub fn count(&self, value: &T) -> usize {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Returns `true` if `value` occurs at least once.
    pub fn contains(&self, value: &T) -> bool {
        self.counts.contains_key(value)
    }

    /// Inserts one occurrence of `value`.
    pub fn insert(&mut self, value: T) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.len += 1;
    }

    /// Inserts `n` occurrences of `value`.
    pub fn insert_n(&mut self, value: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.len += n;
    }

    /// Removes one occurrence of `value`; returns `true` if an occurrence
    /// was present and removed.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.counts.get_mut(value) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(value);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes up to `n` occurrences of `value`, returning how many were
    /// actually removed (saturating at the current multiplicity).
    pub fn remove_n(&mut self, value: &T, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self.counts.get_mut(value) {
            Some(c) if *c > n => {
                *c -= n;
                self.len -= n;
                n
            }
            Some(&mut c) => {
                self.counts.remove(value);
                self.len -= c;
                c
            }
            None => 0,
        }
    }

    /// Removes all occurrences of `value`, returning how many were removed.
    pub fn remove_all(&mut self, value: &T) -> usize {
        match self.counts.remove(value) {
            Some(c) => {
                self.len -= c;
                c
            }
            None => 0,
        }
    }

    /// The smallest element, if any.
    pub fn min_value(&self) -> Option<&T> {
        self.counts.keys().next()
    }

    /// The largest element, if any.
    pub fn max_value(&self) -> Option<&T> {
        self.counts.keys().next_back()
    }

    /// Iterates over the elements in ascending order, repeating each value
    /// according to its multiplicity.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: self.counts.iter(),
            current: None,
        }
    }

    /// Iterates over `(value, multiplicity)` pairs in ascending value order.
    pub fn iter_counts(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    /// Iterates over the distinct values in ascending order.
    pub fn distinct(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Multiset union `self ⊎ other` (multiplicities add).
    ///
    /// This is the paper's `∪` on bold (multiset) operands: for disjoint
    /// agent groups `B` and `C`, `S_{B∪C} = S_B ⊎ S_C`.
    pub fn union(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        for (v, c) in other.iter_counts() {
            out.insert_n(v.clone(), c);
        }
        out
    }

    /// Multiset difference: multiplicities subtract, saturating at zero.
    pub fn difference(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = Multiset::new();
        for (v, c) in self.iter_counts() {
            let o = other.count(v);
            if c > o {
                out.insert_n(v.clone(), c - o);
            }
        }
        out
    }

    /// Multiset intersection: multiplicities take the minimum.
    pub fn intersection(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = Multiset::new();
        for (v, c) in self.iter_counts() {
            let o = other.count(v);
            if o > 0 {
                out.insert_n(v.clone(), c.min(o));
            }
        }
        out
    }

    /// Returns `true` if `self` is a sub-multiset of `other` (every value's
    /// multiplicity in `self` is at most its multiplicity in `other`).
    pub fn is_subset(&self, other: &Self) -> bool {
        self.iter_counts().all(|(v, c)| c <= other.count(v))
    }

    /// Applies `g` to every element, producing a new multiset.
    pub fn map<U: Ord>(&self, mut g: impl FnMut(&T) -> U) -> Multiset<U> {
        let mut out = Multiset::new();
        for (v, c) in self.iter_counts() {
            // `g` may map distinct inputs to equal outputs; re-inserting n
            // times keeps multiplicities correct in that case.
            let mapped = g(v);
            out.insert_n(mapped, c);
        }
        out
    }

    /// Sums `g` over all elements (with multiplicity).
    pub fn fold<Acc>(&self, init: Acc, mut g: impl FnMut(Acc, &T) -> Acc) -> Acc {
        let mut acc = init;
        for v in self.iter() {
            acc = g(acc, v);
        }
        acc
    }

    /// Collects the elements into a sorted `Vec`, repeating multiplicities.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }

    /// Replaces every element with `value`, preserving cardinality.
    ///
    /// This is the shape of consensus-style distributed functions: the
    /// minimum example maps every agent state to the group minimum.
    pub fn fill_with(&self, value: T) -> Self
    where
        T: Clone,
    {
        let mut out = Multiset::new();
        out.insert_n(value, self.len);
        out
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{v:?}")?;
        }
        f.write_str("}")
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for v in iter {
            m.insert(v);
        }
        m
    }
}

impl<T: Ord + Clone> From<&[T]> for Multiset<T> {
    fn from(slice: &[T]) -> Self {
        slice.iter().cloned().collect()
    }
}

impl<T: Ord, const N: usize> From<[T; N]> for Multiset<T> {
    fn from(values: [T; N]) -> Self {
        values.into_iter().collect()
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Borrowing iterator over elements of a [`Multiset`], with multiplicity.
pub struct Iter<'a, T> {
    inner: std::collections::btree_map::Iter<'a, T, usize>,
    current: Option<(&'a T, usize)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            if let Some((v, remaining)) = self.current {
                if remaining > 0 {
                    self.current = Some((v, remaining - 1));
                    return Some(v);
                }
                self.current = None;
            }
            match self.inner.next() {
                Some((v, &c)) => self.current = Some((v, c)),
                None => return None,
            }
        }
    }
}

impl<'a, T: Ord> IntoIterator for &'a Multiset<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning iterator over elements of a [`Multiset`], with multiplicity.
pub struct IntoIter<T> {
    inner: std::collections::btree_map::IntoIter<T, usize>,
    current: Option<(T, usize)>,
}

impl<T: Clone> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        loop {
            if let Some((v, remaining)) = self.current.take() {
                if remaining > 0 {
                    let out = v.clone();
                    self.current = Some((v, remaining - 1));
                    return Some(out);
                }
            }
            match self.inner.next() {
                Some((v, c)) => self.current = Some((v, c)),
                None => return None,
            }
        }
    }
}

impl<T: Ord + Clone> IntoIterator for Multiset<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter {
            inner: self.counts.into_iter(),
            current: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_multiset_has_no_elements() {
        let m: Multiset<i32> = Multiset::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.distinct_len(), 0);
        assert_eq!(m.min_value(), None);
        assert_eq!(m.max_value(), None);
    }

    #[test]
    fn insert_and_count() {
        let mut m = Multiset::new();
        m.insert(3);
        m.insert(3);
        m.insert(5);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
        assert_eq!(m.count(&3), 2);
        assert_eq!(m.count(&5), 1);
        assert_eq!(m.count(&7), 0);
        assert!(m.contains(&3));
        assert!(!m.contains(&7));
    }

    #[test]
    fn insert_n_zero_is_noop() {
        let mut m: Multiset<i32> = Multiset::new();
        m.insert_n(3, 0);
        assert!(m.is_empty());
        assert!(!m.contains(&3));
    }

    #[test]
    fn remove_decrements_multiplicity() {
        let mut m: Multiset<i32> = [1, 1, 2].into();
        assert!(m.remove(&1));
        assert_eq!(m.count(&1), 1);
        assert!(m.remove(&1));
        assert_eq!(m.count(&1), 0);
        assert!(!m.remove(&1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_n_saturates_at_multiplicity() {
        let mut m: Multiset<i32> = [4, 4, 4, 9].into();
        assert_eq!(m.remove_n(&4, 0), 0);
        assert_eq!(m.remove_n(&4, 2), 2);
        assert_eq!(m.count(&4), 1);
        assert_eq!(m.remove_n(&4, 5), 1);
        assert!(!m.contains(&4));
        assert_eq!(m.remove_n(&4, 1), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_all_removes_every_occurrence() {
        let mut m: Multiset<i32> = [4, 4, 4, 9].into();
        assert_eq!(m.remove_all(&4), 3);
        assert_eq!(m.remove_all(&4), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_with_multiplicity() {
        let m: Multiset<i32> = [5, 3, 7, 3].into();
        let v: Vec<i32> = m.iter().copied().collect();
        assert_eq!(v, vec![3, 3, 5, 7]);
        let v2: Vec<i32> = m.clone().into_iter().collect();
        assert_eq!(v2, vec![3, 3, 5, 7]);
    }

    #[test]
    fn union_adds_multiplicities() {
        let x: Multiset<i32> = [3, 5, 3].into();
        let y: Multiset<i32> = [3, 9].into();
        let u = x.union(&y);
        assert_eq!(u.len(), 5);
        assert_eq!(u.count(&3), 3);
        assert_eq!(u.count(&9), 1);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let x: Multiset<i32> = [1, 2, 2].into();
        let e = Multiset::new();
        assert_eq!(x.union(&e), x);
        assert_eq!(e.union(&x), x);
    }

    #[test]
    fn difference_saturates() {
        let x: Multiset<i32> = [1, 1, 2, 3].into();
        let y: Multiset<i32> = [1, 2, 2].into();
        let d = x.difference(&y);
        assert_eq!(d.to_vec(), vec![1, 3]);
    }

    #[test]
    fn intersection_takes_minimum_multiplicity() {
        let x: Multiset<i32> = [1, 1, 2, 3].into();
        let y: Multiset<i32> = [1, 2, 2].into();
        let i = x.intersection(&y);
        assert_eq!(i.to_vec(), vec![1, 2]);
    }

    #[test]
    fn subset_relation() {
        let x: Multiset<i32> = [1, 2].into();
        let y: Multiset<i32> = [1, 1, 2, 3].into();
        assert!(x.is_subset(&y));
        assert!(!y.is_subset(&x));
        assert!(Multiset::<i32>::new().is_subset(&x));
    }

    #[test]
    fn map_preserves_cardinality_and_merges_collisions() {
        let x: Multiset<i32> = [1, 2, 3, 4].into();
        let y = x.map(|v| v % 2);
        assert_eq!(y.len(), 4);
        assert_eq!(y.count(&0), 2);
        assert_eq!(y.count(&1), 2);
    }

    #[test]
    fn fill_with_is_consensus_shape() {
        let x: Multiset<i32> = [3, 5, 3, 7].into();
        let y = x.fill_with(3);
        assert_eq!(y.len(), 4);
        assert_eq!(y.count(&3), 4);
    }

    #[test]
    fn fold_sums_with_multiplicity() {
        let x: Multiset<i64> = [3, 5, 3, 7].into();
        let s = x.fold(0i64, |acc, v| acc + v);
        assert_eq!(s, 18);
    }

    #[test]
    fn min_max() {
        let x: Multiset<i32> = [3, 5, 3, 7].into();
        assert_eq!(x.min_value(), Some(&3));
        assert_eq!(x.max_value(), Some(&7));
    }

    #[test]
    fn equality_is_order_insensitive() {
        let x: Multiset<i32> = [3, 5, 3, 7].into();
        let y: Multiset<i32> = [7, 3, 5, 3].into();
        assert_eq!(x, y);
        let z: Multiset<i32> = [3, 5, 7].into();
        assert_ne!(x, z);
    }

    #[test]
    fn debug_format_lists_elements() {
        let x: Multiset<i32> = [2, 1, 2].into();
        assert_eq!(format!("{x:?}"), "{1, 2, 2}");
    }

    #[test]
    fn singleton_and_clear() {
        let mut m = Multiset::singleton(42);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn extend_adds_elements() {
        let mut m: Multiset<i32> = [1].into();
        m.extend([2, 2, 3]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.count(&2), 2);
    }

    #[test]
    fn serde_round_trip() {
        let x: Multiset<i32> = [3, 5, 3, 7].into();
        let json = serde_json::to_string(&x).unwrap();
        let back: Multiset<i32> = serde_json::from_str(&json).unwrap();
        assert_eq!(x, back);
    }
}
