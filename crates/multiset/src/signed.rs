//! Signed multiset deltas for zero-allocation change detection.
//!
//! A group step replaces the multiset of a group's agent states with a new
//! multiset of the same cardinality.  Deciding whether anything *changed*
//! does not require materialising either multiset: it is enough to keep a
//! signed counter per value — `-1` for every element of the old multiset,
//! `+1` for every element of the new one — and ask whether any counter is
//! non-zero.  [`SignedCounts`] is that counter, backed by a sorted `Vec`
//! so small deltas (the common case: groups of a handful of agents) stay in
//! one or two cache lines and the buffer can be reused across steps without
//! reallocating.

use std::fmt;

/// A reusable signed counter over values of type `T`.
///
/// Conceptually a map `T → isize` that tracks how many entries are currently
/// non-zero.  The entries `Vec` keeps its capacity across [`clear`]
/// (`SignedCounts::clear`), so a long-running simulation performs no
/// per-step allocation once the buffer has grown to the largest group seen.
#[derive(Clone, Default)]
pub struct SignedCounts<T: Ord> {
    /// Sorted by value; zero-count entries are retained until [`clear`]
    /// (`SignedCounts::clear`) so insertion never shifts the tail twice.
    entries: Vec<(T, isize)>,
    /// Number of entries whose count is non-zero.
    imbalance: usize,
}

impl<T: Ord> SignedCounts<T> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        SignedCounts {
            entries: Vec::new(),
            imbalance: 0,
        }
    }

    /// Adds `delta` to the counter for `value`.
    pub fn add(&mut self, value: T, delta: isize) {
        if delta == 0 {
            return;
        }
        match self.entries.binary_search_by(|(v, _)| v.cmp(&value)) {
            Ok(pos) => {
                let entry = self
                    .entries
                    .get_mut(pos)
                    .expect("binary_search hit is in range");
                let before = entry.1;
                entry.1 += delta;
                if before == 0 {
                    self.imbalance += 1;
                } else if entry.1 == 0 {
                    self.imbalance -= 1;
                }
            }
            Err(pos) => {
                self.entries.insert(pos, (value, delta));
                self.imbalance += 1;
            }
        }
    }

    /// Returns `true` if every counter is zero — i.e. the `+` and `-` sides
    /// seen so far describe identical multisets.
    pub fn is_balanced(&self) -> bool {
        self.imbalance == 0
    }

    /// Iterates the non-zero `(value, count)` pairs in ascending value order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (&T, isize)> {
        self.entries
            .iter()
            .filter(|(_, c)| *c != 0)
            .map(|(v, c)| (v, *c))
    }

    /// Resets all counters, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.imbalance = 0;
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for SignedCounts<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter_nonzero()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_when_sides_match() {
        let mut d: SignedCounts<i32> = SignedCounts::new();
        assert!(d.is_balanced());
        for v in [3, 5, 3] {
            d.add(v, -1);
        }
        for v in [3, 3, 5] {
            d.add(v, 1);
        }
        assert!(d.is_balanced());
        assert_eq!(d.iter_nonzero().count(), 0);
    }

    #[test]
    fn imbalanced_when_sides_differ() {
        let mut d: SignedCounts<i32> = SignedCounts::new();
        d.add(3, -1);
        d.add(5, 1);
        assert!(!d.is_balanced());
        let nz: Vec<(i32, isize)> = d.iter_nonzero().map(|(v, c)| (*v, c)).collect();
        assert_eq!(nz, vec![(3, -1), (5, 1)]);
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut d: SignedCounts<i32> = SignedCounts::new();
        d.add(1, 4);
        d.add(1, -4);
        assert!(d.is_balanced());
        // Zeroed entry is retained until clear.
        d.add(1, 2);
        assert!(!d.is_balanced());
        d.clear();
        assert!(d.is_balanced());
        assert_eq!(d.iter_nonzero().count(), 0);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut d: SignedCounts<i32> = SignedCounts::new();
        d.add(7, 0);
        assert!(d.is_balanced());
        assert_eq!(d.iter_nonzero().count(), 0);
    }
}
