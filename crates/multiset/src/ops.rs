//! Free-standing helpers over [`Multiset`] used throughout the workspace.

use crate::Multiset;

/// Applies `g` to every element of `set`, preserving multiplicities (modulo
/// collisions of `g`'s outputs, which merge).
pub fn map<T: Ord, U: Ord>(set: &Multiset<T>, g: impl FnMut(&T) -> U) -> Multiset<U> {
    set.map(g)
}

/// Sums `g(v)` over all elements of `set`, counting multiplicity.
///
/// This is the building block for the paper's *summation form* (8) of
/// objective functions: `h(S_B) = Σ_{a ∈ B} h_a(S_a)`.
pub fn sum_by<T: Ord>(set: &Multiset<T>, mut g: impl FnMut(&T) -> i128) -> i128 {
    set.fold(0i128, |acc, v| acc + g(v))
}

/// The minimum of `g(v)` over the multiset, or `None` if empty.
pub fn min<T: Ord, K: Ord>(set: &Multiset<T>, g: impl FnMut(&T) -> K) -> Option<K> {
    set.iter().map(g).min()
}

/// The maximum of `g(v)` over the multiset, or `None` if empty.
pub fn max<T: Ord, K: Ord>(set: &Multiset<T>, g: impl FnMut(&T) -> K) -> Option<K> {
    set.iter().map(g).max()
}

/// Splits a multiset into the sub-multiset satisfying `pred` and the rest.
pub fn partition_by<T: Ord + Clone>(
    set: &Multiset<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> (Multiset<T>, Multiset<T>) {
    let mut yes = Multiset::new();
    let mut no = Multiset::new();
    for (v, c) in set.iter_counts() {
        if pred(v) {
            yes.insert_n(v.clone(), c);
        } else {
            no.insert_n(v.clone(), c);
        }
    }
    (yes, no)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_by_counts_multiplicity() {
        let x: Multiset<i64> = [3, 5, 3, 7].into();
        assert_eq!(sum_by(&x, |v| *v as i128), 18);
    }

    #[test]
    fn min_max_by_key() {
        let x: Multiset<i64> = [3, 5, 3, 7].into();
        assert_eq!(min(&x, |v| -v), Some(-7));
        assert_eq!(max(&x, |v| -v), Some(-3));
        let e: Multiset<i64> = Multiset::new();
        assert_eq!(min(&e, |v| *v), None);
    }

    #[test]
    fn partition_splits_and_preserves_cardinality() {
        let x: Multiset<i64> = [1, 2, 3, 4, 4].into();
        let (even, odd) = partition_by(&x, |v| v % 2 == 0);
        assert_eq!(even.to_vec(), vec![2, 4, 4]);
        assert_eq!(odd.to_vec(), vec![1, 3]);
        assert_eq!(even.len() + odd.len(), x.len());
        assert_eq!(even.union(&odd), x);
    }

    #[test]
    fn map_helper_matches_method() {
        let x: Multiset<i64> = [1, 2, 3].into();
        assert_eq!(map(&x, |v| v * 2), x.map(|v| v * 2));
    }
}
