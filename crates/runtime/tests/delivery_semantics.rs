//! Integration tests of the delivery-semantics subsystem: the regression
//! pinning the cross-fragment stall (ROADMAP "Async-mode fairness", the
//! E13 caveat), the dominance property of the window-aware rule, and the
//! determinism contract for every rule.

use proptest::prelude::*;
use selfsim_algorithms::minimum;
use selfsim_env::{PeriodicPartitionEnv, RandomChurnEnv, Topology};
use selfsim_runtime::{AsyncConfig, AsyncSimulator, DeliveryRule, SimulationReport};

/// Minimum over a complete graph of 8 split into two blocks that merge for
/// a single tick every 8 ticks — the environment whose connectivity
/// windows are shorter than the message latency.
fn partitioned_run(rule: DeliveryRule, seed: u64, max_ticks: usize) -> SimulationReport<i64> {
    let topo = Topology::complete(8);
    let sys = minimum::system(&[80, 70, 60, 50, 40, 30, 20, 1], topo.clone());
    let mut env = PeriodicPartitionEnv::new(topo, 2, 8);
    AsyncSimulator::new(AsyncConfig {
        max_ticks,
        delivery: rule,
        seed,
        ..AsyncConfig::default()
    })
    .run(&sys, &mut env)
}

/// The regression the DeliveryRule subsystem exists to fix: with
/// single-tick merges and latency ≥ 1, every cross-block rendezvous is due
/// in a partitioned phase, so the historical valid-at-delivery rule
/// discards all of them and the global minimum never leaves its block —
/// while the *same seed* under valid-at-send (or a window-aware grace)
/// converges.  The paper's §4.5 claim ("easily implemented by asynchronous
/// message passing") only survives the translation under the fixed rules.
#[test]
fn valid_at_delivery_stalls_where_valid_at_send_converges() {
    for seed in [0, 1, 2] {
        let stalled = partitioned_run(DeliveryRule::ValidAtDelivery, seed, 5_000);
        assert!(
            !stalled.converged(),
            "seed {seed}: cross-fragment progress must stall under valid-at-delivery"
        );
        assert_eq!(stalled.metrics.rounds_executed, 5_000, "budget exhausted");

        let sent = partitioned_run(DeliveryRule::ValidAtSend, seed, 5_000);
        assert!(
            sent.converged(),
            "seed {seed}: valid-at-send restores convergence"
        );
        let windowed = partitioned_run(DeliveryRule::any_overlap(), seed, 5_000);
        assert!(
            windowed.converged(),
            "seed {seed}: a grace window spanning the merge period restores convergence"
        );
    }
}

/// A grace window shorter than the partition period cannot bridge the
/// merges, so `AnyOverlap` degrades gracefully toward the historical rule
/// instead of silently fixing the stall.
#[test]
fn too_small_a_grace_window_still_stalls() {
    let report = partitioned_run(DeliveryRule::AnyOverlap { grace: 2 }, 0, 2_000);
    assert!(
        !report.converged(),
        "grace 2 < period 8 cannot bridge merges"
    );
}

/// Each rule is deterministic for a given seed — the property the
/// campaign's byte-identity contract (threads, shards) is built on.
#[test]
fn every_rule_is_seed_deterministic() {
    for rule in DeliveryRule::all() {
        let run = || {
            let topo = Topology::ring(6);
            let sys = minimum::system(&[9, 2, 7, 5, 8, 4], topo.clone());
            let mut env = RandomChurnEnv::new(Topology::ring(6), 0.4, 0.9);
            AsyncSimulator::new(AsyncConfig {
                max_ticks: 20_000,
                drop_rate: 0.2,
                delivery: rule,
                seed: 11,
                ..AsyncConfig::default()
            })
            .run(&sys, &mut env)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics, "{}", rule.label());
        assert_eq!(a.final_state, b.final_state, "{}", rule.label());
    }
}

proptest! {
    /// For identical seeds, the window-aware rule delivers a superset of
    /// what valid-at-delivery delivers (the adopt-min step never touches
    /// the RNG, so the two runs see the same environment and the same
    /// sends) — and extra min-adoptions can only speed descent up.  So
    /// whenever valid-at-delivery converges, any-overlap converges no
    /// later.
    #[test]
    fn any_overlap_converges_no_slower_than_valid_at_delivery(seed in 0u64..200) {
        let run = |rule: DeliveryRule| {
            let topo = Topology::ring(8);
            let sys = minimum::system(&[43, 17, 91, 5, 66, 28, 74, 52], topo.clone());
            let mut env = RandomChurnEnv::new(Topology::ring(8), 0.3, 0.9);
            AsyncSimulator::new(AsyncConfig {
                max_ticks: 50_000,
                delivery: rule,
                seed,
                ..AsyncConfig::default()
            })
            .run(&sys, &mut env)
        };
        let strict = run(DeliveryRule::ValidAtDelivery);
        let windowed = run(DeliveryRule::any_overlap());
        if let Some(strict_ticks) = strict.rounds_to_convergence() {
            let windowed_ticks = windowed.rounds_to_convergence();
            prop_assert!(
                windowed_ticks.is_some_and(|t| t <= strict_ticks),
                "any-overlap took {windowed_ticks:?} ticks vs {strict_ticks} under valid-at-delivery"
            );
        }
    }
}
