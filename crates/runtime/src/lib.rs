//! Simulators that execute self-similar algorithms under dynamic environments.
//!
//! The transition system of Chandy & Charpentier (ICDCS 2007) alternates
//! environment transitions (arbitrary) with agent transitions (every group
//! of a partition takes one collaborative step).  This crate provides three
//! executable realisations of that system:
//!
//! * [`SyncSimulator`] — the direct, round-based realisation: at every round
//!   the environment produces a new [`selfsim_env::EnvState`], the induced
//!   partition (connected components of the enabled subgraph) is computed,
//!   and every group executes one step of the algorithm's group relation
//!   `R`.  This is the semantics used for all correctness claims and most
//!   experiments.
//! * [`AsyncSimulator`] — a discrete-event, message-passing realisation in
//!   the spirit of the remark at the end of §4.5: agents interact pairwise
//!   when a (possibly delayed, possibly dropped) message is delivered over
//!   an edge, rather than in lockstep rounds.  Group steps are still steps
//!   of `R` restricted to the two endpoints, so all invariants carry over;
//!   what changes is *when* interactions happen — and the [`DeliveryRule`]
//!   decides what happens to a message whose edge is down when it comes
//!   due, which over environments with connectivity windows shorter than
//!   the message latency decides convergence itself (see the
//!   `delivery` module docs and experiment E14).
//! * [`EventSimulator`] — the synchronous semantics driven from a
//!   deterministic priority queue of environment and interaction events,
//!   with delta-based connectivity updates
//!   ([`selfsim_env::Environment::step_delta`]) and sparse interaction
//!   scheduling, so idle agents cost nothing and million-agent systems stay
//!   tractable.  On every cell it measures exactly what [`SyncSimulator`]
//!   measures (the `event` module docs state the guarantee precisely).
//!
//! All simulators are deterministic given a seed, record
//! [`selfsim_trace::RunMetrics`], optionally keep the full environment and
//! agent-state traces for auditing (conservation law, `□◇Q`, LTL specs),
//! and detect convergence (the state reaching — and then staying at — the
//! target `f(S(0))`).
//!
//! The simulators share an object-safe face, [`Runtime`], and a
//! declarative selector, [`ExecutionMode`], so that experiment drivers can
//! sweep the *execution model* as just another scenario dimension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_sim;
mod delivery;
mod event;
mod mode;
mod report;
mod sync;

pub use async_sim::{validate_async_knobs, AsyncConfig, AsyncSimulator};
pub use delivery::{DeliveryDecision, DeliveryRule, DEFAULT_GRACE};
pub use event::{EventConfig, EventSimulator};
pub use mode::{ExecutionMode, Runtime};
pub use report::SimulationReport;
pub use sync::{SyncConfig, SyncSimulator};

/// Edges of `state` whose endpoints can actually communicate right now —
/// the connectivity digest recorded by `env-transition` trace events.
pub(crate) fn usable_edges(state: &selfsim_env::EnvState) -> usize {
    state
        .enabled_edges()
        .iter()
        .filter(|edge| state.can_communicate(edge.lo(), edge.hi()))
        .count()
}
