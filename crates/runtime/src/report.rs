//! The result of one simulated run.

use selfsim_env::EnvState;
use selfsim_multiset::Multiset;
use selfsim_temporal::Trace;
use selfsim_trace::{RunMetrics, TraceEvent};

/// Everything a simulator records about one run: the measurements, the final
/// positional state, and (when tracing is enabled) the full environment and
/// agent-state histories used by the auditing tests.
#[derive(Clone, Debug)]
pub struct SimulationReport<S: Ord + Clone> {
    /// Quantitative measurements of the run.
    pub metrics: RunMetrics,
    /// The positional agent state at the end of the run.
    pub final_state: Vec<S>,
    /// The sequence of environment states, one per round (empty unless
    /// tracing was requested).
    pub env_trace: Trace<EnvState>,
    /// The multiset of agent states after every round, starting with the
    /// initial state (empty unless tracing was requested).
    pub state_trace: Vec<Multiset<S>>,
    /// The structured event stream of the run (empty unless event
    /// recording was requested via the simulator config).
    pub events: Vec<TraceEvent>,
}

impl<S: Ord + Clone> SimulationReport<S> {
    /// `true` when the run reached the target state within its budget.
    pub fn converged(&self) -> bool {
        self.metrics.converged()
    }

    /// Rounds until convergence (`None` if the budget ran out first).
    pub fn rounds_to_convergence(&self) -> Option<usize> {
        self.metrics.rounds_to_convergence
    }
}
