//! The round-based (synchronous) simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;

use selfsim_core::{SelfSimilarSystem, StepScratch};
use selfsim_env::Environment;
use selfsim_temporal::Trace;
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::{usable_edges, SimulationReport};

/// Configuration of a [`SyncSimulator`] run.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// Maximum number of rounds before giving up.
    pub max_rounds: usize,
    /// Number of extra rounds to execute *after* convergence is first
    /// detected, to exercise (and let the tests audit) the stability claim
    /// `stable (S = f(S))`.
    pub cooldown_rounds: usize,
    /// RNG seed; every run with the same seed, system and environment is
    /// identical.
    pub seed: u64,
    /// When `true`, the full environment and agent-state traces are kept in
    /// the report (needed by the auditing tests; costs memory on long runs).
    pub record_traces: bool,
    /// When `true`, the run records a structured [`TraceEvent`] stream
    /// (env transitions, group steps, convergence changes) in the report.
    /// When `false` (the default) event recording is a single branch per
    /// would-be event and allocates nothing.
    pub record_events: bool,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            max_rounds: 10_000,
            cooldown_rounds: 0,
            seed: 0,
            record_traces: false,
            record_events: false,
        }
    }
}

impl SyncConfig {
    /// A config with tracing enabled — what the correctness tests use.
    pub fn traced(seed: u64, max_rounds: usize) -> Self {
        SyncConfig {
            max_rounds,
            cooldown_rounds: 0,
            seed,
            record_traces: true,
            record_events: false,
        }
    }
}

/// The synchronous, round-based realisation of the paper's transition
/// system.
///
/// Each round performs one environment transition followed by one agent
/// transition: the environment produces the next [`selfsim_env::EnvState`],
/// the partition of agents into communicating groups is read off the
/// connected components, and every group executes one step of `R`.
/// Disabled agents belong to no group and keep their state, which is the
/// paper's "a disabled process executes no actions and does not change
/// state".
pub struct SyncSimulator {
    config: SyncConfig,
}

impl SyncSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SyncConfig) -> Self {
        SyncSimulator { config }
    }

    /// Creates a simulator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SyncSimulator {
            config: SyncConfig {
                seed,
                ..SyncConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    /// Runs `system` under `environment` until it converges (plus the
    /// configured cooldown) or the round budget is exhausted.
    pub fn run<S, E>(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut E,
    ) -> SimulationReport<S>
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut state = system.initial_state().clone();
        let mut metrics = RunMetrics::new(system.name(), environment.name(), system.agent_count());
        let mut env_trace = Trace::new();
        let mut state_trace = Vec::new();

        // The whole-system multiset is maintained incrementally by the
        // group steps; `h` folds it in ascending value order either way, so
        // the objective trajectory is byte-identical to recomputing the
        // multiset from the positional state every round.
        // `state` is still `S(0)` here, so the cached initial multiset is
        // exactly the view to start from.
        let mut global = system.initial_multiset().clone();
        let mut scratch = StepScratch::new();
        metrics
            .objective_trajectory
            .push(system.objective_of(&global));
        if self.config.record_traces {
            state_trace.push(global.clone());
        }

        let mut converged_at: Option<usize> = None;
        let mut cooldown_left = self.config.cooldown_rounds;
        let mut events = if self.config.record_events {
            EventLog::enabled()
        } else {
            EventLog::disabled()
        };
        // Connected components only change when the enabled sets change, so
        // the partition from the previous round is reused whenever the
        // environment repeats itself (always under `StaticEnv`, most rounds
        // under slow Markov links or a silent adversary).
        let mut groups_memo: Option<(selfsim_env::EnvState, Vec<Vec<selfsim_env::AgentId>>)> = None;

        for round in 0..self.config.max_rounds {
            let env_state = environment.step(&mut rng);
            if self.config.record_traces {
                env_trace.push(env_state.clone());
            }
            events.emit(|| TraceEvent::EnvTransition {
                tick: (round + 1) as u64,
                edges: usable_edges(&env_state),
            });
            let reusable = groups_memo
                .as_ref()
                .is_some_and(|(prev, _)| prev.same_connectivity(&env_state));
            if !reusable {
                let fresh = env_state.groups();
                groups_memo = Some((env_state, fresh));
            }
            let groups = &groups_memo.as_ref().expect("memo just filled").1;

            let mut round_messages = 0usize;
            let mut changed_groups = 0usize;
            for group in groups {
                metrics.group_steps += 1;
                // A k-agent collaborative step costs k messages in this
                // accounting (each member contributes its state once).
                round_messages += group.len();
                let changed = system
                    .apply_group_step_with(
                        &mut state,
                        group,
                        &mut rng,
                        &mut scratch,
                        Some(&mut global),
                    )
                    .multiset_changed;
                if changed {
                    changed_groups += 1;
                }
                events.emit(|| TraceEvent::GroupStep {
                    tick: (round + 1) as u64,
                    size: group.len(),
                    changed,
                });
            }
            metrics.effective_group_steps += changed_groups;
            metrics.messages += round_messages;
            metrics.rounds_executed = round + 1;
            metrics
                .objective_trajectory
                .push(system.objective_of(&global));
            if self.config.record_traces {
                state_trace.push(global.clone());
            }

            if system.is_converged_multiset(&global) {
                if converged_at.is_none() {
                    converged_at = Some(round + 1);
                    events.emit(|| TraceEvent::ConvergenceEntered {
                        tick: (round + 1) as u64,
                    });
                }
                if cooldown_left == 0 {
                    break;
                }
                cooldown_left -= 1;
            } else {
                if converged_at.is_some() {
                    events.emit(|| TraceEvent::ConvergenceLeft {
                        tick: (round + 1) as u64,
                    });
                }
                // If a later round leaves the target state the algorithm is
                // broken; reset so the reported number is honest.
                converged_at = None;
                cooldown_left = self.config.cooldown_rounds;
            }
        }

        metrics.rounds_to_convergence = converged_at;
        SimulationReport {
            metrics,
            final_state: state,
            env_trace,
            state_trace,
            events: events.into_events(),
        }
    }

    /// Runs the same system/environment pair over several seeds, returning
    /// one report per seed.  Environments are re-created per run via the
    /// `make_env` closure so that their internal state does not leak across
    /// runs.
    pub fn run_many<S, E>(
        &self,
        system: &SelfSimilarSystem<S>,
        mut make_env: impl FnMut() -> E,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Vec<SimulationReport<S>>
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment,
    {
        seeds
            .into_iter()
            .map(|seed| {
                let sim = SyncSimulator::new(SyncConfig {
                    seed,
                    ..self.config.clone()
                });
                let mut env = make_env();
                sim.run(system, &mut env)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_algorithms::minimum;
    use selfsim_env::{AdversarialEnv, RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn minimum_converges_under_static_environment() {
        let sys = minimum::system(&[9, 4, 7, 1, 5], Topology::line(5));
        let mut env = StaticEnv::new(Topology::line(5));
        let report = SyncSimulator::with_seed(1).run(&sys, &mut env);
        assert!(report.converged());
        assert_eq!(report.final_state, vec![1, 1, 1, 1, 1]);
        // On a line of 5 agents, the minimum needs a handful of rounds to
        // sweep across; it must be at least 1 and at most the diameter.
        let rounds = report.rounds_to_convergence().unwrap();
        assert!((1..=5).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn minimum_converges_under_churn_and_conserves_objective_monotonicity() {
        let topo = Topology::ring(8);
        let sys = minimum::system(&[9, 4, 7, 1, 5, 14, 3, 8], topo.clone());
        let mut env = RandomChurnEnv::new(topo, 0.4, 0.9);
        let config = SyncConfig::traced(7, 5_000);
        let report = SyncSimulator::new(config).run(&sys, &mut env);
        assert!(report.converged());
        assert!(report.metrics.objective_is_monotone(1e-9));
        // Conservation law holds at every recorded point.
        for ms in &report.state_trace {
            assert_eq!(sys.function().apply(ms), sys.target());
        }
    }

    #[test]
    fn minimum_converges_even_under_the_adversary() {
        let topo = Topology::line(4);
        let sys = minimum::system(&[4, 3, 2, 1], topo.clone());
        let mut env = AdversarialEnv::new(topo, 3);
        let report = SyncSimulator::with_seed(3).run(&sys, &mut env);
        assert!(report.converged());
        // The adversary activates one edge every 4 rounds, so convergence is
        // necessarily much slower than under the static environment.
        assert!(report.rounds_to_convergence().unwrap() > 4);
    }

    #[test]
    fn budget_exhaustion_reports_no_convergence() {
        let topo = Topology::line(4);
        let sys = minimum::system(&[4, 3, 2, 1], topo.clone());
        // An environment that never enables anything.
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let config = SyncConfig {
            max_rounds: 50,
            ..SyncConfig::default()
        };
        let report = SyncSimulator::new(config).run(&sys, &mut env);
        assert!(!report.converged());
        assert_eq!(report.metrics.rounds_executed, 50);
        assert_eq!(report.final_state, vec![4, 3, 2, 1]);
    }

    #[test]
    fn cooldown_keeps_running_after_convergence_and_state_stays_put() {
        let topo = Topology::complete(3);
        let sys = minimum::system(&[5, 2, 9], topo.clone());
        let mut env = StaticEnv::new(topo);
        let config = SyncConfig {
            cooldown_rounds: 10,
            record_traces: true,
            ..SyncConfig::default()
        };
        let report = SyncSimulator::new(config).run(&sys, &mut env);
        assert!(report.converged());
        assert!(report.metrics.rounds_executed > report.rounds_to_convergence().unwrap());
        // Stability: once the target is reached the trace never leaves it.
        let target = sys.target();
        let first = report
            .state_trace
            .iter()
            .position(|ms| *ms == target)
            .unwrap();
        assert!(report.state_trace[first..].iter().all(|ms| *ms == target));
    }

    #[test]
    fn run_many_produces_one_report_per_seed() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[6, 5, 4, 3, 2, 1], topo.clone());
        let reports = SyncSimulator::new(SyncConfig::default()).run_many(
            &sys,
            || RandomChurnEnv::new(Topology::ring(6), 0.5, 1.0),
            0..5,
        );
        assert_eq!(reports.len(), 5);
        assert!(reports.iter().all(|r| r.converged()));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[6, 5, 4, 3, 2, 1], topo.clone());
        let run = |seed| {
            let mut env = RandomChurnEnv::new(Topology::ring(6), 0.5, 1.0);
            SyncSimulator::with_seed(seed).run(&sys, &mut env)
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.rounds_to_convergence(), b.rounds_to_convergence());
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.final_state, b.final_state);
        let c = run(12);
        // Different seeds are allowed to differ (and normally do).
        let _ = c;
    }
}
