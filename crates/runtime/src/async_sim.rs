//! The discrete-event, message-passing simulator.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use selfsim_core::SelfSimilarSystem;
use selfsim_env::{AgentId, Environment};
use selfsim_temporal::Trace;
use selfsim_trace::RunMetrics;

use crate::SimulationReport;

/// Configuration of an [`AsyncSimulator`] run.
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Maximum virtual time (number of ticks) before giving up.
    pub max_ticks: usize,
    /// Probability that an enabled edge initiates an interaction at a tick.
    pub interaction_rate: f64,
    /// Message latency is drawn uniformly from `1..=max_latency` ticks.
    pub max_latency: usize,
    /// Probability that an in-flight message is lost.
    pub drop_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Record the full state trace in the report.
    pub record_traces: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_ticks: 50_000,
            interaction_rate: 0.5,
            max_latency: 3,
            drop_rate: 0.0,
            seed: 0,
            record_traces: false,
        }
    }
}

/// A pending rendezvous request: when delivered (and if the edge is still
/// usable), the two endpoint agents execute one pairwise step of `R`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PendingInteraction {
    deliver_at: usize,
    initiator: AgentId,
    responder: AgentId,
    sequence: usize,
}

impl Ord for PendingInteraction {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest delivery pops first,
        // breaking ties by sequence number for determinism.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for PendingInteraction {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The asynchronous, message-passing realisation of the group relation `R`.
///
/// At every virtual-time tick the environment produces a new state; each
/// currently usable edge initiates, with probability `interaction_rate`, a
/// *rendezvous request* that is delivered after a random latency (or dropped
/// with probability `drop_rate`).  When a request is delivered and the edge
/// is usable at delivery time, the two endpoints execute one two-agent step
/// of `R` on their *current* states.
///
/// This realises the observation at the end of §4.5 that relation `R` "can
/// be easily implemented by asynchronous message passing": every delivered
/// message triggers a small-group optimisation step; nothing requires global
/// rounds.  Because each interaction is still a step of `R`, the
/// conservation law and the descent of `h` are preserved verbatim.
pub struct AsyncSimulator {
    config: AsyncConfig,
}

impl AsyncSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: AsyncConfig) -> Self {
        AsyncSimulator { config }
    }

    /// Creates a simulator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        AsyncSimulator {
            config: AsyncConfig {
                seed,
                ..AsyncConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// Runs `system` under `environment` until convergence or the tick
    /// budget is exhausted.
    pub fn run<S, E>(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut E,
    ) -> SimulationReport<S>
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut state = system.initial_state().clone();
        let mut metrics = RunMetrics::new(
            system.name(),
            format!("async/{}", environment.name()),
            system.agent_count(),
        );
        let mut env_trace = Trace::new();
        let mut state_trace = Vec::new();
        metrics
            .objective_trajectory
            .push(system.global_objective(&state));
        if self.config.record_traces {
            state_trace.push(system.multiset(&state));
        }

        let mut pending: BinaryHeap<PendingInteraction> = BinaryHeap::new();
        let mut sequence = 0usize;
        let mut converged_at = None;

        for tick in 0..self.config.max_ticks {
            let env_state = environment.step(&mut rng);
            if self.config.record_traces {
                env_trace.push(env_state.clone());
            }

            // New rendezvous requests from currently usable edges.
            for edge in env_state.enabled_edges() {
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                if !rng.gen_bool(self.config.interaction_rate) {
                    continue;
                }
                metrics.messages += 1;
                if rng.gen_bool(self.config.drop_rate) {
                    continue; // lost in flight
                }
                let latency = rng.gen_range(1..=self.config.max_latency.max(1));
                pending.push(PendingInteraction {
                    deliver_at: tick + latency,
                    initiator: edge.lo(),
                    responder: edge.hi(),
                    sequence,
                });
                sequence += 1;
            }

            // Deliveries due at this tick.
            while pending.peek().is_some_and(|p| p.deliver_at <= tick) {
                let p = pending.pop().expect("peeked");
                // The rendezvous only happens if the pair can still
                // communicate when the message arrives.
                if !env_state.can_communicate(p.initiator, p.responder) {
                    continue;
                }
                metrics.group_steps += 1;
                let group = [p.initiator, p.responder];
                if system.apply_group_step(&mut state, &group, &mut rng) {
                    metrics.effective_group_steps += 1;
                }
            }

            metrics.rounds_executed = tick + 1;
            metrics
                .objective_trajectory
                .push(system.global_objective(&state));
            if self.config.record_traces {
                state_trace.push(system.multiset(&state));
            }

            if system.is_converged(&state) {
                converged_at = Some(tick + 1);
                break;
            }
        }

        metrics.rounds_to_convergence = converged_at;
        SimulationReport {
            metrics,
            final_state: state,
            env_trace,
            state_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_algorithms::minimum;
    use selfsim_env::{RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn minimum_converges_asynchronously() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[9, 2, 7, 5, 8, 4], topo.clone());
        let mut env = StaticEnv::new(topo);
        let report = AsyncSimulator::with_seed(5).run(&sys, &mut env);
        assert!(report.converged());
        assert_eq!(report.final_state, vec![2; 6]);
        assert!(report.metrics.objective_is_monotone(1e-9));
    }

    #[test]
    fn message_drops_slow_convergence_but_do_not_break_it() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[9, 2, 7, 5, 8, 4], topo.clone());
        let run = |drop_rate: f64| {
            let mut env = StaticEnv::new(Topology::ring(6));
            AsyncSimulator::new(AsyncConfig {
                drop_rate,
                seed: 2,
                ..AsyncConfig::default()
            })
            .run(&sys, &mut env)
        };
        let clean = run(0.0);
        let lossy = run(0.8);
        assert!(clean.converged());
        assert!(lossy.converged());
        assert!(
            lossy.rounds_to_convergence().unwrap() >= clean.rounds_to_convergence().unwrap(),
            "losing 80% of messages should not speed things up"
        );
    }

    #[test]
    fn async_under_churn_still_converges_and_conserves() {
        let topo = Topology::complete(5);
        let sys = minimum::system(&[5, 4, 3, 2, 11], topo.clone());
        let mut env = RandomChurnEnv::new(topo, 0.3, 0.8);
        let config = AsyncConfig {
            seed: 9,
            record_traces: true,
            ..AsyncConfig::default()
        };
        let report = AsyncSimulator::new(config).run(&sys, &mut env);
        assert!(report.converged());
        for ms in &report.state_trace {
            assert_eq!(sys.function().apply(ms), sys.target());
        }
    }

    #[test]
    fn impossible_environment_exhausts_budget() {
        let topo = Topology::line(3);
        let sys = minimum::system(&[3, 2, 1], topo.clone());
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let report = AsyncSimulator::new(AsyncConfig {
            max_ticks: 100,
            ..AsyncConfig::default()
        })
        .run(&sys, &mut env);
        assert!(!report.converged());
        assert_eq!(report.metrics.rounds_executed, 100);
    }

    #[test]
    fn determinism_with_same_seed() {
        let topo = Topology::ring(5);
        let sys = minimum::system(&[7, 3, 9, 1, 5], topo.clone());
        let run = || {
            let mut env = RandomChurnEnv::new(Topology::ring(5), 0.6, 1.0);
            AsyncSimulator::with_seed(4).run(&sys, &mut env)
        };
        let a = run();
        let b = run();
        assert_eq!(a.rounds_to_convergence(), b.rounds_to_convergence());
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }
}
