//! The discrete-event, message-passing simulator.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use selfsim_core::{SelfSimilarSystem, StepScratch};
use selfsim_env::{AgentId, Environment};
use selfsim_temporal::Trace;
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::{usable_edges, DeliveryDecision, DeliveryRule, SimulationReport};

/// Configuration of an [`AsyncSimulator`] run.
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Maximum virtual time (number of ticks) before giving up.
    pub max_ticks: usize,
    /// Probability that an enabled edge initiates an interaction at a tick.
    pub interaction_rate: f64,
    /// Message latency is drawn uniformly from `1..=max_latency` ticks.
    pub max_latency: usize,
    /// Probability that an in-flight message is lost.
    pub drop_rate: f64,
    /// What happens to a message whose edge is down when it comes due.
    pub delivery: DeliveryRule,
    /// RNG seed.
    pub seed: u64,
    /// Record the full state trace in the report.
    pub record_traces: bool,
    /// When `true`, the run records a structured [`TraceEvent`] stream
    /// (env transitions, the full message lifecycle, convergence) in the
    /// report.  When `false` (the default) event recording is a single
    /// branch per would-be event and allocates nothing.
    pub record_events: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_ticks: 50_000,
            interaction_rate: 0.5,
            max_latency: 3,
            drop_rate: 0.0,
            delivery: DeliveryRule::default(),
            seed: 0,
            record_traces: false,
            record_events: false,
        }
    }
}

impl AsyncConfig {
    /// Checks the field invariants, naming the offending field in the
    /// error: `max_latency` must be at least one tick (latency is drawn
    /// from `1..=max_latency`; zero used to be silently clamped to 1) and
    /// the two rates must be probabilities (out-of-range values used to
    /// panic deep inside the RNG with an unhelpful message).
    pub fn validate(&self) -> Result<(), String> {
        validate_async_knobs(self.interaction_rate, self.max_latency, self.drop_rate)
    }
}

/// Validates the knobs every message-passing execution shares — the
/// [`AsyncSimulator`] *and* the baselines' `run_async` variants — naming
/// the offending field in the error.
pub fn validate_async_knobs(
    interaction_rate: f64,
    max_latency: usize,
    drop_rate: f64,
) -> Result<(), String> {
    if max_latency == 0 {
        return Err(
            "max_latency must be at least 1 (message latency is drawn from 1..=max_latency)".into(),
        );
    }
    for (name, value) in [
        ("interaction_rate", interaction_rate),
        ("drop_rate", drop_rate),
    ] {
        if !(0.0..=1.0).contains(&value) {
            return Err(format!(
                "{name} must be a probability in [0, 1], got {value}"
            ));
        }
    }
    Ok(())
}

/// A pending rendezvous request: when delivered (subject to the
/// [`DeliveryRule`]), the two endpoint agents execute one pairwise step of
/// `R`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PendingInteraction {
    deliver_at: usize,
    /// Last tick delivery may still happen ([`DeliveryRule::expiry`] of
    /// the original due tick; only `AnyOverlap` re-queues up to it).
    expires_at: usize,
    initiator: AgentId,
    responder: AgentId,
    sequence: usize,
}

impl Ord for PendingInteraction {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest delivery pops first,
        // breaking ties by sequence number for determinism.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for PendingInteraction {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The asynchronous, message-passing realisation of the group relation `R`.
///
/// At every virtual-time tick the environment produces a new state; each
/// currently usable edge initiates, with probability `interaction_rate`, a
/// *rendezvous request* that is delivered after a random latency (or dropped
/// with probability `drop_rate`).  When a request comes due, the
/// configured [`DeliveryRule`] decides whether the two endpoints execute
/// one two-agent step of `R` on their *current* states — the historical
/// default demands the edge be usable at the delivery tick, `ValidAtSend`
/// honours the send-time agreement unconditionally, and `AnyOverlap`
/// re-queues the request until the edge comes back up (or a grace window
/// closes).
///
/// This realises the observation at the end of §4.5 that relation `R` "can
/// be easily implemented by asynchronous message passing": every delivered
/// message triggers a small-group optimisation step; nothing requires global
/// rounds.  Because each interaction is still a step of `R`, the
/// conservation law and the descent of `h` are preserved verbatim.
pub struct AsyncSimulator {
    config: AsyncConfig,
}

impl AsyncSimulator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`AsyncConfig::validate`] message when the
    /// configuration is invalid (zero `max_latency`, out-of-range rates).
    /// Callers handling untrusted input (the CLI) validate first.
    pub fn new(config: AsyncConfig) -> Self {
        if let Err(message) = config.validate() {
            panic!("invalid AsyncConfig: {message}");
        }
        AsyncSimulator { config }
    }

    /// Creates a simulator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        AsyncSimulator {
            config: AsyncConfig {
                seed,
                ..AsyncConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// Runs `system` under `environment` until convergence or the tick
    /// budget is exhausted.
    pub fn run<S, E>(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut E,
    ) -> SimulationReport<S>
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut state = system.initial_state().clone();
        let mut metrics = RunMetrics::new(
            system.name(),
            format!("async/{}", environment.name()),
            system.agent_count(),
        );
        let mut env_trace = Trace::new();
        let mut state_trace = Vec::new();
        // Incremental multiset view of `state`; see `SyncSimulator::run`.
        // `state` is still `S(0)` here, so the cached initial multiset is
        // exactly the view to start from.
        let mut global = system.initial_multiset().clone();
        let mut scratch = StepScratch::new();
        metrics
            .objective_trajectory
            .push(system.objective_of(&global));
        if self.config.record_traces {
            state_trace.push(global.clone());
        }

        let mut pending: BinaryHeap<PendingInteraction> = BinaryHeap::new();
        let mut sequence = 0usize;
        let mut converged_at = None;
        let mut events = if self.config.record_events {
            EventLog::enabled()
        } else {
            EventLog::disabled()
        };

        for tick in 0..self.config.max_ticks {
            let env_state = environment.step(&mut rng);
            if self.config.record_traces {
                env_trace.push(env_state.clone());
            }
            events.emit(|| TraceEvent::EnvTransition {
                tick: (tick + 1) as u64,
                edges: usable_edges(&env_state),
            });

            // New rendezvous requests from currently usable edges.
            for edge in env_state.enabled_edges() {
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                if !rng.gen_bool(self.config.interaction_rate) {
                    continue;
                }
                metrics.messages += 1;
                if rng.gen_bool(self.config.drop_rate) {
                    metrics.messages_dropped += 1;
                    events.emit(|| TraceEvent::MessageDropped {
                        tick: tick as u64,
                        from: edge.lo().index(),
                        to: edge.hi().index(),
                    });
                    continue; // lost in flight
                }
                let latency = rng.gen_range(1..=self.config.max_latency);
                let deliver_at = tick + latency;
                events.emit(|| TraceEvent::MessageSent {
                    tick: tick as u64,
                    from: edge.lo().index(),
                    to: edge.hi().index(),
                    deliver_at: deliver_at as u64,
                });
                pending.push(PendingInteraction {
                    deliver_at,
                    expires_at: self.config.delivery.expiry(deliver_at),
                    initiator: edge.lo(),
                    responder: edge.hi(),
                    sequence,
                });
                sequence += 1;
            }

            // Deliveries due at this tick.  The edge was usable at send
            // time by construction, so `usable_at_send` is always true
            // here; the rule decides on the current state of the edge.
            while pending.peek().is_some_and(|p| p.deliver_at <= tick) {
                let p = pending.pop().expect("peeked");
                let usable_now = env_state.can_communicate(p.initiator, p.responder);
                match self
                    .config
                    .delivery
                    .decide(usable_now, true, tick, p.expires_at)
                {
                    DeliveryDecision::Discard => {
                        events.emit(|| TraceEvent::MessageDiscarded {
                            tick: tick as u64,
                            from: p.initiator.index(),
                            to: p.responder.index(),
                        });
                        continue;
                    }
                    DeliveryDecision::Requeue => {
                        metrics.messages_requeued += 1;
                        events.emit(|| TraceEvent::MessageRequeued {
                            tick: tick as u64,
                            from: p.initiator.index(),
                            to: p.responder.index(),
                        });
                        // Same sequence number: the retry keeps its place
                        // in the deterministic tie-break order.
                        pending.push(PendingInteraction {
                            deliver_at: tick + 1,
                            ..p
                        });
                        continue;
                    }
                    DeliveryDecision::Deliver => {}
                }
                metrics.group_steps += 1;
                events.emit(|| TraceEvent::MessageDelivered {
                    tick: tick as u64,
                    from: p.initiator.index(),
                    to: p.responder.index(),
                });
                let group = [p.initiator, p.responder];
                let changed = system
                    .apply_group_step_with(
                        &mut state,
                        &group,
                        &mut rng,
                        &mut scratch,
                        Some(&mut global),
                    )
                    .multiset_changed;
                if changed {
                    metrics.effective_group_steps += 1;
                }
                events.emit(|| TraceEvent::GroupStep {
                    tick: (tick + 1) as u64,
                    size: group.len(),
                    changed,
                });
            }

            metrics.rounds_executed = tick + 1;
            metrics
                .objective_trajectory
                .push(system.objective_of(&global));
            if self.config.record_traces {
                state_trace.push(global.clone());
            }

            if system.is_converged_multiset(&global) {
                converged_at = Some(tick + 1);
                events.emit(|| TraceEvent::ConvergenceEntered {
                    tick: (tick + 1) as u64,
                });
                break;
            }
        }

        metrics.rounds_to_convergence = converged_at;
        SimulationReport {
            metrics,
            final_state: state,
            env_trace,
            state_trace,
            events: events.into_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_algorithms::minimum;
    use selfsim_env::{RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn minimum_converges_asynchronously() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[9, 2, 7, 5, 8, 4], topo.clone());
        let mut env = StaticEnv::new(topo);
        let report = AsyncSimulator::with_seed(5).run(&sys, &mut env);
        assert!(report.converged());
        assert_eq!(report.final_state, vec![2; 6]);
        assert!(report.metrics.objective_is_monotone(1e-9));
    }

    #[test]
    fn message_drops_slow_convergence_but_do_not_break_it() {
        let topo = Topology::ring(6);
        let sys = minimum::system(&[9, 2, 7, 5, 8, 4], topo.clone());
        let run = |drop_rate: f64| {
            let mut env = StaticEnv::new(Topology::ring(6));
            AsyncSimulator::new(AsyncConfig {
                drop_rate,
                seed: 2,
                ..AsyncConfig::default()
            })
            .run(&sys, &mut env)
        };
        let clean = run(0.0);
        let lossy = run(0.8);
        assert!(clean.converged());
        assert!(lossy.converged());
        assert!(
            lossy.rounds_to_convergence().unwrap() >= clean.rounds_to_convergence().unwrap(),
            "losing 80% of messages should not speed things up"
        );
        // Losses are visible in the metrics, not conflated with sends.
        assert_eq!(
            clean.metrics.messages_dropped, 0,
            "drop_rate 0 drops nothing"
        );
        assert!(lossy.metrics.messages_dropped > 0);
        assert!(lossy.metrics.messages_dropped <= lossy.metrics.messages);
    }

    #[test]
    fn invalid_configs_are_rejected_naming_the_field() {
        let zero_latency = AsyncConfig {
            max_latency: 0,
            ..AsyncConfig::default()
        };
        assert!(zero_latency.validate().unwrap_err().contains("max_latency"));
        let bad_rate = AsyncConfig {
            interaction_rate: 1.5,
            ..AsyncConfig::default()
        };
        assert!(bad_rate
            .validate()
            .unwrap_err()
            .contains("interaction_rate"));
        let bad_drop = AsyncConfig {
            drop_rate: -0.1,
            ..AsyncConfig::default()
        };
        assert!(bad_drop.validate().unwrap_err().contains("drop_rate"));
        assert!(AsyncConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid AsyncConfig: max_latency")]
    fn constructor_rejects_zero_latency_instead_of_clamping() {
        let _ = AsyncSimulator::new(AsyncConfig {
            max_latency: 0,
            ..AsyncConfig::default()
        });
    }

    #[test]
    fn async_under_churn_still_converges_and_conserves() {
        let topo = Topology::complete(5);
        let sys = minimum::system(&[5, 4, 3, 2, 11], topo.clone());
        let mut env = RandomChurnEnv::new(topo, 0.3, 0.8);
        let config = AsyncConfig {
            seed: 9,
            record_traces: true,
            ..AsyncConfig::default()
        };
        let report = AsyncSimulator::new(config).run(&sys, &mut env);
        assert!(report.converged());
        for ms in &report.state_trace {
            assert_eq!(sys.function().apply(ms), sys.target());
        }
    }

    #[test]
    fn impossible_environment_exhausts_budget() {
        let topo = Topology::line(3);
        let sys = minimum::system(&[3, 2, 1], topo.clone());
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let report = AsyncSimulator::new(AsyncConfig {
            max_ticks: 100,
            ..AsyncConfig::default()
        })
        .run(&sys, &mut env);
        assert!(!report.converged());
        assert_eq!(report.metrics.rounds_executed, 100);
    }

    #[test]
    fn determinism_with_same_seed() {
        let topo = Topology::ring(5);
        let sys = minimum::system(&[7, 3, 9, 1, 5], topo.clone());
        let run = || {
            let mut env = RandomChurnEnv::new(Topology::ring(5), 0.6, 1.0);
            AsyncSimulator::with_seed(4).run(&sys, &mut env)
        };
        let a = run();
        let b = run();
        assert_eq!(a.rounds_to_convergence(), b.rounds_to_convergence());
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }
}
