//! The execution-mode dimension: one scenario, three runtimes.
//!
//! The paper's thesis is that one self-similar design runs unchanged across
//! execution models — synchronous rounds, asynchronous message passing, and
//! event-driven scheduling.  [`ExecutionMode`] makes that a first-class,
//! sweepable parameter: it names a runtime plus its mode-specific knobs, and
//! [`ExecutionMode::runtime`] materialises the corresponding simulator
//! behind the object-safe [`Runtime`] trait so drivers (the campaign engine,
//! the experiment binaries) never match on the mode themselves.

use selfsim_core::SelfSimilarSystem;
use selfsim_env::Environment;

use crate::{
    AsyncConfig, AsyncSimulator, DeliveryRule, EventConfig, EventSimulator, SimulationReport,
    SyncConfig, SyncSimulator,
};

/// A runtime that can execute a self-similar system under an environment —
/// the common face of [`SyncSimulator`] and [`AsyncSimulator`].
///
/// Object-safe so that callers generic only in the *state* type can hold a
/// `Box<dyn Runtime<S>>` chosen at run time from an [`ExecutionMode`].
pub trait Runtime<S: Ord + Clone + std::fmt::Debug> {
    /// Short runtime name (`"sync"` / `"async"`), used in reports.
    fn mode_name(&self) -> &'static str;

    /// Runs `system` under `environment` until convergence or the budget
    /// (rounds or ticks, depending on the runtime) is exhausted.
    fn execute(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut dyn Environment,
    ) -> SimulationReport<S>;
}

impl<S: Ord + Clone + std::fmt::Debug> Runtime<S> for SyncSimulator {
    fn mode_name(&self) -> &'static str {
        "sync"
    }

    fn execute(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut dyn Environment,
    ) -> SimulationReport<S> {
        self.run(system, environment)
    }
}

impl<S: Ord + Clone + std::fmt::Debug> Runtime<S> for AsyncSimulator {
    fn mode_name(&self) -> &'static str {
        "async"
    }

    fn execute(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut dyn Environment,
    ) -> SimulationReport<S> {
        self.run(system, environment)
    }
}

impl<S: Ord + Clone + std::fmt::Debug> Runtime<S> for EventSimulator {
    fn mode_name(&self) -> &'static str {
        "event"
    }

    fn execute(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut dyn Environment,
    ) -> SimulationReport<S> {
        self.run(system, environment)
    }
}

/// Which runtime a scenario cell runs on, with the runtime-specific knobs
/// that are part of the cell's identity (the budget and seed are per-trial
/// and passed to [`ExecutionMode::runtime`] instead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionMode {
    /// Round-based lockstep execution on [`SyncSimulator`].
    Sync {
        /// Extra rounds to run *after* convergence is first detected (the
        /// stability audit of `stable (S = f(S))`).  Only meaningful for
        /// self-similar systems; drivers of terminating protocols (e.g. the
        /// campaign's baseline adapters) ignore it.
        cooldown: usize,
    },
    /// Event-driven execution on [`EventSimulator`]: the same round
    /// semantics as [`ExecutionMode::Sync`], driven from a deterministic
    /// priority queue with delta-based connectivity and sparse interaction
    /// scheduling, so idle agents cost nothing.
    Event {
        /// Extra rounds to run *after* convergence is first detected; the
        /// same knob (and the same semantics) as the sync cooldown.
        cooldown: usize,
    },
    /// Discrete-event message passing on [`AsyncSimulator`]: pairwise
    /// rendezvous over currently-usable edges with latency and loss.
    Async {
        /// Probability that a usable edge initiates an interaction per tick.
        interaction_rate: f64,
        /// Message latency is drawn uniformly from `1..=max_latency` ticks.
        max_latency: usize,
        /// Probability that an in-flight message is lost.
        drop_rate: f64,
        /// What happens to a message whose edge is down when it comes due.
        delivery: DeliveryRule,
    },
}

impl ExecutionMode {
    /// The default synchronous mode (no cooldown).
    pub fn sync() -> Self {
        ExecutionMode::Sync { cooldown: 0 }
    }

    /// The default event-driven mode (no cooldown).
    pub fn event() -> Self {
        ExecutionMode::Event { cooldown: 0 }
    }

    /// The default asynchronous mode (the [`AsyncConfig`] defaults).
    pub fn asynchronous() -> Self {
        let defaults = AsyncConfig::default();
        ExecutionMode::Async {
            interaction_rate: defaults.interaction_rate,
            max_latency: defaults.max_latency,
            drop_rate: defaults.drop_rate,
            delivery: defaults.delivery,
        }
    }

    /// The default asynchronous mode with the given delivery rule — the
    /// standard way to build the cells of a delivery-semantics sweep.
    pub fn asynchronous_with(delivery: DeliveryRule) -> Self {
        let defaults = AsyncConfig::default();
        ExecutionMode::Async {
            interaction_rate: defaults.interaction_rate,
            max_latency: defaults.max_latency,
            drop_rate: defaults.drop_rate,
            delivery,
        }
    }

    /// The delivery rule of an async mode (`None` for sync — lockstep
    /// rounds have no messages in flight).
    pub fn delivery(&self) -> Option<DeliveryRule> {
        match *self {
            ExecutionMode::Sync { .. } | ExecutionMode::Event { .. } => None,
            ExecutionMode::Async { delivery, .. } => Some(delivery),
        }
    }

    /// The delivery-rule column value for reports: the rule label for
    /// async cells, `-` for sync cells.
    pub fn delivery_label(&self) -> String {
        self.delivery()
            .map_or_else(|| "-".into(), |rule| rule.label())
    }

    /// Both default modes — the standard cross-runtime sweep.
    pub fn both() -> [ExecutionMode; 2] {
        [ExecutionMode::sync(), ExecutionMode::asynchronous()]
    }

    /// `true` for the message-passing mode.
    pub fn is_async(&self) -> bool {
        matches!(self, ExecutionMode::Async { .. })
    }

    /// Short stable label used in scenario names and reports.  Default
    /// parameterisations collapse to the bare mode name so the common cells
    /// stay readable.
    pub fn label(&self) -> String {
        match *self {
            ExecutionMode::Sync { cooldown: 0 } => "sync".into(),
            ExecutionMode::Sync { cooldown } => format!("sync(cd={cooldown})"),
            ExecutionMode::Event { cooldown: 0 } => "event".into(),
            ExecutionMode::Event { cooldown } => format!("event(cd={cooldown})"),
            ExecutionMode::Async {
                interaction_rate,
                max_latency,
                drop_rate,
                delivery,
            } => {
                if *self == ExecutionMode::asynchronous() {
                    "async".into()
                } else if delivery == DeliveryRule::default() {
                    format!("async(i={interaction_rate},l={max_latency},d={drop_rate})")
                } else {
                    format!(
                        "async(i={interaction_rate},l={max_latency},d={drop_rate},dv={})",
                        delivery.label()
                    )
                }
            }
        }
    }

    /// The label of the mode whose runs this mode must measure identically
    /// to, used for trial-seed derivation: the event-driven runtime is an
    /// execution strategy for the synchronous semantics, so `event(cd=N)`
    /// cells draw the same per-trial seeds as `sync(cd=N)` cells — that
    /// shared stream is what lets the CI equivalence gate compare their
    /// records byte for byte.  Sync and async modes are their own seed
    /// anchor (their labels are returned unchanged, keeping every
    /// historical seed stable).
    pub fn seed_label(&self) -> String {
        match *self {
            ExecutionMode::Event { cooldown } => ExecutionMode::Sync { cooldown }.label(),
            _ => self.label(),
        }
    }

    /// Parses a mode label: the bare names (`sync` / `async` / `event`,
    /// their default parameterisations) and every label
    /// [`ExecutionMode::label`] emits.
    pub fn parse(s: &str) -> Option<Self> {
        Self::parse_label(s).ok()
    }

    /// Parses a mode label through the shared `name(k=v)` grammar, with
    /// named-field errors: `sync(cd=N)` and
    /// `async(i=RATE,l=LATENCY,d=DROP[,dv=RULE])` round-trip exactly, and
    /// the async knobs are validated like [`AsyncConfig::validate`] so an
    /// out-of-range label is rejected at parse, not deep in a trial.
    pub fn parse_label(s: &str) -> Result<Self, String> {
        let (name, mut params) = selfsim_env::parse_label(s)?;
        match name {
            "sync" => {
                let cooldown = params.take::<usize>("cd")?.unwrap_or(0);
                params.finish(&["cd"])?;
                Ok(ExecutionMode::Sync { cooldown })
            }
            "event" => {
                let cooldown = params.take::<usize>("cd")?.unwrap_or(0);
                params.finish(&["cd"])?;
                Ok(ExecutionMode::Event { cooldown })
            }
            "async" => {
                let defaults = AsyncConfig::default();
                let interaction_rate = params
                    .take::<f64>("i")?
                    .unwrap_or(defaults.interaction_rate);
                let max_latency = params.take::<usize>("l")?.unwrap_or(defaults.max_latency);
                let drop_rate = params.take::<f64>("d")?.unwrap_or(defaults.drop_rate);
                let delivery = match params.take_str("dv") {
                    Some(rule) => DeliveryRule::parse_label(&rule)?,
                    None => defaults.delivery,
                };
                params.finish(&["i", "l", "d", "dv"])?;
                crate::validate_async_knobs(interaction_rate, max_latency, drop_rate)?;
                Ok(ExecutionMode::Async {
                    interaction_rate,
                    max_latency,
                    drop_rate,
                    delivery,
                })
            }
            other => Err(format!(
                "unknown mode `{other}` (expected sync, sync(cd=N), event, event(cd=N), \
                 async, or async(i=RATE,l=LATENCY,d=DROP,dv=RULE))"
            )),
        }
    }

    /// Materialises the runtime for one trial: `budget` is rounds (sync) or
    /// ticks (async), `seed` drives all simulator randomness, and
    /// `record_events` opts the run into the structured
    /// [`selfsim_trace::TraceEvent`] stream.
    pub fn runtime<S: Ord + Clone + std::fmt::Debug>(
        &self,
        seed: u64,
        budget: usize,
        record_traces: bool,
        record_events: bool,
    ) -> Box<dyn Runtime<S>> {
        match *self {
            ExecutionMode::Sync { cooldown } => Box::new(SyncSimulator::new(SyncConfig {
                max_rounds: budget,
                cooldown_rounds: cooldown,
                seed,
                record_traces,
                record_events,
            })),
            ExecutionMode::Event { cooldown } => Box::new(EventSimulator::new(EventConfig {
                max_rounds: budget,
                cooldown_rounds: cooldown,
                seed,
                record_traces,
                record_events,
            })),
            ExecutionMode::Async {
                interaction_rate,
                max_latency,
                drop_rate,
                delivery,
            } => Box::new(AsyncSimulator::new(AsyncConfig {
                max_ticks: budget,
                interaction_rate,
                max_latency,
                drop_rate,
                delivery,
                seed,
                record_traces,
                record_events,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_algorithms::minimum;
    use selfsim_env::{RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn labels_parse_back_for_defaults() {
        for mode in ExecutionMode::both() {
            assert_eq!(ExecutionMode::parse(&mode.label()), Some(mode));
        }
        assert_eq!(ExecutionMode::Sync { cooldown: 7 }.label(), "sync(cd=7)");
        assert_eq!(ExecutionMode::event().label(), "event");
        assert_eq!(ExecutionMode::parse("event"), Some(ExecutionMode::event()));
        assert_eq!(ExecutionMode::Event { cooldown: 7 }.label(), "event(cd=7)");
        assert_eq!(
            ExecutionMode::Async {
                interaction_rate: 0.25,
                max_latency: 5,
                drop_rate: 0.1,
                delivery: DeliveryRule::default(),
            }
            .label(),
            "async(i=0.25,l=5,d=0.1)"
        );
        assert!(ExecutionMode::parse("nonsense").is_none());
    }

    #[test]
    fn parameterised_labels_round_trip() {
        // The round-trip law: every label the mode can emit parses back
        // to the identical cell, including nested delivery-rule labels.
        for mode in [
            ExecutionMode::Sync { cooldown: 7 },
            ExecutionMode::Event { cooldown: 7 },
            ExecutionMode::Async {
                interaction_rate: 0.25,
                max_latency: 5,
                drop_rate: 0.1,
                delivery: DeliveryRule::default(),
            },
            ExecutionMode::asynchronous_with(DeliveryRule::ValidAtSend),
            ExecutionMode::asynchronous_with(DeliveryRule::AnyOverlap { grace: 4 }),
        ] {
            assert_eq!(
                ExecutionMode::parse_label(&mode.label()),
                Ok(mode),
                "{}",
                mode.label()
            );
        }
        // Partial parameterisations keep the defaults for omitted knobs.
        assert_eq!(
            ExecutionMode::parse_label("async(d=0.2)").unwrap(),
            ExecutionMode::Async {
                interaction_rate: 0.5,
                max_latency: 3,
                drop_rate: 0.2,
                delivery: DeliveryRule::default(),
            }
        );
    }

    #[test]
    fn parse_label_rejects_bad_modes_with_the_field_named() {
        let err = ExecutionMode::parse_label("warp").unwrap_err();
        assert!(err.contains("unknown mode `warp`"), "{err}");
        let err = ExecutionMode::parse_label("sync(cd=x)").unwrap_err();
        assert!(err.contains("`cd`"), "{err}");
        let err = ExecutionMode::parse_label("sync(i=0.5)").unwrap_err();
        assert!(err.contains("unknown parameter i"), "{err}");
        // Out-of-range knobs fail the AsyncConfig validation at parse.
        let err = ExecutionMode::parse_label("async(l=0)").unwrap_err();
        assert!(err.contains("max_latency"), "{err}");
        let err = ExecutionMode::parse_label("async(d=1.5)").unwrap_err();
        assert!(err.contains("drop_rate"), "{err}");
        // A bad nested delivery label is the delivery parser's error.
        let err = ExecutionMode::parse_label("async(dv=nonsense)").unwrap_err();
        assert!(err.contains("unknown delivery rule"), "{err}");
    }

    #[test]
    fn non_default_delivery_rules_show_in_the_label() {
        assert_eq!(ExecutionMode::asynchronous().label(), "async");
        assert_eq!(
            ExecutionMode::asynchronous_with(DeliveryRule::ValidAtSend).label(),
            "async(i=0.5,l=3,d=0,dv=valid-at-send)"
        );
        assert_eq!(
            ExecutionMode::asynchronous_with(DeliveryRule::AnyOverlap { grace: 4 }).label(),
            "async(i=0.5,l=3,d=0,dv=any-overlap(g=4))"
        );
        // The historical rule is the default, so it stays out of labels.
        assert_eq!(
            ExecutionMode::asynchronous_with(DeliveryRule::ValidAtDelivery),
            ExecutionMode::asynchronous()
        );
    }

    #[test]
    fn delivery_accessor_distinguishes_the_runtimes() {
        assert_eq!(ExecutionMode::sync().delivery(), None);
        assert_eq!(ExecutionMode::sync().delivery_label(), "-");
        assert_eq!(
            ExecutionMode::asynchronous().delivery(),
            Some(DeliveryRule::ValidAtDelivery)
        );
        assert_eq!(
            ExecutionMode::asynchronous_with(DeliveryRule::ValidAtSend).delivery_label(),
            "valid-at-send"
        );
    }

    #[test]
    fn all_runtimes_converge_through_the_trait_object() {
        let sys = minimum::system(&[9, 4, 7, 1, 5, 8], Topology::ring(6));
        let [sync, asynchronous] = ExecutionMode::both();
        for mode in [sync, asynchronous, ExecutionMode::event()] {
            let runtime = mode.runtime::<i64>(3, 100_000, false, false);
            let mut env = StaticEnv::new(Topology::ring(6));
            let report = runtime.execute(&sys, &mut env);
            assert!(report.converged(), "{}", mode.label());
            assert_eq!(report.final_state, vec![1; 6], "{}", mode.label());
        }
    }

    #[test]
    fn event_mode_seeds_anchor_to_the_matching_sync_cell() {
        assert_eq!(ExecutionMode::event().seed_label(), "sync");
        assert_eq!(
            ExecutionMode::Event { cooldown: 5 }.seed_label(),
            "sync(cd=5)"
        );
        // The existing modes are their own anchor — historical seeds (and
        // hence every committed fixture) are untouched.
        assert_eq!(ExecutionMode::sync().seed_label(), "sync");
        assert_eq!(
            ExecutionMode::Sync { cooldown: 5 }.seed_label(),
            "sync(cd=5)"
        );
        assert_eq!(ExecutionMode::asynchronous().seed_label(), "async");
    }

    #[test]
    fn event_mode_carries_its_cooldown_into_the_runtime() {
        let sys = minimum::system(&[9, 2, 7], Topology::complete(3));
        let mut env = StaticEnv::new(Topology::complete(3));
        let report = ExecutionMode::Event { cooldown: 6 }
            .runtime::<i64>(5, 50_000, false, false)
            .execute(&sys, &mut env);
        assert!(report.converged());
        assert_eq!(report.metrics.environment, "event/static");
        assert_eq!(
            report.metrics.rounds_executed,
            report.rounds_to_convergence().expect("converged") + 6
        );
    }

    #[test]
    fn mode_runtime_matches_direct_simulator_run() {
        let sys = minimum::system(&[6, 5, 4, 3, 2, 1], Topology::ring(6));
        let direct = {
            let mut env = RandomChurnEnv::new(Topology::ring(6), 0.5, 1.0);
            SyncSimulator::new(SyncConfig {
                max_rounds: 10_000,
                seed: 11,
                ..SyncConfig::default()
            })
            .run(&sys, &mut env)
        };
        let via_mode = {
            let mut env = RandomChurnEnv::new(Topology::ring(6), 0.5, 1.0);
            ExecutionMode::sync()
                .runtime::<i64>(11, 10_000, false, false)
                .execute(&sys, &mut env)
        };
        assert_eq!(direct.metrics, via_mode.metrics);
        assert_eq!(direct.final_state, via_mode.final_state);
    }

    #[test]
    fn async_mode_carries_its_knobs_into_the_runtime() {
        let sys = minimum::system(&[9, 2, 7, 5, 8, 4], Topology::ring(6));
        let mode = ExecutionMode::Async {
            interaction_rate: 1.0,
            max_latency: 1,
            drop_rate: 0.0,
            delivery: DeliveryRule::default(),
        };
        let mut env = StaticEnv::new(Topology::ring(6));
        let report = mode
            .runtime::<i64>(5, 50_000, false, false)
            .execute(&sys, &mut env);
        assert!(report.converged());
        assert_eq!(report.metrics.environment, "async/static");
    }
}
