//! The event-driven simulator: a deterministic priority queue of
//! environment and interaction events.
//!
//! [`EventSimulator`] realises the same transition system as
//! [`SyncSimulator`](crate::SyncSimulator) — one environment transition
//! followed by one agent transition per round — but drives it from an event
//! queue instead of a dense per-round sweep:
//!
//! * **Events, not rounds.**  The run is a priority queue of events keyed by
//!   `(time, tie)`, where the tie keys are derived from the seed through a
//!   SplitMix64 finalizer.  Within a round the keys order the environment
//!   transition before every group interaction and the group interactions in
//!   partition order, so the RNG stream is consumed in exactly the order the
//!   round-based simulator consumes it — that is what makes the two
//!   runtimes' measurements identical on the cells where they must agree.
//! * **Delta-based connectivity over a flat core.**  The environment is
//!   advanced through [`Environment::step_delta`]; incremental
//!   [`selfsim_env::EnvChanges`] are folded into a [`GroupIndex`] — group
//!   maintenance over the topology's CSR adjacency that merges on edge-up
//!   and re-splits via a bounded bidirectional search on edge-down, touching
//!   only the affected component instead of rescanning the graph.
//!   [`selfsim_env::EnvDelta::Unchanged`] costs nothing and
//!   [`selfsim_env::EnvDelta::AllEnabled`] avoids even *materialising* the
//!   full [`EnvState`]: a fully-enabled static complete graph on 10⁵ agents
//!   never allocates its ~5·10⁹ edges.
//! * **Sparse interaction scheduling.**  A group observed to map its state
//!   to itself *bit for bit while drawing no randomness* is a fixpoint
//!   group: re-running it is provably the identity on both the state and the
//!   RNG stream, so no further events are scheduled for it until
//!   connectivity changes.  Its per-round accounting (group steps, message
//!   counts, a `changed: false` group-step trace event) is kept identical to
//!   the round-based runtime; only the work is elided.  After convergence an
//!   idle system costs two events per cooldown round, independent of `n`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use selfsim_core::{SelfSimilarSystem, StepScratch};
use selfsim_env::{AgentId, EnvDelta, EnvState, Environment, GroupIndex};
use selfsim_temporal::Trace;
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::SimulationReport;

/// Configuration of an [`EventSimulator`] run.
///
/// The knobs mirror [`SyncConfig`](crate::SyncConfig) exactly — the event
/// queue is an execution strategy, not a semantic parameter.
#[derive(Clone, Debug)]
pub struct EventConfig {
    /// Maximum number of rounds before giving up.
    pub max_rounds: usize,
    /// Number of extra rounds to execute *after* convergence is first
    /// detected (the stability audit of `stable (S = f(S))`).
    pub cooldown_rounds: usize,
    /// RNG seed; every run with the same seed, system and environment is
    /// identical, and the stream is consumed in the same order as the
    /// round-based simulator's.
    pub seed: u64,
    /// When `true`, the full environment and agent-state traces are kept in
    /// the report (needed by the auditing tests; costs memory on long runs,
    /// and forces symbolic fully-enabled states to be materialised).
    pub record_traces: bool,
    /// When `true`, the run records a structured [`TraceEvent`] stream in
    /// the report.  Note that within a round the group-step events of
    /// fixpoint groups precede those of scheduled groups, so the stream is
    /// deterministic but not interleaved identically to the round-based
    /// runtime's.
    pub record_events: bool,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            max_rounds: 10_000,
            cooldown_rounds: 0,
            seed: 0,
            record_traces: false,
            record_events: false,
        }
    }
}

impl EventConfig {
    /// A config with tracing enabled — what the correctness tests use.
    pub fn traced(seed: u64, max_rounds: usize) -> Self {
        EventConfig {
            max_rounds,
            cooldown_rounds: 0,
            seed,
            record_traces: true,
            record_events: false,
        }
    }
}

/// The SplitMix64 finalizer; seeds the queue's tie keys.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The environment transition's tie key: below every group key (which is at
/// least `tie_base + 1 > 0`) so the round always opens with it.
const ENV_TIE: u64 = 0;
/// The round boundary's tie key: above every group key (`tie_base` is
/// masked to 32 bits and partitions are far smaller than 2⁶⁴ − 2³³).
const ROUND_END_TIE: u64 = u64::MAX;

/// What a queue entry schedules.  The derived order is only a formal
/// tiebreaker — the `(time, tie)` keys are distinct by construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EventKind {
    /// The environment transition that opens a round.
    Env,
    /// One scheduled interaction of the group at this index of the current
    /// partition.
    Group(usize),
    /// The round boundary: fold the round's accounting, run the
    /// convergence/cooldown bookkeeping, schedule the next round.
    RoundEnd,
}

/// The current connectivity, kept symbolic when the environment allows it.
enum Connectivity {
    /// Nothing enabled yet — the placeholder before the first absolute
    /// delta (the `step_delta` contract makes the first delta absolute, so
    /// this is never read as real connectivity; it just lets a
    /// contract-violating `Unchanged` first delta degrade to an empty
    /// partition instead of a panic).
    Empty,
    /// Every topology edge available and every agent enabled — represented
    /// without materialising the edge set, so complete graphs stay cheap.
    Full,
    /// An incrementally maintained group index over the topology's flat CSR
    /// adjacency: edge/agent deltas merge or re-split only the affected
    /// components instead of rescanning the whole graph.  Boxed: the index
    /// is ~2.5 hundred bytes of inline `Vec` headers, the other variants
    /// are unit.
    Tracked(Box<GroupIndex>),
}

/// An RNG adapter that counts how many core draws pass through it, so a
/// group step can be proven randomness-free before its interaction is
/// elided from the queue.
struct CountingRng<'a> {
    inner: &'a mut StdRng,
    draws: u64,
}

impl RngCore for CountingRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// The event-driven realisation of the paper's transition system.
///
/// See the [module documentation](self) for how it differs from — and when
/// it is measurement-identical to — the round-based simulator.
pub struct EventSimulator {
    config: EventConfig,
}

impl EventSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: EventConfig) -> Self {
        EventSimulator { config }
    }

    /// Creates a simulator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        EventSimulator {
            config: EventConfig {
                seed,
                ..EventConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EventConfig {
        &self.config
    }

    /// Runs `system` under `environment` until it converges (plus the
    /// configured cooldown) or the round budget is exhausted.
    pub fn run<S, E>(
        &self,
        system: &SelfSimilarSystem<S>,
        environment: &mut E,
    ) -> SimulationReport<S>
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment + ?Sized,
    {
        let n = system.agent_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut state = system.initial_state().clone();
        let mut metrics =
            RunMetrics::new(system.name(), format!("event/{}", environment.name()), n);
        let mut env_trace = Trace::new();
        let mut state_trace = Vec::new();

        // Incremental multiset view of `state`; see `SyncSimulator::run`.
        // `state` is still `S(0)` here, so start from the instance's cached
        // initial multiset instead of re-collecting n states.
        let mut global = system.initial_multiset().clone();
        let mut scratch = StepScratch::new();
        metrics
            .objective_trajectory
            .push(system.objective_of(&global));
        if self.config.record_traces {
            state_trace.push(global.clone());
        }

        let mut converged_at: Option<usize> = None;
        let mut cooldown_left = self.config.cooldown_rounds;
        let mut events = if self.config.record_events {
            EventLog::enabled()
        } else {
            EventLog::disabled()
        };

        let tie_base = splitmix64(self.config.seed) & 0xFFFF_FFFF;
        let mut heap: BinaryHeap<Reverse<(u64, u64, EventKind)>> = BinaryHeap::new();
        let mut peak_queue_depth = 0usize;
        if self.config.max_rounds > 0 {
            heap.push(Reverse((1, ENV_TIE, EventKind::Env)));
            peak_queue_depth = peak_queue_depth.max(heap.len());
        }

        let mut connectivity = Connectivity::Empty;
        let mut groups: Vec<Vec<AgentId>> = Vec::new();
        let mut at_fixpoint: Vec<bool> = Vec::new();

        // The objective and the convergence check read the state multiset,
        // so they are recomputed only when some group actually moved.
        let mut state_dirty = true;
        let mut cached_objective = metrics.objective_trajectory[0];
        let mut cached_converged = false;

        let mut round_messages = 0usize;
        let mut changed_groups = 0usize;

        while let Some(Reverse((time, _tie, kind))) = heap.pop() {
            metrics.events_processed += 1;
            let round = time as usize;
            match kind {
                EventKind::Env => {
                    round_messages = 0;
                    changed_groups = 0;
                    let connectivity_changed = match environment.step_delta(&mut rng) {
                        EnvDelta::Unchanged => false,
                        EnvDelta::AllEnabled => {
                            let was_full = matches!(connectivity, Connectivity::Full);
                            connectivity = Connectivity::Full;
                            !was_full
                        }
                        EnvDelta::Full(next) => match &mut connectivity {
                            Connectivity::Tracked(index) => {
                                if index.same_connectivity(&next) {
                                    false
                                } else {
                                    index.reset_from_state(&next);
                                    true
                                }
                            }
                            Connectivity::Full => {
                                // Cheap count rejection first: the closed
                                // form avoids materialising a symbolic
                                // clique unless the counts actually match.
                                let topo = environment.topology();
                                let same = next.enabled_agents().len() == n
                                    && next.enabled_edges().len() == topo.edge_count()
                                    && EnvState::fully_enabled(topo).same_connectivity(&next);
                                if same {
                                    false
                                } else {
                                    let mut index = GroupIndex::new(topo);
                                    index.reset_from_state(&next);
                                    connectivity = Connectivity::Tracked(Box::new(index));
                                    true
                                }
                            }
                            Connectivity::Empty => {
                                if next.enabled_edges().is_empty()
                                    && next.enabled_agents().is_empty()
                                {
                                    false
                                } else {
                                    let mut index = GroupIndex::new(environment.topology());
                                    index.reset_from_state(&next);
                                    connectivity = Connectivity::Tracked(Box::new(index));
                                    true
                                }
                            }
                        },
                        EnvDelta::Changes(changes) => {
                            if !matches!(connectivity, Connectivity::Tracked(_)) {
                                let mut index = GroupIndex::new(environment.topology());
                                if matches!(connectivity, Connectivity::Full) {
                                    index.reset_all_enabled();
                                }
                                connectivity = Connectivity::Tracked(Box::new(index));
                            }
                            if let Connectivity::Tracked(index) = &mut connectivity {
                                index.apply_changes(&changes);
                            }
                            !changes.is_empty()
                        }
                    };
                    if self.config.record_traces {
                        env_trace.push(match &connectivity {
                            Connectivity::Empty => EnvState::fully_disabled(n),
                            Connectivity::Full => EnvState::fully_enabled(environment.topology()),
                            Connectivity::Tracked(index) => index.to_env_state(),
                        });
                    }
                    events.emit(|| TraceEvent::EnvTransition {
                        tick: time,
                        edges: match &connectivity {
                            Connectivity::Empty => 0,
                            Connectivity::Full => environment.topology().edge_count(),
                            Connectivity::Tracked(index) => index.usable_edge_count(),
                        },
                    });
                    if connectivity_changed {
                        // A tracked index exposes its groups by borrow (see
                        // the `Group(i)` arm); only the full-connectivity
                        // fast path still materialises a member list.
                        groups = match &connectivity {
                            Connectivity::Empty | Connectivity::Tracked(_) => Vec::new(),
                            Connectivity::Full => environment.topology().components(),
                        };
                        let group_count = match &connectivity {
                            Connectivity::Tracked(index) => index.group_count(),
                            _ => groups.len(),
                        };
                        at_fixpoint = vec![false; group_count];
                    }
                    for (i, &done) in at_fixpoint.iter().enumerate() {
                        let size = match &connectivity {
                            Connectivity::Tracked(index) => index.group(i).len(),
                            _ => groups.get(i).map(Vec::len).unwrap_or_default(),
                        };
                        if done {
                            // Elided interaction, round-based accounting.
                            metrics.group_steps += 1;
                            round_messages += size;
                            events.emit(|| TraceEvent::GroupStep {
                                tick: time,
                                size,
                                changed: false,
                            });
                        } else {
                            heap.push(Reverse((
                                time,
                                tie_base + 1 + i as u64,
                                EventKind::Group(i),
                            )));
                        }
                    }
                    heap.push(Reverse((time, ROUND_END_TIE, EventKind::RoundEnd)));
                    peak_queue_depth = peak_queue_depth.max(heap.len());
                }
                EventKind::Group(i) => {
                    let group: &[AgentId] = match &connectivity {
                        Connectivity::Tracked(index) => index.group(i),
                        _ => groups.get(i).map(Vec::as_slice).unwrap_or_default(),
                    };
                    metrics.group_steps += 1;
                    round_messages += group.len();
                    let mut counting = CountingRng {
                        inner: &mut rng,
                        draws: 0,
                    };
                    let outcome = system.apply_group_step_with(
                        &mut state,
                        group,
                        &mut counting,
                        &mut scratch,
                        Some(&mut global),
                    );
                    let changed = outcome.multiset_changed;
                    if outcome.positionally_fixed && counting.draws == 0 {
                        at_fixpoint[i] = true;
                    }
                    if !outcome.positionally_fixed {
                        state_dirty = true;
                    }
                    if changed {
                        changed_groups += 1;
                    }
                    let size = group.len();
                    events.emit(|| TraceEvent::GroupStep {
                        tick: time,
                        size,
                        changed,
                    });
                }
                EventKind::RoundEnd => {
                    metrics.effective_group_steps += changed_groups;
                    metrics.messages += round_messages;
                    metrics.rounds_executed = round;
                    if state_dirty {
                        cached_objective = system.objective_of(&global);
                        cached_converged = system.is_converged_multiset(&global);
                        state_dirty = false;
                    }
                    metrics.objective_trajectory.push(cached_objective);
                    if self.config.record_traces {
                        state_trace.push(global.clone());
                    }
                    if cached_converged {
                        if converged_at.is_none() {
                            converged_at = Some(round);
                            events.emit(|| TraceEvent::ConvergenceEntered { tick: time });
                        }
                        if cooldown_left == 0 {
                            break;
                        }
                        cooldown_left -= 1;
                    } else {
                        if converged_at.is_some() {
                            events.emit(|| TraceEvent::ConvergenceLeft { tick: time });
                        }
                        converged_at = None;
                        cooldown_left = self.config.cooldown_rounds;
                    }
                    if round < self.config.max_rounds {
                        heap.push(Reverse((time + 1, ENV_TIE, EventKind::Env)));
                        peak_queue_depth = peak_queue_depth.max(heap.len());
                    }
                }
            }
        }

        metrics.peak_queue_depth = peak_queue_depth;
        metrics.rounds_to_convergence = converged_at;
        SimulationReport {
            metrics,
            final_state: state,
            env_trace,
            state_trace,
            events: events.into_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyncConfig, SyncSimulator};
    use selfsim_algorithms::{minimum, sorting};
    use selfsim_env::{
        CrashRestartEnv, MarkovLinkEnv, PeriodicPartitionEnv, RandomChurnEnv, StaticEnv, Topology,
    };

    /// Asserts that the event-driven run measures exactly what the
    /// round-based run measures (modulo the runtime-specific columns:
    /// environment prefix, events processed, queue depth).
    fn assert_matches_sync<S: Ord + Clone + std::fmt::Debug>(
        event: &SimulationReport<S>,
        sync: &SimulationReport<S>,
    ) {
        let mut normalized = event.metrics.clone();
        assert_eq!(
            normalized.environment,
            format!("event/{}", sync.metrics.environment)
        );
        normalized.environment = sync.metrics.environment.clone();
        normalized.events_processed = 0;
        normalized.peak_queue_depth = 0;
        assert_eq!(normalized, sync.metrics);
        assert_eq!(event.final_state, sync.final_state);
    }

    fn run_both<S, E>(
        system: &SelfSimilarSystem<S>,
        mut make_env: impl FnMut() -> E,
        seed: u64,
        cooldown: usize,
    ) -> (SimulationReport<S>, SimulationReport<S>)
    where
        S: Ord + Clone + std::fmt::Debug,
        E: Environment,
    {
        let event = EventSimulator::new(EventConfig {
            cooldown_rounds: cooldown,
            seed,
            ..EventConfig::default()
        })
        .run(system, &mut make_env());
        let sync = SyncSimulator::new(SyncConfig {
            cooldown_rounds: cooldown,
            seed,
            ..SyncConfig::default()
        })
        .run(system, &mut make_env());
        (event, sync)
    }

    #[test]
    fn matches_sync_on_static_environments() {
        let sys = minimum::system(&[9, 4, 7, 1, 5], Topology::line(5));
        let (event, sync) = run_both(&sys, || StaticEnv::new(Topology::line(5)), 1, 0);
        assert!(event.converged());
        assert_matches_sync(&event, &sync);
    }

    #[test]
    fn matches_sync_under_incremental_and_fallback_deltas() {
        // Markov links exercise the `Changes` path, the periodic partition
        // the phase-boundary `Full`/`Unchanged` mix, crash/restart and
        // random churn the default full-rescan fallback.
        let topo = || Topology::ring(8);
        let sys = minimum::system(&[9, 4, 7, 1, 5, 14, 3, 8], topo());
        for seed in [3, 7, 11] {
            let (event, sync) = run_both(&sys, || MarkovLinkEnv::new(topo(), 0.4, 0.4), seed, 0);
            assert_matches_sync(&event, &sync);
            let (event, sync) = run_both(&sys, || PeriodicPartitionEnv::new(topo(), 2, 4), seed, 0);
            assert_matches_sync(&event, &sync);
            let (event, sync) = run_both(&sys, || CrashRestartEnv::new(topo(), 0.2, 0.7), seed, 0);
            assert_matches_sync(&event, &sync);
            let (event, sync) = run_both(&sys, || RandomChurnEnv::new(topo(), 0.5, 0.9), seed, 0);
            assert_matches_sync(&event, &sync);
        }
    }

    #[test]
    fn matches_sync_for_positional_movement_with_unchanged_multisets() {
        // Sorting permutes positions while the multiset (and hence the
        // `changed` flag) stays put: the fixpoint detector must look at
        // positions, not multisets, or it would freeze a still-sorting
        // group.
        let sys = sorting::system(&[5, 3, 1, 4, 2, 6]);
        let (event, sync) = run_both(&sys, || StaticEnv::new(Topology::line(6)), 2, 0);
        assert!(event.converged(), "sorting converges on the static line");
        assert_matches_sync(&event, &sync);
        let (event, sync) = run_both(
            &sys,
            || MarkovLinkEnv::new(Topology::line(6), 0.5, 0.3),
            9,
            0,
        );
        assert_matches_sync(&event, &sync);
    }

    #[test]
    fn matches_sync_through_cooldown_rounds() {
        let topo = || Topology::complete(3);
        let sys = minimum::system(&[5, 2, 9], topo());
        let (event, sync) = run_both(&sys, || StaticEnv::new(topo()), 4, 10);
        assert!(event.converged());
        assert!(
            event.metrics.rounds_executed > event.rounds_to_convergence().expect("run converged")
        );
        assert_matches_sync(&event, &sync);
    }

    #[test]
    fn traced_runs_match_sync_traces() {
        let topo = || Topology::ring(6);
        let sys = minimum::system(&[6, 5, 4, 3, 2, 1], topo());
        let event = EventSimulator::new(EventConfig::traced(7, 5_000))
            .run(&sys, &mut RandomChurnEnv::new(topo(), 0.4, 0.9));
        let sync = SyncSimulator::new(SyncConfig::traced(7, 5_000))
            .run(&sys, &mut RandomChurnEnv::new(topo(), 0.4, 0.9));
        assert_matches_sync(&event, &sync);
        assert_eq!(event.state_trace, sync.state_trace);
        assert_eq!(event.env_trace.len(), sync.env_trace.len());
        for (a, b) in event.env_trace.iter().zip(sync.env_trace.iter()) {
            assert!(a.same_connectivity(b));
        }
    }

    #[test]
    fn runs_are_seed_deterministic_including_the_event_stream() {
        let topo = || Topology::ring(6);
        let sys = minimum::system(&[6, 5, 4, 3, 2, 1], topo());
        let run = || {
            EventSimulator::new(EventConfig {
                seed: 11,
                record_events: true,
                ..EventConfig::default()
            })
            .run(&sys, &mut RandomChurnEnv::new(topo(), 0.5, 1.0))
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.final_state, b.final_state);
        assert_eq!(a.events, b.events);
        assert!(a.metrics.events_processed > 0);
        assert!(a.metrics.peak_queue_depth > 0);
    }

    #[test]
    fn fixpoint_groups_cost_no_events_during_cooldown() {
        // Complete static graph, one group: round 1 converges, round 2
        // proves the group a randomness-free fixpoint, every later cooldown
        // round is exactly two events (env + round boundary).
        let topo = || Topology::complete(3);
        let sys = minimum::system(&[5, 2, 9], topo());
        let report = EventSimulator::new(EventConfig {
            cooldown_rounds: 10,
            seed: 4,
            ..EventConfig::default()
        })
        .run(&sys, &mut StaticEnv::new(topo()));
        assert_eq!(report.rounds_to_convergence(), Some(1));
        assert_eq!(report.metrics.rounds_executed, 11);
        // Rounds 1–2: env + group + boundary; rounds 3–11: env + boundary.
        assert_eq!(report.metrics.events_processed, 2 * 3 + 9 * 2);
        // Accounting still reports one group step per round, like sync.
        assert_eq!(report.metrics.group_steps, 11);
    }

    #[test]
    fn symbolic_complete_graphs_scale_without_materialising_edges() {
        let n = 100_000;
        let values: Vec<i64> = (0..n as i64).map(|k| (k * 7919) % 1_000_003 + 1).collect();
        let topo = Topology::complete(n);
        let sys = minimum::system(&values, topo.clone());
        let report = EventSimulator::with_seed(1).run(&sys, &mut StaticEnv::new(topo));
        assert_eq!(report.rounds_to_convergence(), Some(1));
        assert_eq!(report.metrics.messages, n);
        let min = values.iter().min().copied().expect("non-empty values");
        assert!(report.final_state.iter().all(|&v| v == min));
    }

    #[test]
    fn zero_round_budget_executes_nothing() {
        let sys = minimum::system(&[2, 1], Topology::line(2));
        let report = EventSimulator::new(EventConfig {
            max_rounds: 0,
            ..EventConfig::default()
        })
        .run(&sys, &mut StaticEnv::new(Topology::line(2)));
        assert_eq!(report.metrics.rounds_executed, 0);
        assert_eq!(report.metrics.events_processed, 0);
        assert!(!report.converged());
    }
}
