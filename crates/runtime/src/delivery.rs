//! Delivery semantics for the message-passing runtimes.
//!
//! The asynchronous model sends a rendezvous/gossip/probe message over an
//! edge that is usable *at send time* and delivers it one or more ticks
//! later.  What should happen when the edge is no longer usable at the
//! delivery tick is a modelling decision, not a fact — and it decides
//! whether the fairness assumption `□◇Q` survives the translation from
//! rounds to messages.  The historical rule (deliver only if the pair can
//! still communicate at delivery time) silently discards every message
//! whose connectivity window is shorter than its latency, so environments
//! with brief merge windows (e.g. the periodic partition's single-tick
//! merges) stall cross-fragment progress even for algorithms the paper
//! proves convergent under `□◇Q`.  [`DeliveryRule`] makes the choice
//! explicit and sweepable, and is applied uniformly by [`AsyncSimulator`]
//! and the message-passing baselines so cross-runtime comparisons stay
//! apples-to-apples.
//!
//! [`AsyncSimulator`]: crate::AsyncSimulator

/// When a due message may trigger its interaction.
///
/// All rules share the send side: a message is only ever *sent* over an
/// edge that is usable at the send tick.  They differ in the condition
/// checked when the message comes due.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryRule {
    /// Deliver only if the edge is still usable at the delivery tick;
    /// otherwise the message is silently discarded.  This is the
    /// historical (and strictest) rule: it under-approximates `□◇Q` when
    /// connectivity windows are shorter than message latency.
    #[default]
    ValidAtDelivery,
    /// Deliver unconditionally: the edge was usable when the message was
    /// sent, and that is taken as the agreement to interact.  This is the
    /// direct message-passing reading of §4.5's "easily implemented by
    /// asynchronous message passing": every sent (non-dropped) message
    /// yields an interaction.
    ValidAtSend,
    /// Window-aware: deliver at the *first* tick in
    /// `[due, due + grace]` at which the edge is usable, re-queueing the
    /// message tick by tick instead of discarding it; a message whose
    /// window closes without the edge coming up expires.  With
    /// `grace = 0` this degenerates to [`DeliveryRule::ValidAtDelivery`].
    AnyOverlap {
        /// Extra ticks past the due tick during which delivery may still
        /// happen.
        grace: usize,
    },
}

/// The default grace window of the bare `any-overlap` label: generous
/// enough to span the merge period of the stock partition environments
/// (`partition(b,t=8)`) with the default latency.
pub const DEFAULT_GRACE: usize = 16;

/// What to do with one due message (see [`DeliveryRule::decide`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryDecision {
    /// Trigger the interaction now.
    Deliver,
    /// Drop the message for good.
    Discard,
    /// Keep the message queued and retry at the next tick.
    Requeue,
}

impl DeliveryRule {
    /// The window-aware rule with the default grace.
    pub fn any_overlap() -> Self {
        DeliveryRule::AnyOverlap {
            grace: DEFAULT_GRACE,
        }
    }

    /// All three rules, each in its default parameterisation — the
    /// standard delivery-semantics sweep (experiment E14, the CI
    /// shard-equivalence legs).
    pub fn all() -> [DeliveryRule; 3] {
        [
            DeliveryRule::ValidAtDelivery,
            DeliveryRule::ValidAtSend,
            DeliveryRule::any_overlap(),
        ]
    }

    /// Short stable label used in mode labels, scenario names and report
    /// columns.
    pub fn label(&self) -> String {
        match *self {
            DeliveryRule::ValidAtDelivery => "valid-at-delivery".into(),
            DeliveryRule::ValidAtSend => "valid-at-send".into(),
            DeliveryRule::AnyOverlap { grace } => format!("any-overlap(g={grace})"),
        }
    }

    /// Parses a label: the bare rule names (`any-overlap` takes the
    /// default grace) and the parameterised `any-overlap(g=N)` form
    /// produced by [`DeliveryRule::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::parse_label(s).ok()
    }

    /// Parses a label through the shared `name(k=v)` grammar
    /// ([`selfsim_env::params`]), with named-field errors for malformed
    /// or out-of-place parameters — what the CLI and the mode parser
    /// surface.
    pub fn parse_label(s: &str) -> Result<Self, String> {
        let (name, mut params) = selfsim_env::parse_label(s)?;
        let rule = match name {
            "valid-at-delivery" => DeliveryRule::ValidAtDelivery,
            "valid-at-send" => DeliveryRule::ValidAtSend,
            "any-overlap" => DeliveryRule::AnyOverlap {
                grace: params.take::<usize>("g")?.unwrap_or(DEFAULT_GRACE),
            },
            other => {
                return Err(format!(
                    "unknown delivery rule `{other}` (expected valid-at-delivery|\
                     valid-at-send|any-overlap|any-overlap(g=N))"
                ))
            }
        };
        let known: &[&str] = match rule {
            DeliveryRule::AnyOverlap { .. } => &["g"],
            _ => &[],
        };
        params.finish(known)?;
        Ok(rule)
    }

    /// The last tick at which a message due at `due` may still be
    /// delivered.
    pub fn expiry(&self, due: usize) -> usize {
        match *self {
            DeliveryRule::AnyOverlap { grace } => due.saturating_add(grace),
            _ => due,
        }
    }

    /// Decides the fate of a message that is due at tick `now`.
    ///
    /// `usable_now` is whether the message's connectivity condition (the
    /// edge for pairwise rendezvous, full reachability for snapshot
    /// probes) holds at `now`; `usable_at_send` is the same condition
    /// evaluated when the message was sent; `expires_at` is
    /// [`DeliveryRule::expiry`] of the original due tick.
    pub fn decide(
        &self,
        usable_now: bool,
        usable_at_send: bool,
        now: usize,
        expires_at: usize,
    ) -> DeliveryDecision {
        match *self {
            DeliveryRule::ValidAtDelivery => {
                if usable_now {
                    DeliveryDecision::Deliver
                } else {
                    DeliveryDecision::Discard
                }
            }
            DeliveryRule::ValidAtSend => {
                if usable_at_send {
                    DeliveryDecision::Deliver
                } else {
                    DeliveryDecision::Discard
                }
            }
            DeliveryRule::AnyOverlap { .. } => {
                if usable_now {
                    DeliveryDecision::Deliver
                } else if now < expires_at {
                    DeliveryDecision::Requeue
                } else {
                    DeliveryDecision::Discard
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse_back() {
        for rule in DeliveryRule::all() {
            assert_eq!(DeliveryRule::parse(&rule.label()), Some(rule));
        }
        assert_eq!(
            DeliveryRule::parse("any-overlap"),
            Some(DeliveryRule::AnyOverlap {
                grace: DEFAULT_GRACE
            })
        );
        assert_eq!(
            DeliveryRule::parse("any-overlap(g=3)"),
            Some(DeliveryRule::AnyOverlap { grace: 3 })
        );
        assert_eq!(DeliveryRule::parse("nonsense"), None);
        assert_eq!(DeliveryRule::parse("any-overlap(g=x)"), None);
    }

    #[test]
    fn parse_label_names_the_failure() {
        let err = DeliveryRule::parse_label("nonsense").unwrap_err();
        assert!(err.contains("unknown delivery rule `nonsense`"), "{err}");
        let err = DeliveryRule::parse_label("any-overlap(g=x)").unwrap_err();
        assert!(err.contains("`g`"), "{err}");
        let err = DeliveryRule::parse_label("any-overlap(q=3)").unwrap_err();
        assert!(err.contains("unknown parameter q"), "{err}");
        let err = DeliveryRule::parse_label("valid-at-send(g=3)").unwrap_err();
        assert!(err.contains("unknown parameter g"), "{err}");
    }

    #[test]
    fn default_is_the_historical_rule() {
        assert_eq!(DeliveryRule::default(), DeliveryRule::ValidAtDelivery);
    }

    #[test]
    fn valid_at_delivery_checks_now() {
        let rule = DeliveryRule::ValidAtDelivery;
        assert_eq!(rule.decide(true, false, 5, 5), DeliveryDecision::Deliver);
        assert_eq!(rule.decide(false, true, 5, 5), DeliveryDecision::Discard);
    }

    #[test]
    fn valid_at_send_checks_the_send_tick() {
        let rule = DeliveryRule::ValidAtSend;
        assert_eq!(rule.decide(false, true, 5, 5), DeliveryDecision::Deliver);
        assert_eq!(rule.decide(true, false, 5, 5), DeliveryDecision::Discard);
    }

    #[test]
    fn any_overlap_requeues_until_the_window_closes() {
        let rule = DeliveryRule::AnyOverlap { grace: 2 };
        let expires = rule.expiry(5);
        assert_eq!(expires, 7);
        assert_eq!(
            rule.decide(true, true, 5, expires),
            DeliveryDecision::Deliver
        );
        assert_eq!(
            rule.decide(false, true, 5, expires),
            DeliveryDecision::Requeue
        );
        assert_eq!(
            rule.decide(false, true, 6, expires),
            DeliveryDecision::Requeue
        );
        assert_eq!(
            rule.decide(true, true, 7, expires),
            DeliveryDecision::Deliver
        );
        assert_eq!(
            rule.decide(false, true, 7, expires),
            DeliveryDecision::Discard
        );
    }

    #[test]
    fn zero_grace_degenerates_to_valid_at_delivery() {
        let rule = DeliveryRule::AnyOverlap { grace: 0 };
        for (usable_now, usable_at_send) in [(true, true), (true, false), (false, true)] {
            assert_eq!(
                rule.decide(usable_now, usable_at_send, 5, rule.expiry(5)),
                DeliveryRule::ValidAtDelivery.decide(usable_now, usable_at_send, 5, 5),
            );
        }
    }
}
