//! The campaign CLI as a *library*: argument parsing, sweeping, sharding
//! and merging behind one [`run`] entry point that resolves every grid
//! dimension against **caller-supplied registries**.
//!
//! The stock `campaign` binary is a two-line wrapper over
//! `run(argv, &CliRegistries::default())`.  A project with its own
//! algorithms, environments or topologies gets the identical CLI — flags,
//! parameterised labels, sharding, byte-deterministic merging — with its
//! families registered, by building its own binary:
//!
//! ```no_run
//! use selfsim_campaign::cli::{self, CliRegistries};
//!
//! fn main() -> std::process::ExitCode {
//!     let mut registries = CliRegistries::default();
//!     // registries.environments.register(EnvRef::new(MyEnv { .. }));
//!     let argv: Vec<String> = std::env::args().skip(1).collect();
//!     cli::run(&argv, &registries)
//! }
//! ```
//!
//! (`examples/custom_campaign_cli.rs` is the runnable version.)  This is
//! what makes a *user-registered* environment sweepable by label from a
//! CLI — `--envs "my-env(k=0.5)"` — without editing any enum.
//!
//! All three grid dimensions resolve by label: algorithms against
//! [`Registry`], environments against [`EnvRegistry`], topologies against
//! [`TopologyRegistry`].  Environment and topology labels parameterise —
//! `--envs "churn(e=0.3,a=0.8)" --topologies "random(p=0.15)"` — and
//! round-trip: the `environment`/`topology` columns of any emitted record
//! feed back to these flags to re-run exactly that cell.
//!
//! `--trials` is the *total* trial budget: it is divided over the expanded
//! scenario grid with the remainder spread one-per-cell over the leading
//! cells, so the flag scales the whole sweep and the printed total is
//! exact.  Records stream to `--out` as trials finish (memory stays
//! `O(threads)`); per-scenario summaries aggregate incrementally.

// detlint::allow-file(stray-print, reason = "this module IS the CLI surface: usage, progress, summaries and errors on stdio are its contract; record bytes still flow only through the sink")
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use crate::{
    distribute_trials, emit, merge_shards, merge_trace_shards, Aggregator, AlgorithmRef, Campaign,
    CampaignResult, DeliveryRule, EnvRef, EnvRegistry, ExecutionMode, MergeOrder, ProgressThrottle,
    Registry, ScenarioGrid, ShardSpec, TopoRef, TopologyRegistry, TrialRecord,
};
use selfsim_runtime::validate_async_knobs;
use selfsim_trace::MetricsRegistry;

/// The three registries a campaign CLI resolves labels against — pass your
/// own to [`run`] to make user-registered families sweepable from the
/// command line.  [`CliRegistries::default`] is the builtin set the stock
/// `campaign` binary uses.
#[derive(Clone)]
pub struct CliRegistries {
    /// Algorithm labels (`--algorithms`, `--list-algorithms`).
    pub algorithms: Registry,
    /// Environment labels (`--envs`, `--list-environments`).
    pub environments: EnvRegistry,
    /// Topology labels (`--topologies`, `--list-topologies`).
    pub topologies: TopologyRegistry,
}

impl Default for CliRegistries {
    fn default() -> Self {
        CliRegistries {
            algorithms: Registry::builtin(),
            environments: EnvRegistry::builtin(),
            topologies: TopologyRegistry::builtin(),
        }
    }
}

#[derive(Debug)]
struct Args {
    algorithms: Vec<AlgorithmRef>,
    topologies: Vec<TopoRef>,
    envs: Vec<EnvRef>,
    modes: Vec<ExecutionMode>,
    sizes: Vec<usize>,
    async_rate: Option<f64>,
    async_latency: Option<usize>,
    async_drop: Option<f64>,
    delivery: Vec<DeliveryRule>,
    trials: u64,
    max_rounds: usize,
    seed: u64,
    threads: usize,
    shard: ShardSpec,
    merge: Vec<String>,
    merge_traces: Vec<String>,
    out: Option<String>,
    summary_out: Option<String>,
    trace: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    list_algorithms: bool,
    list_environments: bool,
    list_topologies: bool,
}

// The default grid: builtin labels resolved against the caller's
// registries.  A caller-built registry may omit some (or all) of these
// families, so resolution is best-effort — missing defaults simply leave
// that dimension to the explicit flags, and a flagless sweep over an
// empty dimension fails later with the ordinary "scenario grid is empty"
// error instead of a panic inside `--help`.
fn default_args(registries: &CliRegistries) -> Args {
    let resolve_envs = |labels: &[&str]| -> Vec<EnvRef> {
        labels
            .iter()
            .filter_map(|label| registries.environments.resolve(label).ok())
            .collect()
    };
    let resolve_topologies = |labels: &[&str]| -> Vec<TopoRef> {
        labels
            .iter()
            .filter_map(|label| registries.topologies.resolve(label).ok())
            .collect()
    };
    Args {
        algorithms: ["minimum", "second-smallest", "sum", "sorting"]
            .iter()
            .filter_map(|label| registries.algorithms.resolve(label).ok())
            .collect(),
        topologies: resolve_topologies(&["ring", "complete", "random"]),
        envs: resolve_envs(&[
            "static",
            "churn",
            "markov",
            "partition",
            "crash",
            "adversary",
        ]),
        modes: vec![ExecutionMode::sync()],
        sizes: vec![12],
        async_rate: None,
        async_latency: None,
        async_drop: None,
        delivery: Vec::new(),
        trials: 100,
        max_rounds: 200_000,
        seed: 0,
        threads: 0,
        shard: ShardSpec::full(),
        merge: Vec::new(),
        merge_traces: Vec::new(),
        out: None,
        summary_out: None,
        trace: None,
        metrics_out: None,
        quiet: false,
        list_algorithms: false,
        list_environments: false,
        list_topologies: false,
    }
}

const USAGE: &str = "\
campaign — run a parallel experiment sweep over self-similar algorithms and baselines

OPTIONS
    --algorithms a,b,..   registry labels (see --list-algorithms)
    --topologies t,..     registry labels (see --list-topologies); bare family
                          names take their defaults and labels parameterise:
                          ring|line|grid|complete|star|random|random(p=0.15)
    --envs e,..           registry labels (see --list-environments); bare or
                          parameterised: static|churn|churn(e=0.3,a=0.8)|
                          markov|partition(b=3,t=8)|crash|adversary|churn+crash
    --modes m,..          execution modes to sweep (default sync); bare or
                          parameterised, round-tripping the mode column:
                          sync|sync(cd=N)|event|event(cd=N)|
                          async|async(i=P,l=N,d=P,dv=RULE)
    --mode m              alias for --modes with a single value
    --async-rate P        async: per-tick interaction probability (default 0.5)
    --async-latency N     async: latency drawn from 1..=N ticks (default 3)
    --async-drop P        async: in-flight loss probability (default 0)
    --delivery r,..       async delivery rule(s): valid-at-delivery|valid-at-send|
                          any-overlap|any-overlap(g=N) — each rule becomes its own
                          grid cell (default valid-at-delivery)
    --sizes n,..          agents per system (default 12)
    --trials N            total trial budget, split exactly over scenarios (default 100)
    --max-rounds N        per-trial round/tick budget (default 200000)
    --seed S              campaign master seed (default 0)
    --threads T           worker threads, 0 = all CPUs (default 0)
    --shard i/k           run only stride shard i of k (default 0/1 = everything);
                          merging all k shard outputs reproduces the unsharded bytes
    --merge f0 f1 ..      merge shard JSONL files (in --shard index order) instead of
                          running; writes the exact unsharded record stream to --out
                          and re-aggregates the summary table
    --merge-traces f0 ..  with --merge: merge shard trace files (in the same
                          --shard index order) into --trace PATH, reconstructing
                          the exact unsharded event stream trial block by block
    --out PATH            stream per-trial records as JSON-lines (as trials finish);
                          `-` streams to stdout and moves the summary to stderr
    --summary-out PATH    write per-scenario summaries as JSON-lines
    --trace PATH          opt-in: stream per-trial structured event traces to PATH
                          (JSON-lines, one trial-start..trial-end block per trial);
                          bytes are identical across thread counts and shard merges,
                          and each block replays from its record's label + seed
    --metrics-out PATH    write an end-of-run metrics snapshot (pipeline stage
                          timers, reorder-window depth, sim counters) as JSON
    --list-algorithms     print the algorithm registry and exit
    --list-environments   print the environment registry and exit
    --list-topologies     print the topology registry and exit
    --quiet               suppress progress output
    --help                this text

Environment and topology labels round-trip: the `environment` and
`topology` columns of any emitted JSONL record or markdown row can be fed
back to --envs/--topologies to re-run exactly that cell.
";

fn parse_args(argv: &[String], registries: &CliRegistries) -> Result<Args, String> {
    let mut args = default_args(registries);
    let mut it = argv.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--algorithms" => {
                args.algorithms = parse_list(&value("--algorithms")?, |s| {
                    registries.algorithms.resolve(s)
                })?;
            }
            "--topologies" => {
                args.topologies = parse_list(&value("--topologies")?, |s| {
                    registries.topologies.resolve(s)
                })?;
            }
            "--envs" => {
                args.envs = parse_list(&value("--envs")?, |s| registries.environments.resolve(s))?;
            }
            "--modes" | "--mode" => {
                args.modes = parse_list(&value(flag)?, ExecutionMode::parse_label)?;
            }
            "--sizes" => {
                args.sizes = parse_list(&value("--sizes")?, |s| {
                    s.parse::<usize>()
                        .map_err(|e| format!("bad size `{s}`: {e}"))
                })?;
            }
            "--async-rate" => {
                args.async_rate = Some(
                    value("--async-rate")?
                        .parse()
                        .map_err(|e| format!("bad --async-rate: {e}"))?,
                );
            }
            "--async-latency" => {
                args.async_latency = Some(
                    value("--async-latency")?
                        .parse()
                        .map_err(|e| format!("bad --async-latency: {e}"))?,
                );
            }
            "--async-drop" => {
                args.async_drop = Some(
                    value("--async-drop")?
                        .parse()
                        .map_err(|e| format!("bad --async-drop: {e}"))?,
                );
            }
            "--delivery" => {
                args.delivery = parse_list(&value("--delivery")?, DeliveryRule::parse_label)?;
            }
            "--trials" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("bad --trials: {e}"))?;
            }
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("bad --max-rounds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--shard" => args.shard = ShardSpec::parse(&value("--shard")?)?,
            "--merge" => {
                while let Some(path) = it.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    args.merge.push(it.next().expect("peeked").clone());
                }
                if args.merge.is_empty() {
                    return Err("--merge expects one or more shard JSONL files".into());
                }
            }
            "--merge-traces" => {
                while let Some(path) = it.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    args.merge_traces.push(it.next().expect("peeked").clone());
                }
                if args.merge_traces.is_empty() {
                    return Err("--merge-traces expects one or more shard trace files".into());
                }
            }
            "--out" => args.out = Some(value("--out")?),
            "--summary-out" => args.summary_out = Some(value("--summary-out")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--list-algorithms" => args.list_algorithms = true,
            "--list-environments" => args.list_environments = true,
            "--list-topologies" => args.list_topologies = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.trials == 0 {
        return Err("--trials must be positive".into());
    }
    apply_async_knobs(&mut args)?;
    if let Some(n) = args.sizes.iter().find(|&&n| n < 2) {
        return Err(format!("--sizes values must be at least 2, got {n}"));
    }
    if !args.merge.is_empty() && !args.shard.is_full() {
        return Err(
            "--merge and --shard are mutually exclusive (merge reads finished shard files)".into(),
        );
    }
    if args.summary_out.as_deref().is_some_and(is_stdout) {
        return Err(
            "--summary-out must be a file path; stdout is reserved for records (--out -) \
             and the summary table"
                .into(),
        );
    }
    if args.trace.as_deref().is_some_and(is_stdout) {
        return Err("--trace must be a file path; stdout is reserved for records (--out -)".into());
    }
    if args.metrics_out.as_deref().is_some_and(is_stdout) {
        return Err("--metrics-out must be a file path".into());
    }
    if !args.merge_traces.is_empty() {
        if args.merge.is_empty() {
            return Err(
                "--merge-traces requires --merge (it merges finished shard trace files)".into(),
            );
        }
        if args.trace.is_none() {
            return Err("--merge-traces writes the merged event stream to --trace PATH".into());
        }
        if args.merge_traces.len() != args.merge.len() {
            return Err(format!(
                "--merge-traces expects one trace file per --merge shard file ({} vs {})",
                args.merge_traces.len(),
                args.merge.len(),
            ));
        }
    }
    if !args.merge.is_empty() {
        if args.merge_traces.is_empty() && args.trace.is_some() {
            return Err("--trace in merge mode needs --merge-traces shard files to merge".into());
        }
        if args.metrics_out.is_some() {
            return Err("--metrics-out only applies to a sweep run, not --merge".into());
        }
    }
    Ok(args)
}

/// Folds the async knob flags (`--async-rate/-latency/-drop`) into every
/// async mode and expands the `--delivery` dimension (one async mode per
/// rule).  The flags only make sense with an async mode selected, so their
/// presence without one is a hard error rather than a silent no-op.
fn apply_async_knobs(args: &mut Args) -> Result<(), String> {
    let has_knobs = args.async_rate.is_some()
        || args.async_latency.is_some()
        || args.async_drop.is_some()
        || !args.delivery.is_empty();
    if !has_knobs {
        return Ok(());
    }
    if !args.modes.iter().any(|m| m.is_async()) {
        return Err(
            "--async-rate/--async-latency/--async-drop/--delivery only apply to the async \
             runtime; add `async` to --modes"
                .into(),
        );
    }
    let rules: Option<&[DeliveryRule]> = if args.delivery.is_empty() {
        None
    } else {
        Some(&args.delivery)
    };
    let mut modes = Vec::new();
    for mode in &args.modes {
        match *mode {
            ExecutionMode::Async {
                interaction_rate,
                max_latency,
                drop_rate,
                delivery,
            } => {
                let interaction_rate = args.async_rate.unwrap_or(interaction_rate);
                let max_latency = args.async_latency.unwrap_or(max_latency);
                let drop_rate = args.async_drop.unwrap_or(drop_rate);
                validate_async_knobs(interaction_rate, max_latency, drop_rate)?;
                for &delivery in rules.unwrap_or(&[delivery]) {
                    modes.push(ExecutionMode::Async {
                        interaction_rate,
                        max_latency,
                        drop_rate,
                        delivery,
                    });
                }
            }
            sync => modes.push(sync),
        }
    }
    args.modes = modes;
    Ok(())
}

/// Splits a CSV flag value into items and parses each.  The split is
/// parenthesis-aware ([`crate::split_top_level`]) so
/// parameterised labels like `churn(e=0.3,a=0.8)` stay whole.
fn parse_list<T>(csv: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    crate::split_top_level(csv)
        .into_iter()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

fn print_registry(registry: &Registry) {
    print_label_registry(
        "algorithms",
        "",
        registry
            .iter()
            .map(|algorithm| {
                let topology = match algorithm.forced_topology() {
                    Some(family) => format!(" [topology: {}]", family.label()),
                    None => String::new(),
                };
                (
                    algorithm.label().to_string(),
                    format!("expected: {}", algorithm.expectation().label()),
                    format!("{}{}", algorithm.description(), topology),
                )
            })
            .collect(),
    );
}

/// The parameterised-label footer shared by the environment and topology
/// listings (algorithm labels are plain registry keys, so their listing
/// omits it).
const LABEL_FOOTER: &str =
    "\nlabels parameterise as family(k=v,..) and round-trip through records.";

/// Pads every column to its longest row so the listings stay aligned
/// however long the registered labels grow.
fn print_label_registry(heading: &str, footer: &str, rows: Vec<(String, String, String)>) {
    let width = |pick: fn(&(String, String, String)) -> &String| {
        rows.iter().map(|row| pick(row).len()).max().unwrap_or(0)
    };
    let (w0, w1) = (width(|r| &r.0), width(|r| &r.1));
    println!("registered {heading} ({}):", rows.len());
    for (family, defaults, extra) in &rows {
        println!("  {family:<w0$} {defaults:<w1$} {extra}");
    }
    if !footer.is_empty() {
        println!("{footer}");
    }
}

fn print_env_registry(registry: &EnvRegistry) {
    print_label_registry(
        "environments",
        LABEL_FOOTER,
        registry
            .iter()
            .map(|env| {
                (
                    env.family().to_string(),
                    format!("defaults: {}", env.label()),
                    format!(
                        "fragments: {}  {}",
                        if env.can_fragment() { "yes" } else { "no " },
                        env.description()
                    ),
                )
            })
            .collect(),
    );
}

fn print_topology_registry(registry: &TopologyRegistry) {
    print_label_registry(
        "topologies",
        LABEL_FOOTER,
        registry
            .iter()
            .map(|topology| {
                (
                    topology.family().to_string(),
                    format!("defaults: {}", topology.label()),
                    topology.description().to_string(),
                )
            })
            .collect(),
    );
}

/// Runs the campaign CLI against `registries`: parses `argv` (the
/// command-line arguments, program name excluded), then sweeps, shards,
/// merges or lists exactly as the stock `campaign` binary does.  Every
/// label — `--algorithms`, `--envs`, `--topologies`, and the defaults —
/// resolves against the given registries, so families registered by the
/// caller are first-class sweepable dimensions.
pub fn run(argv: &[String], registries: &CliRegistries) -> ExitCode {
    let args = match parse_args(argv, registries) {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_algorithms || args.list_environments || args.list_topologies {
        if args.list_algorithms {
            print_registry(&registries.algorithms);
        }
        if args.list_environments {
            print_env_registry(&registries.environments);
        }
        if args.list_topologies {
            print_topology_registry(&registries.topologies);
        }
        return ExitCode::SUCCESS;
    }
    let outcome = if args.merge.is_empty() {
        run_sweep(&args)
    } else {
        run_merge(&args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs (one shard of) the sweep, streaming records to `--out`.
fn run_sweep(args: &Args) -> Result<(), String> {
    let scenarios = ScenarioGrid::new()
        .algorithms(args.algorithms.iter().cloned())
        .topologies(args.topologies.iter().cloned())
        .envs(args.envs.iter().cloned())
        .modes(args.modes.iter().copied())
        .sizes(args.sizes.iter().copied())
        .max_rounds(args.max_rounds)
        .trials(1) // replaced below by the exact budget split
        .expand();
    if scenarios.is_empty() {
        return Err("the scenario grid is empty".into());
    }

    // Split the budget exactly: every cell gets `base`, and the first
    // `extra` cells one more, so the total is `--trials`, not the old
    // `div_ceil` overshoot (e.g. 100 over 48 cells used to run 144).
    let mut scenarios = scenarios;
    let (base, extra) = distribute_trials(&mut scenarios, args.trials);
    if base == 0 {
        eprintln!(
            "warning: --trials {} is below the grid's {} cells; {} cells run zero trials \
             and will be absent from records and summaries",
            args.trials,
            scenarios.len(),
            scenarios.len() as u64 - extra,
        );
    }

    // `--metrics-out` attaches a registry; the run updates it and the
    // snapshot is written after the sweep.  Without the flag no registry
    // exists and the runner takes no clock readings at all.
    let registry = args
        .metrics_out
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let mut campaign = Campaign::new(scenarios)
        .seed(args.seed)
        .threads(args.threads)
        .shard(args.shard);
    if let Some(registry) = &registry {
        campaign = campaign.observe(Arc::clone(registry));
    }
    let total = campaign.trial_count();
    let shard_total = campaign.shard_trial_count();
    debug_assert_eq!(total, args.trials, "exact budget split");
    if !args.quiet {
        let shard_note = if args.shard.is_full() {
            String::new()
        } else {
            format!(
                ", shard {} -> {} of them here",
                args.shard.label(),
                shard_total
            )
        };
        eprintln!(
            "campaign: {} scenarios, {} trials total ({}-{} per cell, seed {}, {} threads{})",
            campaign.scenarios().len(),
            total,
            base,
            if extra > 0 { base + 1 } else { base },
            args.seed,
            if args.threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                args.threads
            },
            shard_note,
        );
    }

    // ~10 progress updates/sec however many worker threads finish trials;
    // the final 100% line always passes the throttle.
    let throttle = ProgressThrottle::every(Duration::from_millis(100));
    let quiet = args.quiet;
    let progress = move |done: u64, total: u64| {
        if !quiet && throttle.report(done, total) {
            eprintln!("  {done}/{total} trials");
        }
    };

    // detlint::allow(wall-clock, reason = "elapsed-time line on stderr after the run; never serialized into records")
    #[allow(clippy::disallowed_methods)] // sanctioned: see pragma above
    let started = std::time::Instant::now();
    // (`Stdout`, not `StdoutLock` — the sink crosses into the runner's
    // worker scope and must be `Send`.  With `--out -` the records own
    // stdout and everything human-readable goes to stderr below.)
    let sink: Option<(Box<dyn Write + Send>, &str)> = match &args.out {
        Some(path) if is_stdout(path) => Some((
            Box::new(std::io::BufWriter::new(std::io::stdout())),
            "stdout",
        )),
        Some(path) => Some((
            Box::new(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            )),
            path.as_str(),
        )),
        None => None,
    };
    let trace: Option<(Box<dyn Write + Send>, &str)> = match &args.trace {
        Some(path) => Some((
            Box::new(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            )),
            path.as_str(),
        )),
        None => None,
    };
    let result: CampaignResult = match (sink, trace) {
        (Some((mut writer, label)), Some((mut trace, trace_label))) => campaign
            .stream_with_trace(&mut writer, &mut trace, progress)
            .and_then(|result| {
                writer.flush()?;
                trace.flush()?;
                Ok(result)
            })
            .map_err(|e| {
                format!("cannot stream records to {label} / traces to {trace_label}: {e}")
            })?,
        (None, Some((mut trace, trace_label))) => {
            // `--trace` without `--out`: the event stream is the product;
            // records are aggregated and dropped.
            let mut devnull = std::io::sink();
            campaign
                .stream_with_trace(&mut devnull, &mut trace, progress)
                .and_then(|result| {
                    trace.flush()?;
                    Ok(result)
                })
                .map_err(|e| format!("cannot stream traces to {trace_label}: {e}"))?
        }
        (Some((mut writer, label)), None) => campaign
            .stream_with_progress(&mut writer, progress)
            .and_then(|result| {
                writer.flush()?;
                Ok(result)
            })
            .map_err(|e| format!("cannot stream records to {label}: {e}"))?,
        (None, None) => campaign.run_with_progress(progress),
    };
    let elapsed = started.elapsed();

    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        write_file(path, |w| w.write_all(registry.snapshot_json().as_bytes()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    if let Some(path) = &args.summary_out {
        write_file(path, |w| emit::write_summary_jsonl(w, &result.summaries))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let report = format!(
        "{}{}\n{:.2}s wall clock, {:.0} trials/s",
        emit::markdown_summary(&result.summaries),
        totals_line(&result, args),
        elapsed.as_secs_f64(),
        result.trials as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    );
    if args.out.as_deref().is_some_and(is_stdout) {
        if !args.quiet {
            eprintln!("{report}");
        }
    } else {
        println!("{report}");
    }
    Ok(())
}

/// `true` when `path` means "stream to stdout" (`-` or `/dev/stdout`).
fn is_stdout(path: &str) -> bool {
    path == "-" || path == "/dev/stdout"
}

/// Merges finished shard record files back into the unsharded byte stream
/// and re-aggregates the summary table from the merged records.
fn run_merge(args: &Args) -> Result<(), String> {
    let mut shards: Vec<BufReader<std::fs::File>> = Vec::with_capacity(args.merge.len());
    for path in &args.merge {
        let file =
            std::fs::File::open(path).map_err(|e| format!("cannot open shard file {path}: {e}"))?;
        shards.push(BufReader::new(file));
    }

    let stdout = std::io::stdout();
    let mut writer: Box<dyn Write> = match &args.out {
        Some(path) if !is_stdout(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        _ => Box::new(std::io::BufWriter::new(stdout.lock())),
    };

    // Every merged line is parsed once: the order checker proves the
    // reconstructed stream is in exact unsharded job order (this is what
    // catches equal-length shard files passed out of `--shard` order,
    // which no line-count check can see), and the same record feeds the
    // re-aggregated summary table.
    let mut order = MergeOrder::new();
    let mut aggregator = Aggregator::new();
    let merged = merge_shards(&mut shards, |line| {
        writer
            .write_all(line)
            .map_err(|e| format!("cannot write merged records: {e}"))?;
        let record =
            TrialRecord::from_jsonl_line(std::str::from_utf8(line).map_err(|e| e.to_string())?)?;
        order.check(&record)?;
        aggregator.observe(&record);
        Ok(())
    })
    .and_then(|merged| {
        writer
            .flush()
            .map_err(|e| format!("cannot flush merged records: {e}"))?;
        Ok(merged)
    });
    drop(writer);
    let merged = match merged {
        Ok(merged) => merged,
        Err(e) => {
            // Don't leave a partial (possibly misordered) merged file
            // behind: existence must imply a complete, validated stream.
            if let Some(path) = args.out.as_deref().filter(|p| !is_stdout(p)) {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }
    };

    // Merge the trace shards (if given) block by block: each trial's
    // `trial-start`..`trial-end` event block moves whole, in round-robin
    // shard order, reconstructing the exact unsharded event stream.
    let trace_blocks = if args.merge_traces.is_empty() {
        None
    } else {
        let path = args.trace.as_deref().expect("validated by parse_args");
        let mut trace_shards: Vec<BufReader<std::fs::File>> =
            Vec::with_capacity(args.merge_traces.len());
        for shard_path in &args.merge_traces {
            let file = std::fs::File::open(shard_path)
                .map_err(|e| format!("cannot open shard trace file {shard_path}: {e}"))?;
            trace_shards.push(BufReader::new(file));
        }
        let mut writer = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        );
        let blocks = merge_trace_shards(&mut trace_shards, |line| {
            writer
                .write_all(line)
                .map_err(|e| format!("cannot write merged traces: {e}"))
        })
        .and_then(|blocks| {
            writer
                .flush()
                .map_err(|e| format!("cannot flush merged traces: {e}"))?;
            Ok(blocks)
        });
        match blocks {
            Ok(blocks) => Some(blocks),
            Err(e) => {
                // Same contract as the record merge: a merged trace file
                // only exists if it is complete and validated.
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
    };

    let summaries = aggregator.summaries();
    if let Some(path) = &args.summary_out {
        write_file(path, |w| emit::write_summary_jsonl(w, &summaries))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let trace_note = match trace_blocks {
        Some(blocks) => format!(", plus {blocks} trace blocks"),
        None => String::new(),
    };
    if args.out.as_deref().is_some_and(|p| !is_stdout(p)) {
        // With --out FILE the table goes to stdout; otherwise stdout
        // carries the merged records and the table would corrupt the
        // stream.
        print!("{}", emit::markdown_summary(&summaries));
        println!(
            "merged {merged} records from {} shard files across {} scenario cells{trace_note}",
            args.merge.len(),
            summaries.len(),
        );
    } else if !args.quiet {
        eprintln!(
            "merged {merged} records from {} shard files across {} scenario cells{trace_note}",
            args.merge.len(),
            summaries.len(),
        );
    }
    Ok(())
}

fn totals_line(result: &CampaignResult, args: &Args) -> String {
    let trials = result.trials;
    let converged: u64 = result.summaries.iter().map(|s| s.converged).sum();
    let expected: u64 = result.summaries.iter().map(|s| s.expectation_met).sum();
    let shard_note = if args.shard.is_full() {
        String::new()
    } else {
        format!(" [shard {}]", args.shard.label())
    };
    format!(
        "{trials} trials{shard_note}, {converged} converged ({:.1}%), {expected} as expected ({:.1}%)",
        100.0 * converged as f64 / trials.max(1) as f64,
        100.0 * expected as f64 / trials.max(1) as f64,
    )
}

fn write_file(
    path: &str,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write(&mut writer)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_registries_do_not_panic_in_defaults_or_help() {
        // A downstream CLI may supply registries holding only its own
        // families; the hardcoded default labels must degrade to empty
        // dimensions (failing later with "scenario grid is empty"), not
        // panic before --help or explicit flags are even seen.
        let sparse = CliRegistries {
            algorithms: Registry::new(),
            environments: EnvRegistry::new(),
            topologies: TopologyRegistry::new(),
        };
        let args = default_args(&sparse);
        assert!(args.algorithms.is_empty());
        assert!(args.envs.is_empty());
        assert!(args.topologies.is_empty());
        // --help still reaches the usage path (the empty-message Err).
        assert_eq!(
            parse_args(&["--help".to_string()], &sparse).err(),
            Some(String::new()),
        );
        // An explicit unknown label errors against the sparse registry.
        let err = parse_args(&["--envs".to_string(), "churn".to_string()], &sparse).unwrap_err();
        assert!(err.contains("unknown environment `churn`"), "{err}");
    }

    #[test]
    fn builtin_defaults_resolve_completely() {
        let args = default_args(&CliRegistries::default());
        assert_eq!(args.algorithms.len(), 4);
        assert_eq!(args.envs.len(), 6);
        assert_eq!(args.topologies.len(), 3);
    }
}
