//! Sharding: splitting one campaign across independent processes.
//!
//! A campaign's flat job list (scenario-major, trial-minor) is split by
//! *stable stride*: shard `i` of `k` owns every job whose global position
//! is congruent to `i` modulo `k`.  The stride split balances load (cells
//! differ wildly in cost, so contiguous ranges would skew) and makes the
//! merge trivial and byte-exact: the unsharded record stream is the
//! round-robin interleave of the shard streams, so [`merge_shards`]
//! reconstructs the *exact bytes* an unsharded run would have emitted.
//! Per-trial seeds are derived from `(campaign seed, scenario, trial)` and
//! never from the shard, so the determinism contract — byte-identical
//! output for a given `(scenarios, seed)` — holds regardless of threads
//! *or* shards.

/// Which slice of the campaign's job list this process runs: shard
/// `index` of `count`, selecting jobs by stable stride.
///
/// The default ([`ShardSpec::full`]) is shard `0/1` — the whole campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    index: u64,
    count: u64,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::full()
    }
}

impl ShardSpec {
    /// The whole campaign as a single shard (`0/1`).
    pub fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`; errors unless `index < count`.
    pub fn new(index: u64, count: u64) -> Result<Self, String> {
        if count == 0 {
            return Err(format!(
                "invalid shard spec `{index}/{count}`: the shard count must be at least 1 \
                 (expected `i/k` with 0 <= i < k, e.g. `0/4`)"
            ));
        }
        if index >= count {
            return Err(format!(
                "invalid shard spec `{index}/{count}`: the shard index must be below the \
                 shard count (expected `i/k` with 0 <= i < k, e.g. `0/{count}`)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses an `i/k` spec (what the CLI's `--shard` flag accepts),
    /// mirroring the registry's descriptive-error style.
    pub fn parse(s: &str) -> Result<Self, String> {
        let malformed = || {
            format!(
                "invalid shard spec `{s}`: expected `i/k` with 0 <= i < k \
                 (two base-10 integers, e.g. `0/4`)"
            )
        };
        let (index, count) = s.split_once('/').ok_or_else(malformed)?;
        let index: u64 = index.trim().parse().map_err(|_| malformed())?;
        let count: u64 = count.trim().parse().map_err(|_| malformed())?;
        ShardSpec::new(index, count)
    }

    /// This shard's index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when this is the whole campaign (`0/1`).
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// The `i/k` label (inverse of [`ShardSpec::parse`]).
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// `true` when this shard owns the job at `position` in the flat,
    /// scenario-major job list.
    pub fn owns(&self, position: u64) -> bool {
        position % self.count == self.index
    }

    /// The global job position of this shard's `local`-th job — the stride
    /// enumeration `index, index + count, index + 2·count, …`.
    pub fn global_position(&self, local: u64) -> u64 {
        self.index + local * self.count
    }

    /// How many of `total` jobs this shard owns.
    pub fn size(&self, total: u64) -> u64 {
        total.saturating_sub(self.index).div_ceil(self.count)
    }
}

/// Round-robin merges stride-sharded JSONL streams back into the exact
/// byte stream an unsharded run would have emitted.
///
/// `shards` must be given in `--shard` index order (`0/k`, `1/k`, …):
/// round `r` of the merge emits line `r` of every shard in turn, which is
/// exactly the global job order under stride sharding.  Every emitted line
/// ends with `\n` (re-normalised if a shard file lacks a trailing
/// newline), and `emit` is called once per line with the full line bytes.
///
/// Returns the number of merged lines.  Errors — without any partial-line
/// emission beyond what already succeeded — when a stream fails to read,
/// `emit` fails, or the line counts are inconsistent with a stride
/// partition (a later shard yielding a line after an earlier one ran dry,
/// or counts spreading by more than one), which is what passing files out
/// of order or dropping a shard usually looks like.
///
/// These checks are *structural* (they never parse a line), so equal-count
/// shard files passed out of index order merge without error here — feed
/// each emitted line to a [`MergeOrder`] checker (as `campaign --merge`
/// does) to verify the reconstructed global order exactly.
pub fn merge_shards<R: std::io::BufRead>(
    shards: &mut [R],
    mut emit: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<u64, String> {
    let mut merged = 0u64;
    let mut counts = vec![0u64; shards.len()];
    let mut line = String::new();
    loop {
        let mut exhausted_this_round: Option<usize> = None;
        let mut progressed = false;
        for (i, shard) in shards.iter_mut().enumerate() {
            line.clear();
            let read = shard
                .read_line(&mut line)
                .map_err(|e| format!("cannot read shard file {i}: {e}"))?;
            if read == 0 {
                exhausted_this_round.get_or_insert(i);
                continue;
            }
            if let Some(j) = exhausted_this_round {
                return Err(format!(
                    "shard file {i} still has records after shard file {j} ran dry; \
                     stride-sharded outputs must be passed in `--shard` index order \
                     (`0/k`, `1/k`, ...) with no shard missing"
                ));
            }
            if !line.ends_with('\n') {
                line.push('\n');
            }
            emit(line.as_bytes())?;
            counts[i] += 1;
            merged += 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max > min + 1 {
        return Err(format!(
            "shard record counts {counts:?} are not a stride partition \
             (they may differ by at most one); was a shard file omitted?"
        ));
    }
    Ok(merged)
}

/// Round-robin merges stride-sharded *trace* streams (`--trace` event
/// JSONL) back into the exact byte stream an unsharded traced run would
/// have emitted.
///
/// Where [`merge_shards`] interleaves per *line* (one record per trial),
/// a trace stream carries one *block* of lines per trial — from its
/// `trial-start` event through its `trial-end` event — so the merge
/// interleaves per block: round `r` emits shard `0`'s `r`-th trial block,
/// then shard `1`'s, and so on.  Blocks are delimited structurally by the
/// stable `{"event":"trial-end"` line prefix every trace serializer
/// emits, so no line is ever parsed.
///
/// Returns the number of merged trial blocks.  Errors mirror
/// [`merge_shards`]: unreadable streams, a later shard yielding a block
/// after an earlier one ran dry, block counts spreading by more than one,
/// or a stream ending mid-block (a truncated shard file).
pub fn merge_trace_shards<R: std::io::BufRead>(
    shards: &mut [R],
    mut emit: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<u64, String> {
    const END_PREFIX: &str = "{\"event\":\"trial-end\"";
    let mut merged = 0u64;
    let mut counts = vec![0u64; shards.len()];
    let mut line = String::new();
    loop {
        let mut exhausted_this_round: Option<usize> = None;
        let mut progressed = false;
        for (i, shard) in shards.iter_mut().enumerate() {
            line.clear();
            let read = shard
                .read_line(&mut line)
                .map_err(|e| format!("cannot read trace shard file {i}: {e}"))?;
            if read == 0 {
                exhausted_this_round.get_or_insert(i);
                continue;
            }
            if let Some(j) = exhausted_this_round {
                return Err(format!(
                    "trace shard file {i} still has trial blocks after trace shard file {j} \
                     ran dry; stride-sharded traces must be passed in `--shard` index order \
                     (`0/k`, `1/k`, ...) with no shard missing"
                ));
            }
            loop {
                if !line.ends_with('\n') {
                    line.push('\n');
                }
                let block_done = line.starts_with(END_PREFIX);
                emit(line.as_bytes())?;
                if block_done {
                    break;
                }
                line.clear();
                let read = shard
                    .read_line(&mut line)
                    .map_err(|e| format!("cannot read trace shard file {i}: {e}"))?;
                if read == 0 {
                    return Err(format!(
                        "trace shard file {i} ends mid-trial (no `trial-end` event closes \
                         the final block); was the file truncated?"
                    ));
                }
            }
            counts[i] += 1;
            merged += 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max > min + 1 {
        return Err(format!(
            "trace shard trial-block counts {counts:?} are not a stride partition \
             (they may differ by at most one); was a shard file omitted?"
        ));
    }
    Ok(merged)
}

/// Verifies that a merged record stream is in unsharded job *shape* —
/// scenario-major (each scenario's records contiguous), trial-minor
/// (trials `0, 1, 2, …` within the scenario) — without knowing the grid.
///
/// This tightens [`merge_shards`]' structural checks considerably: two
/// equal-length shard files swapped on the command line interleave without
/// tripping any count check, but any misplaced record that breaks a
/// scenario's `0, 1, 2, …` trial sequence fails here.  When every cell
/// runs at least two trials, a swap always breaks some sequence (stride
/// sharding spreads each cell's trials over multiple shards), so
/// detection is complete.  The irreducible blind spot: a grid whose cells
/// all run exactly *one* trial permutes as whole single-record blocks,
/// which no grid-agnostic check can distinguish from the true order — if
/// you merge such a stream, pass the files in `--shard` index order (or
/// `cmp` against an unsharded rerun).
#[derive(Debug, Default)]
pub struct MergeOrder {
    current: Option<String>,
    next_trial: u64,
    finished: std::collections::BTreeSet<String>,
}

impl MergeOrder {
    /// A checker expecting the first record of the first scenario.
    pub fn new() -> Self {
        MergeOrder::default()
    }

    /// Checks the next record of the merged stream.
    pub fn check(&mut self, record: &crate::trial::TrialRecord) -> Result<(), String> {
        let misordered = |got: u64, want: u64| {
            format!(
                "merged stream is out of order: scenario `{}` trial {got} where trial \
                 {want} was expected; are the shard files in `--shard` index order?",
                record.scenario
            )
        };
        match &self.current {
            Some(current) if *current == record.scenario => {
                if record.trial != self.next_trial {
                    return Err(misordered(record.trial, self.next_trial));
                }
            }
            _ => {
                if self.finished.contains(&record.scenario) {
                    return Err(format!(
                        "merged stream is out of order: records for scenario `{}` are not \
                         contiguous; are the shard files in `--shard` index order?",
                        record.scenario
                    ));
                }
                if record.trial != 0 {
                    return Err(misordered(record.trial, 0));
                }
                if let Some(finished) = self.current.take() {
                    self.finished.insert(finished);
                }
                self.current = Some(record.scenario.clone());
                self.next_trial = 0;
            }
        }
        self.next_trial += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn full_shard_owns_everything() {
        let full = ShardSpec::full();
        assert!(full.is_full());
        for position in 0..10 {
            assert!(full.owns(position));
        }
        assert_eq!(full.size(7), 7);
        assert_eq!(full.label(), "0/1");
    }

    #[test]
    fn stride_ownership_partitions_positions() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3).unwrap()).collect();
        for position in 0..20u64 {
            let owners = shards.iter().filter(|s| s.owns(position)).count();
            assert_eq!(owners, 1, "position {position}");
        }
        // Sizes cover the total and differ by at most one.
        let sizes: Vec<u64> = shards.iter().map(|s| s.size(20)).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 20);
        assert_eq!(sizes, vec![7, 7, 6]);
        // Local → global enumeration is the stride.
        assert_eq!(shards[1].global_position(0), 1);
        assert_eq!(shards[1].global_position(2), 7);
    }

    #[test]
    fn parse_round_trips_and_rejects_malformed_specs() {
        let spec = ShardSpec::parse("2/5").unwrap();
        assert_eq!((spec.index(), spec.count()), (2, 5));
        assert_eq!(ShardSpec::parse(&spec.label()).unwrap(), spec);

        for bad in ["3/3", "0/0", "a/b", "", "1", "1/", "/4", "-1/4", "1/2/3"] {
            let err = ShardSpec::parse(bad).unwrap_err();
            assert!(
                err.contains(&format!("invalid shard spec `{bad}`")) || bad.is_empty(),
                "{bad}: {err}"
            );
            assert!(err.contains("expected `i/k`"), "{bad}: {err}");
        }
        // The two semantically-bad shapes get targeted messages.
        assert!(ShardSpec::parse("3/3")
            .unwrap_err()
            .contains("index must be below"));
        assert!(ShardSpec::parse("0/0")
            .unwrap_err()
            .contains("count must be at least 1"));
    }

    fn lines(items: &[&str]) -> Cursor<Vec<u8>> {
        Cursor::new(items.concat().into_bytes())
    }

    #[test]
    fn merge_interleaves_round_robin() {
        // Stride split of lines a..g over 3 shards.
        let mut shards = vec![
            lines(&["a\n", "d\n", "g\n"]),
            lines(&["b\n", "e\n"]),
            lines(&["c\n", "f\n"]),
        ];
        let mut out = Vec::new();
        let merged = merge_shards(&mut shards, |line| {
            out.extend_from_slice(line);
            Ok(())
        })
        .unwrap();
        assert_eq!(merged, 7);
        assert_eq!(out, b"a\nb\nc\nd\ne\nf\ng\n");
    }

    #[test]
    fn merge_renormalises_missing_trailing_newline() {
        let mut shards = vec![lines(&["a\n", "c"]), lines(&["b\n"])];
        let mut out = Vec::new();
        merge_shards(&mut shards, |line| {
            out.extend_from_slice(line);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, b"a\nb\nc\n");
    }

    #[test]
    fn merge_rejects_out_of_order_shards() {
        // Shard 1 (2 lines) passed before shard 0 (3 lines): the longer
        // file yields a line after the shorter ran dry.
        let mut shards = vec![lines(&["b\n", "e\n"]), lines(&["a\n", "d\n", "g\n"])];
        let err = merge_shards(&mut shards, |_| Ok(())).unwrap_err();
        assert!(err.contains("`--shard` index order"), "{err}");
    }

    #[test]
    fn merge_rejects_non_partition_counts() {
        let mut shards = vec![lines(&["a\n", "b\n", "c\n"]), lines(&["d\n"])];
        let err = merge_shards(&mut shards, |_| Ok(())).unwrap_err();
        assert!(err.contains("not a stride partition"), "{err}");
    }

    #[test]
    fn trace_merge_interleaves_whole_trial_blocks() {
        let block = |trial: u64, lines_between: usize| {
            let mut block = format!("{{\"event\":\"trial-start\",\"trial\":{trial}}}\n");
            for tick in 0..lines_between {
                block.push_str(&format!("{{\"event\":\"group-step\",\"tick\":{tick}}}\n"));
            }
            block.push_str(&format!("{{\"event\":\"trial-end\",\"trial\":{trial}}}\n"));
            block
        };
        // Stride split of trials 0..5 over 2 shards, with block lengths
        // deliberately uneven so line-wise interleaving would garble them.
        let shard0 = [block(0, 3), block(2, 0), block(4, 1)].concat();
        let shard1 = [block(1, 1), block(3, 2)].concat();
        let mut shards = vec![
            Cursor::new(shard0.clone().into_bytes()),
            Cursor::new(shard1.clone().into_bytes()),
        ];
        let mut out = Vec::new();
        let merged = merge_trace_shards(&mut shards, |line| {
            out.extend_from_slice(line);
            Ok(())
        })
        .unwrap();
        assert_eq!(merged, 5);
        let expected = [
            block(0, 3),
            block(1, 1),
            block(2, 0),
            block(3, 2),
            block(4, 1),
        ]
        .concat();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    #[test]
    fn trace_merge_rejects_truncated_blocks() {
        let whole =
            "{\"event\":\"trial-start\",\"trial\":0}\n{\"event\":\"trial-end\",\"trial\":0}\n";
        let truncated = "{\"event\":\"trial-start\",\"trial\":1}\n";
        let mut shards = vec![
            Cursor::new(whole.as_bytes().to_vec()),
            Cursor::new(truncated.as_bytes().to_vec()),
        ];
        let err = merge_trace_shards(&mut shards, |_| Ok(())).unwrap_err();
        assert!(err.contains("mid-trial"), "{err}");
    }

    #[test]
    fn trace_merge_rejects_out_of_order_shards() {
        let block = |trial: u64| {
            format!("{{\"event\":\"trial-start\",\"trial\":{trial}}}\n{{\"event\":\"trial-end\",\"trial\":{trial}}}\n")
        };
        let mut shards = vec![
            Cursor::new(block(1).into_bytes()),
            Cursor::new([block(0), block(2)].concat().into_bytes()),
        ];
        let err = merge_trace_shards(&mut shards, |_| Ok(())).unwrap_err();
        assert!(err.contains("`--shard` index order"), "{err}");
    }

    #[test]
    fn merge_propagates_emit_errors() {
        let mut shards = vec![lines(&["a\n"])];
        let err = merge_shards(&mut shards, |_| Err("sink full".into())).unwrap_err();
        assert_eq!(err, "sink full");
    }

    fn record(scenario: &str, trial: u64) -> crate::trial::TrialRecord {
        crate::trial::TrialRecord {
            scenario: scenario.into(),
            algorithm: "minimum".into(),
            topology: "ring".into(),
            environment: "static".into(),
            mode: "sync".into(),
            delivery: "-".into(),
            agents: 8,
            trial,
            seed: trial,
            converged: true,
            expected: "converge".into(),
            meets_expectation: true,
            rounds_to_convergence: Some(3),
            rounds_executed: 3,
            group_steps: 3,
            effective_group_steps: 3,
            messages: 24,
            messages_dropped: 0,
            messages_requeued: 0,
            events_processed: 0,
            peak_queue_depth: 0,
            initial_objective: 10.0,
            final_objective: 0.0,
            objective_monotone: true,
        }
    }

    #[test]
    fn merge_order_accepts_scenario_major_trial_minor_streams() {
        let mut order = MergeOrder::new();
        for (scenario, trial) in [("a", 0), ("a", 1), ("a", 2), ("b", 0), ("b", 1)] {
            order.check(&record(scenario, trial)).unwrap();
        }
    }

    #[test]
    fn merge_order_catches_equal_count_shards_swapped() {
        // Stride shards of a,0 a,1 a,2 a,3: shard0 = trials 0,2; shard1 =
        // trials 1,3.  Merging them swapped yields 1,0,3,2 — the very
        // first record already has the wrong trial index.
        let mut order = MergeOrder::new();
        let err = order.check(&record("a", 1)).unwrap_err();
        assert!(err.contains("trial 1 where trial 0 was expected"), "{err}");

        // And mid-scenario swaps are caught by the increment check.
        let mut order = MergeOrder::new();
        order.check(&record("a", 0)).unwrap();
        let err = order.check(&record("a", 2)).unwrap_err();
        assert!(err.contains("trial 2 where trial 1 was expected"), "{err}");
    }

    #[test]
    fn merge_order_rejects_non_contiguous_scenarios() {
        let mut order = MergeOrder::new();
        order.check(&record("a", 0)).unwrap();
        order.check(&record("b", 0)).unwrap();
        let err = order.check(&record("a", 1)).unwrap_err();
        assert!(err.contains("not contiguous"), "{err}");
    }
}
