//! The open environment & topology dimensions: object-safe factory traits,
//! label registries, and the builtin families.
//!
//! The paper defines a self-similar algorithm against an *arbitrary*
//! environment process constrained only by the fairness assumption `□◇Q` —
//! so the campaign grid's environment and topology dimensions must be as
//! open as its algorithm dimension has been since the [`Registry`]
//! redesign.  This module mirrors that design exactly:
//!
//! * [`EnvFactory`] / [`TopologyFactory`] — object-safe traits describing
//!   one *parameterised instance* of an environment or topology family:
//!   its family name (the registry key), its exact round-trippable label,
//!   how to materialise it, and — for environments — whether its
//!   parameters can split the agents into proper subgroups
//!   ([`EnvFactory::can_fragment`], which is what lets user-registered
//!   environments participate in [`Expectation`] checking);
//! * [`EnvRef`] / [`TopoRef`] — shared cloneable handles, what scenarios
//!   carry across threads;
//! * [`EnvRegistry`] / [`TopologyRegistry`] — label → family maps, both
//!   aliases of the one generic [`LabelRegistry`].
//!   Resolution goes through the shared `name(k=v,…)` grammar
//!   ([`selfsim_env::params`]): `churn(e=0.3,a=0.8)` splits into the
//!   family `churn` and its parameters, and the family's
//!   [`EnvFactory::instantiate`] validates each field by name.  Because
//!   instances *emit* labels through the same grammar, every label in a
//!   JSONL record or markdown table parses back to the identical cell —
//!   the round-trip law.
//!
//! The closed [`EnvModel`](crate::EnvModel) and
//! [`TopologyFamily`](crate::TopologyFamily) enums remain as thin
//! `Into<EnvRef>` / `Into<TopoRef>` shims, exactly as
//! [`AlgorithmKind`](crate::AlgorithmKind) was kept.
//!
//! [`Registry`]: crate::Registry
//! [`Expectation`]: crate::Expectation

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::RngCore;
use selfsim_env::{
    parse_label, AdversarialEnv, ComposedEnv, CrashRestartEnv, Environment, MarkovLinkEnv, Params,
    PeriodicPartitionEnv, RandomChurnEnv, StaticEnv, Topology,
};

use crate::scenario::grid_dims;

// ---------------------------------------------------------------------------
// The environment dimension.
// ---------------------------------------------------------------------------

/// One parameterised environment family member the campaign can sweep —
/// object-safe so registries can hold boxed factories and scenarios can
/// carry them across threads.
///
/// Implementations are stateless beyond their parameters: every
/// [`EnvFactory::build`] call materialises a fresh process, so one shared
/// instance serves arbitrarily many concurrent trials.
pub trait EnvFactory: Send + Sync {
    /// Family name — the registry key and the part of the label before the
    /// parameter list (e.g. `churn`).
    fn family(&self) -> &str;

    /// One-line human description for `--list-environments`.
    fn description(&self) -> &str {
        ""
    }

    /// The exact label of this instance (`churn(e=0.5,a=0.9)`).  Must
    /// round-trip: resolving it against a registry holding this family
    /// reconstructs an instance with the identical label.
    fn label(&self) -> String;

    /// `true` when this instance's *parameters* allow it to split the
    /// agents into proper subgroups — e.g. churn with `p_edge = 1.0` and
    /// `p_agent = 1.0` is dynamic in name only and never fragments.
    /// Together with the execution mode this decides whether a
    /// [`DivergeUnderFragmentation`](crate::Expectation) cell is expected
    /// to converge.  (This is a per-cell expectation: a genuinely
    /// fragmenting environment can still draw a fully-connected first
    /// round, so treat the `meets_expectation` column as a measurement,
    /// not an invariant.)
    fn can_fragment(&self) -> bool;

    /// Materialises the environment process over `topology`.
    fn build(&self, topology: Topology) -> Box<dyn Environment>;

    /// Constructs the family member named by `params` (an empty list keeps
    /// every default), validating each field by name and rejecting unknown
    /// parameters — how registries turn `churn(e=0.3,a=0.8)` into a cell.
    fn instantiate(&self, params: Params) -> Result<EnvRef, String>;
}

/// A shared, cloneable handle to an environment-family instance — what
/// scenarios carry.  Equality is by label, which is exactly cell identity.
#[derive(Clone)]
pub struct EnvRef(Arc<dyn EnvFactory>);

impl EnvRef {
    /// Wraps an environment-factory implementation.
    pub fn new(factory: impl EnvFactory + 'static) -> Self {
        EnvRef(Arc::new(factory))
    }

    /// The instance's family name.
    pub fn family(&self) -> &str {
        self.0.family()
    }

    /// The instance's one-line description.
    pub fn description(&self) -> &str {
        self.0.description()
    }

    /// The instance's exact, round-trippable label.
    pub fn label(&self) -> String {
        self.0.label()
    }

    /// Whether the instance's parameters can fragment the agents (see
    /// [`EnvFactory::can_fragment`]).
    pub fn can_fragment(&self) -> bool {
        self.0.can_fragment()
    }

    /// Materialises the environment process over `topology`.
    pub fn build(&self, topology: Topology) -> Box<dyn Environment> {
        self.0.build(topology)
    }

    /// Constructs a sibling instance from parsed parameters (see
    /// [`EnvFactory::instantiate`]).
    pub fn instantiate(&self, params: Params) -> Result<EnvRef, String> {
        self.0.instantiate(params)
    }
}

impl std::fmt::Debug for EnvRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EnvRef({})", self.label())
    }
}

impl PartialEq for EnvRef {
    fn eq(&self, other: &Self) -> bool {
        self.label() == other.label()
    }
}

/// A family entry a [`LabelRegistry`] can hold — implemented by
/// [`EnvRef`] and [`TopoRef`] (both delegate to their factory traits).
/// The `NOUN`s feed the registry's error messages.
pub trait RegistryEntry: Clone {
    /// The dimension noun for error messages (`"environment"`).
    const NOUN: &'static str;
    /// The plural used when listing the registry (`"environments"`).
    const NOUN_PLURAL: &'static str;

    /// The entry's family name — its registry key.
    fn family_name(&self) -> &str;

    /// Constructs the family member named by `params` (see
    /// [`EnvFactory::instantiate`]).
    fn instantiate_params(&self, params: Params) -> Result<Self, String>;
}

impl RegistryEntry for EnvRef {
    const NOUN: &'static str = "environment";
    const NOUN_PLURAL: &'static str = "environments";

    fn family_name(&self) -> &str {
        self.family()
    }

    fn instantiate_params(&self, params: Params) -> Result<Self, String> {
        self.instantiate(params)
    }
}

impl RegistryEntry for TopoRef {
    const NOUN: &'static str = "topology";
    const NOUN_PLURAL: &'static str = "topologies";

    fn family_name(&self) -> &str {
        self.family()
    }

    fn instantiate_params(&self, params: Params) -> Result<Self, String> {
        self.instantiate(params)
    }
}

/// Maps family names to parameterisable factories — the one registry
/// mechanism behind both open grid dimensions ([`EnvRegistry`],
/// [`TopologyRegistry`]).  Resolution parses labels through the shared
/// grammar and hands the parameters to the family's factory.
#[derive(Clone)]
pub struct LabelRegistry<R: RegistryEntry> {
    entries: BTreeMap<String, R>,
}

/// The environment registry: `LabelRegistry` over [`EnvRef`] entries.
pub type EnvRegistry = LabelRegistry<EnvRef>;

/// The topology registry: `LabelRegistry` over [`TopoRef`] entries.
pub type TopologyRegistry = LabelRegistry<TopoRef>;

impl<R: RegistryEntry> Default for LabelRegistry<R> {
    fn default() -> Self {
        LabelRegistry {
            entries: BTreeMap::new(),
        }
    }
}

impl<R: RegistryEntry> LabelRegistry<R> {
    /// An empty registry.
    pub fn new() -> Self {
        LabelRegistry::default()
    }

    /// Registers a family under its name, replacing any previous entry.
    /// The registered instance's parameters become the family's defaults
    /// (what a bare `name` label resolves to).
    pub fn register(&mut self, factory: R) {
        self.entries
            .insert(factory.family_name().to_string(), factory);
    }

    /// Resolves a (possibly parameterised) label into an instance:
    /// `churn`, `churn(e=0.3,a=0.8)` and every label a record's
    /// `environment`/`topology` column can contain.  Unknown families
    /// list the registry contents; malformed or out-of-range parameters
    /// name the offending field.
    pub fn resolve(&self, label: &str) -> Result<R, String> {
        let (family, params) = parse_label(label)?;
        let entry = self.entries.get(family).ok_or_else(|| {
            format!(
                "unknown {} `{family}`; registered {}: {}",
                R::NOUN,
                R::NOUN_PLURAL,
                self.families().join(", ")
            )
        })?;
        entry.instantiate_params(params)
    }

    /// All registered family names, sorted.
    pub fn families(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Iterates over the registered default instances in family order.
    pub fn iter(&self) -> impl Iterator<Item = &R> {
        self.entries.values()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl LabelRegistry<EnvRef> {
    /// The builtin registry: every stock environment family in its default
    /// parameterisation.
    ///
    /// The returned value is a cheap clone (family → `Arc` map) of a
    /// shared instance; use [`EnvRegistry::builtin_ref`] when a borrow
    /// suffices.
    pub fn builtin() -> Self {
        EnvRegistry::builtin_ref().clone()
    }

    /// Borrowed view of the shared builtin registry, built once per
    /// process.
    pub fn builtin_ref() -> &'static EnvRegistry {
        static BUILTIN: std::sync::OnceLock<EnvRegistry> = std::sync::OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut registry = EnvRegistry::new();
            for factory in [
                EnvRef::new(StaticEnvFactory),
                EnvRef::new(ChurnEnvFactory::default()),
                EnvRef::new(MarkovEnvFactory::default()),
                EnvRef::new(PartitionEnvFactory::default()),
                EnvRef::new(CrashEnvFactory::default()),
                EnvRef::new(AdversaryEnvFactory::default()),
                EnvRef::new(ChurnPlusCrashEnvFactory::default()),
            ] {
                registry.register(factory);
            }
            registry
        })
    }
}

// ---------------------------------------------------------------------------
// The topology dimension.
// ---------------------------------------------------------------------------

/// One parameterised topology family member — the communication-graph
/// counterpart of [`EnvFactory`].
pub trait TopologyFactory: Send + Sync {
    /// Family name — the registry key (e.g. `random`).
    fn family(&self) -> &str;

    /// One-line human description for `--list-topologies`.
    fn description(&self) -> &str {
        ""
    }

    /// The exact, round-trippable label of this instance
    /// (`random(p=0.15)`).
    fn label(&self) -> String;

    /// Materialises the graph for `n` agents, drawing any randomness from
    /// `rng` (so random families are deterministic per trial).
    fn build(&self, n: usize, rng: &mut dyn RngCore) -> Topology;

    /// Constructs the family member named by `params` (see
    /// [`EnvFactory::instantiate`]).
    fn instantiate(&self, params: Params) -> Result<TopoRef, String>;
}

/// A shared, cloneable handle to a topology-family instance.  Equality is
/// by label.
#[derive(Clone)]
pub struct TopoRef(Arc<dyn TopologyFactory>);

impl TopoRef {
    /// Wraps a topology-factory implementation.
    pub fn new(factory: impl TopologyFactory + 'static) -> Self {
        TopoRef(Arc::new(factory))
    }

    /// The instance's family name.
    pub fn family(&self) -> &str {
        self.0.family()
    }

    /// The instance's one-line description.
    pub fn description(&self) -> &str {
        self.0.description()
    }

    /// The instance's exact, round-trippable label.
    pub fn label(&self) -> String {
        self.0.label()
    }

    /// Materialises the graph for `n` agents.
    pub fn build(&self, n: usize, rng: &mut dyn RngCore) -> Topology {
        self.0.build(n, rng)
    }

    /// Constructs a sibling instance from parsed parameters.
    pub fn instantiate(&self, params: Params) -> Result<TopoRef, String> {
        self.0.instantiate(params)
    }
}

impl std::fmt::Debug for TopoRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TopoRef({})", self.label())
    }
}

impl PartialEq for TopoRef {
    fn eq(&self, other: &Self) -> bool {
        self.label() == other.label()
    }
}

impl LabelRegistry<TopoRef> {
    /// The builtin registry: every stock topology family in its default
    /// parameterisation (a cheap clone of a shared instance).
    pub fn builtin() -> Self {
        TopologyRegistry::builtin_ref().clone()
    }

    /// Borrowed view of the shared builtin registry, built once per
    /// process.
    pub fn builtin_ref() -> &'static TopologyRegistry {
        static BUILTIN: std::sync::OnceLock<TopologyRegistry> = std::sync::OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut registry = TopologyRegistry::new();
            for factory in [
                TopoRef::new(RingTopology),
                TopoRef::new(LineTopology),
                TopoRef::new(GridTopology),
                TopoRef::new(CompleteTopology),
                TopoRef::new(StarTopology),
                TopoRef::new(RandomTopology::default()),
            ] {
                registry.register(factory);
            }
            registry
        })
    }
}

// ---------------------------------------------------------------------------
// Builtin environment families.
// ---------------------------------------------------------------------------

/// Fully benign: every edge available, every agent enabled.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StaticEnvFactory;

impl EnvFactory for StaticEnvFactory {
    fn family(&self) -> &str {
        "static"
    }
    fn description(&self) -> &str {
        "fully benign: every edge available, every agent enabled"
    }
    fn label(&self) -> String {
        "static".into()
    }
    fn can_fragment(&self) -> bool {
        false
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(StaticEnv::new(topology))
    }
    fn instantiate(&self, params: Params) -> Result<EnvRef, String> {
        params.finish(&[])?;
        Ok(EnvRef::new(StaticEnvFactory))
    }
}

/// Independent per-round churn (`churn(e=…,a=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChurnEnvFactory {
    pub p_edge: f64,
    pub p_agent: f64,
}

impl Default for ChurnEnvFactory {
    fn default() -> Self {
        ChurnEnvFactory {
            p_edge: 0.5,
            p_agent: 0.9,
        }
    }
}

impl EnvFactory for ChurnEnvFactory {
    fn family(&self) -> &str {
        "churn"
    }
    fn description(&self) -> &str {
        "independent per-round churn: edge up w.p. e, agent enabled w.p. a"
    }
    fn label(&self) -> String {
        format!("churn(e={},a={})", self.p_edge, self.p_agent)
    }
    fn can_fragment(&self) -> bool {
        self.p_edge < 1.0 || self.p_agent < 1.0
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(RandomChurnEnv::new(topology, self.p_edge, self.p_agent))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let p_edge = params.take_probability("e")?.unwrap_or(self.p_edge);
        let p_agent = params.take_probability("a")?.unwrap_or(self.p_agent);
        params.finish(&["e", "a"])?;
        Ok(EnvRef::new(ChurnEnvFactory { p_edge, p_agent }))
    }
}

/// Two-state Markov on/off links (`markov(up=…,down=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct MarkovEnvFactory {
    pub p_up: f64,
    pub p_down: f64,
}

impl Default for MarkovEnvFactory {
    fn default() -> Self {
        MarkovEnvFactory {
            p_up: 0.3,
            p_down: 0.3,
        }
    }
}

impl EnvFactory for MarkovEnvFactory {
    fn family(&self) -> &str {
        "markov"
    }
    fn description(&self) -> &str {
        "two-state Markov on/off links (down→up w.p. up, up→down w.p. down)"
    }
    fn label(&self) -> String {
        format!("markov(up={},down={})", self.p_up, self.p_down)
    }
    fn can_fragment(&self) -> bool {
        // Links start up and only fragment once one goes down.
        self.p_down > 0.0
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(MarkovLinkEnv::new(topology, self.p_up, self.p_down))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let p_up = params.take_probability("up")?.unwrap_or(self.p_up);
        let p_down = params.take_probability("down")?.unwrap_or(self.p_down);
        params.finish(&["up", "down"])?;
        Ok(EnvRef::new(MarkovEnvFactory { p_up, p_down }))
    }
}

/// Periodic partition into blocks with periodic global merges
/// (`partition(b=…,t=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PartitionEnvFactory {
    pub blocks: usize,
    pub period: usize,
}

impl Default for PartitionEnvFactory {
    fn default() -> Self {
        PartitionEnvFactory {
            blocks: 3,
            period: 8,
        }
    }
}

impl EnvFactory for PartitionEnvFactory {
    fn family(&self) -> &str {
        "partition"
    }
    fn description(&self) -> &str {
        "periodic partition into b contiguous blocks, global merge every t rounds"
    }
    fn label(&self) -> String {
        format!("partition(b={},t={})", self.blocks, self.period)
    }
    fn can_fragment(&self) -> bool {
        // A single block never partitions anything.
        self.blocks > 1
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(PeriodicPartitionEnv::new(
            topology,
            self.blocks,
            self.period,
        ))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let blocks = params.take_positive("b")?.unwrap_or(self.blocks);
        let period = params.take_positive("t")?.unwrap_or(self.period);
        params.finish(&["b", "t"])?;
        Ok(EnvRef::new(PartitionEnvFactory { blocks, period }))
    }
}

/// Agent crash/restart faults (`crash(c=…,r=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CrashEnvFactory {
    pub p_crash: f64,
    pub p_restart: f64,
}

impl Default for CrashEnvFactory {
    fn default() -> Self {
        CrashEnvFactory {
            p_crash: 0.05,
            p_restart: 0.5,
        }
    }
}

impl EnvFactory for CrashEnvFactory {
    fn family(&self) -> &str {
        "crash"
    }
    fn description(&self) -> &str {
        "agent crash/restart faults (crash w.p. c, restart w.p. r)"
    }
    fn label(&self) -> String {
        format!("crash(c={},r={})", self.p_crash, self.p_restart)
    }
    fn can_fragment(&self) -> bool {
        // Agents start up and only drop out if they can crash.
        self.p_crash > 0.0
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(CrashRestartEnv::new(topology, self.p_crash, self.p_restart))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let p_crash = params.take_probability("c")?.unwrap_or(self.p_crash);
        let p_restart = params.take_probability("r")?.unwrap_or(self.p_restart);
        params.finish(&["c", "r"])?;
        Ok(EnvRef::new(CrashEnvFactory { p_crash, p_restart }))
    }
}

/// Minimally fair adversary: one edge every `silence + 1` rounds
/// (`adversary(s=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdversaryEnvFactory {
    pub silence: usize,
}

impl Default for AdversaryEnvFactory {
    fn default() -> Self {
        AdversaryEnvFactory { silence: 1 }
    }
}

impl EnvFactory for AdversaryEnvFactory {
    fn family(&self) -> &str {
        "adversary"
    }
    fn description(&self) -> &str {
        "minimally fair adversary: one edge every s+1 rounds, silence between"
    }
    fn label(&self) -> String {
        format!("adversary(s={})", self.silence)
    }
    fn can_fragment(&self) -> bool {
        // One edge at a time is maximal fragmentation by construction.
        true
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(AdversarialEnv::new(topology, self.silence))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let silence = params.take::<usize>("s")?.unwrap_or(self.silence);
        params.finish(&["s"])?;
        Ok(EnvRef::new(AdversaryEnvFactory { silence }))
    }
}

/// Link churn composed with crash/restart faults
/// (`churn+crash(e=…,c=…,r=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChurnPlusCrashEnvFactory {
    pub p_edge: f64,
    pub p_crash: f64,
    pub p_restart: f64,
}

impl Default for ChurnPlusCrashEnvFactory {
    fn default() -> Self {
        ChurnPlusCrashEnvFactory {
            p_edge: 0.6,
            p_crash: 0.05,
            p_restart: 0.5,
        }
    }
}

impl EnvFactory for ChurnPlusCrashEnvFactory {
    fn family(&self) -> &str {
        "churn+crash"
    }
    fn description(&self) -> &str {
        "link churn composed with crash/restart faults"
    }
    fn label(&self) -> String {
        format!(
            "churn+crash(e={},c={},r={})",
            self.p_edge, self.p_crash, self.p_restart
        )
    }
    fn can_fragment(&self) -> bool {
        self.p_edge < 1.0 || self.p_crash > 0.0
    }
    fn build(&self, topology: Topology) -> Box<dyn Environment> {
        Box::new(ComposedEnv::new(
            RandomChurnEnv::new(topology.clone(), self.p_edge, 1.0),
            CrashRestartEnv::new(topology, self.p_crash, self.p_restart),
        ))
    }
    fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
        let p_edge = params.take_probability("e")?.unwrap_or(self.p_edge);
        let p_crash = params.take_probability("c")?.unwrap_or(self.p_crash);
        let p_restart = params.take_probability("r")?.unwrap_or(self.p_restart);
        params.finish(&["e", "c", "r"])?;
        Ok(EnvRef::new(ChurnPlusCrashEnvFactory {
            p_edge,
            p_crash,
            p_restart,
        }))
    }
}

// ---------------------------------------------------------------------------
// Builtin topology families.
// ---------------------------------------------------------------------------

/// Generates the five parameterless graph families with one macro — each is
/// a unit struct whose label is its family name.
macro_rules! fixed_topology {
    ($(#[$doc:meta])* $name:ident, $family:literal, $description:literal, $build:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default)]
        pub(crate) struct $name;

        impl TopologyFactory for $name {
            fn family(&self) -> &str {
                $family
            }
            fn description(&self) -> &str {
                $description
            }
            fn label(&self) -> String {
                $family.into()
            }
            fn build(&self, n: usize, _rng: &mut dyn RngCore) -> Topology {
                // `$build` may be any callable expression; invoking through
                // the macro parameter keeps the expansion hygienic
                #[allow(clippy::redundant_closure_call)]
                ($build)(n)
            }
            fn instantiate(&self, params: Params) -> Result<TopoRef, String> {
                params.finish(&[])?;
                Ok(TopoRef::new($name))
            }
        }
    };
}

fixed_topology!(
    /// Cycle on `n` agents.
    RingTopology,
    "ring",
    "cycle on n agents",
    Topology::ring
);
fixed_topology!(
    /// Path on `n` agents.
    LineTopology,
    "line",
    "path on n agents",
    Topology::line
);
fixed_topology!(
    /// Near-square grid (largest divisor split of `n`; primes degenerate
    /// to a line — see [`grid_dims`]).
    GridTopology,
    "grid",
    "near-square grid (largest divisor split; primes degenerate to a line)",
    |n| {
        let (rows, cols) = grid_dims(n);
        Topology::grid(rows, cols)
    }
);
fixed_topology!(
    /// Complete graph on `n` agents.
    CompleteTopology,
    "complete",
    "complete graph on n agents",
    Topology::complete
);
fixed_topology!(
    /// Star with agent 0 at the centre.
    StarTopology,
    "star",
    "star with agent 0 at the centre",
    Topology::star
);

/// Connected Erdős–Rényi graph with edge probability `p`, re-sampled per
/// trial from the trial's seed (`random(p=…)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RandomTopology {
    pub p: f64,
}

impl Default for RandomTopology {
    fn default() -> Self {
        RandomTopology { p: 0.3 }
    }
}

impl TopologyFactory for RandomTopology {
    fn family(&self) -> &str {
        "random"
    }
    fn description(&self) -> &str {
        "connected Erdős–Rényi graph, edge probability p, re-sampled per trial"
    }
    fn label(&self) -> String {
        format!("random(p={})", self.p)
    }
    fn build(&self, n: usize, mut rng: &mut dyn RngCore) -> Topology {
        Topology::random_connected(n, self.p, &mut rng)
    }
    fn instantiate(&self, mut params: Params) -> Result<TopoRef, String> {
        let p = params.take_probability("p")?.unwrap_or(self.p);
        params.finish(&["p"])?;
        Ok(TopoRef::new(RandomTopology { p }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builtin_registries_cover_the_stock_families() {
        assert_eq!(EnvRegistry::builtin().len(), 7);
        assert_eq!(TopologyRegistry::builtin().len(), 6);
        assert_eq!(
            EnvRegistry::builtin().families(),
            vec![
                "adversary",
                "churn",
                "churn+crash",
                "crash",
                "markov",
                "partition",
                "static"
            ]
        );
        assert_eq!(
            TopologyRegistry::builtin().families(),
            vec!["complete", "grid", "line", "random", "ring", "star"]
        );
    }

    #[test]
    fn every_builtin_label_round_trips_to_the_identical_cell() {
        let envs = EnvRegistry::builtin();
        for entry in envs.iter() {
            let reparsed = envs.resolve(&entry.label()).expect("own label resolves");
            assert_eq!(reparsed.label(), entry.label());
            assert_eq!(reparsed.can_fragment(), entry.can_fragment());
        }
        let topos = TopologyRegistry::builtin();
        for entry in topos.iter() {
            let reparsed = topos.resolve(&entry.label()).expect("own label resolves");
            assert_eq!(reparsed.label(), entry.label());
        }
    }

    #[test]
    fn parameterised_labels_resolve_to_the_named_cell() {
        let envs = EnvRegistry::builtin();
        let cell = envs.resolve("churn(e=0.3,a=0.8)").unwrap();
        assert_eq!(cell.label(), "churn(e=0.3,a=0.8)");
        assert!(cell.can_fragment());
        // Parameters can switch fragmentation off entirely.
        let benign = envs.resolve("churn(e=1,a=1)").unwrap();
        assert!(!benign.can_fragment());
        // Omitted parameters keep the registered defaults.
        let partial = envs.resolve("churn(e=0.3)").unwrap();
        assert_eq!(partial.label(), "churn(e=0.3,a=0.9)");
        let topo = TopologyRegistry::builtin()
            .resolve("random(p=0.15)")
            .unwrap();
        assert_eq!(topo.label(), "random(p=0.15)");
    }

    #[test]
    fn resolution_errors_name_the_failure() {
        let envs = EnvRegistry::builtin();
        let err = envs.resolve("nonsense").unwrap_err();
        assert!(err.contains("unknown environment `nonsense`"), "{err}");
        for family in envs.families() {
            assert!(err.contains(&family), "error must list {family}");
        }
        let err = envs.resolve("churn(e=1.5)").unwrap_err();
        assert!(err.contains("`e`"), "{err}");
        assert!(err.contains("probability"), "{err}");
        let err = envs.resolve("churn(q=0.5)").unwrap_err();
        assert!(err.contains("unknown parameter q"), "{err}");
        assert!(err.contains("expected e, a"), "{err}");
        let err = envs.resolve("partition(b=0)").unwrap_err();
        assert!(err.contains("`b` must be at least 1"), "{err}");
        let err = envs.resolve("static(x=1)").unwrap_err();
        assert!(err.contains("unknown parameter x"), "{err}");
        let err = TopologyRegistry::builtin()
            .resolve("random(p=2)")
            .unwrap_err();
        assert!(err.contains("`p`"), "{err}");
        let err = TopologyRegistry::builtin().resolve("torus").unwrap_err();
        assert!(err.contains("unknown topology `torus`"), "{err}");
    }

    #[test]
    fn builtin_topologies_build_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for entry in TopologyRegistry::builtin().iter() {
            let topo = entry.build(12, &mut rng);
            assert_eq!(topo.agent_count(), 12, "{}", entry.label());
            assert!(topo.is_connected(), "{}", entry.label());
        }
    }

    #[test]
    fn user_families_register_and_resolve_by_label() {
        // A user environment: every edge up on even rounds, none on odd
        // rounds — registered without touching any enum.
        struct Blinker {
            period: usize,
        }
        struct BlinkerEnv {
            topology: Topology,
            period: usize,
            tick: usize,
        }
        impl Environment for BlinkerEnv {
            fn topology(&self) -> &Topology {
                &self.topology
            }
            fn step(&mut self, _rng: &mut dyn RngCore) -> selfsim_env::EnvState {
                let on = (self.tick / self.period).is_multiple_of(2);
                self.tick += 1;
                if on {
                    selfsim_env::EnvState::fully_enabled(&self.topology)
                } else {
                    selfsim_env::EnvState::fully_disabled(self.topology.agent_count())
                }
            }
        }
        impl EnvFactory for Blinker {
            fn family(&self) -> &str {
                "blinker"
            }
            fn label(&self) -> String {
                format!("blinker(t={})", self.period)
            }
            fn can_fragment(&self) -> bool {
                false
            }
            fn build(&self, topology: Topology) -> Box<dyn Environment> {
                Box::new(BlinkerEnv {
                    topology,
                    period: self.period,
                    tick: 0,
                })
            }
            fn instantiate(&self, mut params: Params) -> Result<EnvRef, String> {
                let period = params.take_positive("t")?.unwrap_or(self.period);
                params.finish(&["t"])?;
                Ok(EnvRef::new(Blinker { period }))
            }
        }
        let mut registry = EnvRegistry::builtin();
        registry.register(EnvRef::new(Blinker { period: 2 }));
        assert_eq!(registry.len(), 8);
        let cell = registry.resolve("blinker(t=5)").unwrap();
        assert_eq!(cell.label(), "blinker(t=5)");
        let mut env = cell.build(Topology::ring(4));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(env.step(&mut rng).enabled_edges().len(), 4);
    }
}
