//! The `campaign` CLI: run a scenario sweep in parallel — optionally as
//! one stride shard of a larger fleet — streaming JSON-lines records, and
//! merge shard outputs back into the exact unsharded byte stream.
//!
//! ```text
//! cargo run --release --bin campaign -- --trials 100
//! cargo run --release --bin campaign -- --list-algorithms
//! cargo run --release --bin campaign -- \
//!     --algorithms minimum,snapshot,flooding --envs churn,partition \
//!     --topologies complete --modes sync,async --sizes 8,16 --trials 200 \
//!     --seed 42 --threads 8 --out runs.jsonl --summary-out summary.jsonl
//!
//! # the delivery-semantics sweep: one async cell per rule, custom knobs
//! cargo run --release --bin campaign -- \
//!     --algorithms minimum,flooding --envs partition --topologies complete \
//!     --modes async --delivery valid-at-delivery,valid-at-send,any-overlap \
//!     --async-rate 0.5 --async-latency 3 --async-drop 0.1 --trials 120
//!
//! # the same sweep as three processes (possibly three machines) ...
//! cargo run --release --bin campaign -- --trials 200 --shard 0/3 --out s0.jsonl
//! cargo run --release --bin campaign -- --trials 200 --shard 1/3 --out s1.jsonl
//! cargo run --release --bin campaign -- --trials 200 --shard 2/3 --out s2.jsonl
//! # ... merged back into the bytes the unsharded run would have written
//! cargo run --release --bin campaign -- --merge s0.jsonl s1.jsonl s2.jsonl \
//!     --out merged.jsonl --summary-out summary.jsonl
//! ```
//!
//! Algorithms are resolved by label against the builtin [`Registry`] — the
//! paper's worked examples, the circumscribing-circle counterexample, and
//! the snapshot/flooding baselines all sweep through the same grid.
//!
//! `--trials` is the *total* trial budget: it is divided over the expanded
//! scenario grid with the remainder spread one-per-cell over the leading
//! cells, so the flag scales the whole sweep and the printed total is
//! exact.  Records stream to `--out` as trials finish (memory stays
//! `O(threads)`); per-scenario summaries aggregate incrementally.

use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::time::Duration;

use selfsim_campaign::{
    distribute_trials, emit, merge_shards, Aggregator, AlgorithmRef, Campaign, CampaignResult,
    DeliveryRule, EnvModel, ExecutionMode, MergeOrder, ProgressThrottle, Registry, ScenarioGrid,
    ShardSpec, TopologyFamily, TrialRecord,
};
use selfsim_runtime::validate_async_knobs;

struct Args {
    algorithms: Vec<AlgorithmRef>,
    topologies: Vec<TopologyFamily>,
    envs: Vec<EnvModel>,
    modes: Vec<ExecutionMode>,
    sizes: Vec<usize>,
    async_rate: Option<f64>,
    async_latency: Option<usize>,
    async_drop: Option<f64>,
    delivery: Vec<DeliveryRule>,
    trials: u64,
    max_rounds: usize,
    seed: u64,
    threads: usize,
    shard: ShardSpec,
    merge: Vec<String>,
    out: Option<String>,
    summary_out: Option<String>,
    quiet: bool,
    list_algorithms: bool,
}

fn default_args(registry: &Registry) -> Args {
    Args {
        algorithms: ["minimum", "second-smallest", "sum", "sorting"]
            .iter()
            .map(|label| registry.resolve(label).expect("builtin"))
            .collect(),
        topologies: vec![
            TopologyFamily::Ring,
            TopologyFamily::Complete,
            TopologyFamily::Random { p: 0.3 },
        ],
        envs: vec![
            EnvModel::Static,
            EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            },
            EnvModel::MarkovLink {
                p_up: 0.3,
                p_down: 0.3,
            },
            EnvModel::PeriodicPartition {
                blocks: 3,
                period: 8,
            },
            EnvModel::CrashRestart {
                p_crash: 0.05,
                p_restart: 0.5,
            },
            EnvModel::Adversarial { silence: 1 },
        ],
        modes: vec![ExecutionMode::sync()],
        sizes: vec![12],
        async_rate: None,
        async_latency: None,
        async_drop: None,
        delivery: Vec::new(),
        trials: 100,
        max_rounds: 200_000,
        seed: 0,
        threads: 0,
        shard: ShardSpec::full(),
        merge: Vec::new(),
        out: None,
        summary_out: None,
        quiet: false,
        list_algorithms: false,
    }
}

const USAGE: &str = "\
campaign — run a parallel experiment sweep over self-similar algorithms and baselines

OPTIONS
    --algorithms a,b,..   registry labels (see --list-algorithms)
    --topologies t,..     ring|line|grid|complete|star|random
    --envs e,..           static|churn|markov|partition|crash|adversary|churn+crash
    --modes m,..          sync|async — execution modes to sweep (default sync)
    --mode m              alias for --modes with a single value
    --async-rate P        async: per-tick interaction probability (default 0.5)
    --async-latency N     async: latency drawn from 1..=N ticks (default 3)
    --async-drop P        async: in-flight loss probability (default 0)
    --delivery r,..       async delivery rule(s): valid-at-delivery|valid-at-send|
                          any-overlap|any-overlap(g=N) — each rule becomes its own
                          grid cell (default valid-at-delivery)
    --sizes n,..          agents per system (default 12)
    --trials N            total trial budget, split exactly over scenarios (default 100)
    --max-rounds N        per-trial round/tick budget (default 200000)
    --seed S              campaign master seed (default 0)
    --threads T           worker threads, 0 = all CPUs (default 0)
    --shard i/k           run only stride shard i of k (default 0/1 = everything);
                          merging all k shard outputs reproduces the unsharded bytes
    --merge f0 f1 ..      merge shard JSONL files (in --shard index order) instead of
                          running; writes the exact unsharded record stream to --out
                          and re-aggregates the summary table
    --out PATH            stream per-trial records as JSON-lines (as trials finish);
                          `-` streams to stdout and moves the summary to stderr
    --summary-out PATH    write per-scenario summaries as JSON-lines
    --list-algorithms     print the algorithm registry and exit
    --quiet               suppress progress output
    --help                this text
";

fn parse_args(argv: &[String], registry: &Registry) -> Result<Args, String> {
    let mut args = default_args(registry);
    let mut it = argv.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--algorithms" => {
                args.algorithms = parse_list(&value("--algorithms")?, |s| registry.resolve(s))?;
            }
            "--topologies" => {
                args.topologies = parse_list(&value("--topologies")?, |s| {
                    TopologyFamily::parse(s).ok_or_else(|| format!("unknown topology `{s}`"))
                })?;
            }
            "--envs" => {
                args.envs = parse_list(&value("--envs")?, |s| {
                    EnvModel::parse(s).ok_or_else(|| format!("unknown environment `{s}`"))
                })?;
            }
            "--modes" | "--mode" => {
                args.modes = parse_list(&value(flag)?, |s| {
                    ExecutionMode::parse(s)
                        .ok_or_else(|| format!("unknown mode `{s}` (expected sync|async)"))
                })?;
            }
            "--sizes" => {
                args.sizes = parse_list(&value("--sizes")?, |s| {
                    s.parse::<usize>()
                        .map_err(|e| format!("bad size `{s}`: {e}"))
                })?;
            }
            "--async-rate" => {
                args.async_rate = Some(
                    value("--async-rate")?
                        .parse()
                        .map_err(|e| format!("bad --async-rate: {e}"))?,
                );
            }
            "--async-latency" => {
                args.async_latency = Some(
                    value("--async-latency")?
                        .parse()
                        .map_err(|e| format!("bad --async-latency: {e}"))?,
                );
            }
            "--async-drop" => {
                args.async_drop = Some(
                    value("--async-drop")?
                        .parse()
                        .map_err(|e| format!("bad --async-drop: {e}"))?,
                );
            }
            "--delivery" => {
                args.delivery = parse_list(&value("--delivery")?, |s| {
                    DeliveryRule::parse(s).ok_or_else(|| {
                        format!(
                            "unknown delivery rule `{s}` (expected valid-at-delivery|\
                             valid-at-send|any-overlap|any-overlap(g=N))"
                        )
                    })
                })?;
            }
            "--trials" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("bad --trials: {e}"))?;
            }
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("bad --max-rounds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--shard" => args.shard = ShardSpec::parse(&value("--shard")?)?,
            "--merge" => {
                while let Some(path) = it.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    args.merge.push(it.next().expect("peeked").clone());
                }
                if args.merge.is_empty() {
                    return Err("--merge expects one or more shard JSONL files".into());
                }
            }
            "--out" => args.out = Some(value("--out")?),
            "--summary-out" => args.summary_out = Some(value("--summary-out")?),
            "--list-algorithms" => args.list_algorithms = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.trials == 0 {
        return Err("--trials must be positive".into());
    }
    apply_async_knobs(&mut args)?;
    if let Some(n) = args.sizes.iter().find(|&&n| n < 2) {
        return Err(format!("--sizes values must be at least 2, got {n}"));
    }
    if !args.merge.is_empty() && !args.shard.is_full() {
        return Err(
            "--merge and --shard are mutually exclusive (merge reads finished shard files)".into(),
        );
    }
    if args.summary_out.as_deref().is_some_and(is_stdout) {
        return Err(
            "--summary-out must be a file path; stdout is reserved for records (--out -) \
             and the summary table"
                .into(),
        );
    }
    Ok(args)
}

/// Folds the async knob flags (`--async-rate/-latency/-drop`) into every
/// async mode and expands the `--delivery` dimension (one async mode per
/// rule).  The flags only make sense with an async mode selected, so their
/// presence without one is a hard error rather than a silent no-op.
fn apply_async_knobs(args: &mut Args) -> Result<(), String> {
    let has_knobs = args.async_rate.is_some()
        || args.async_latency.is_some()
        || args.async_drop.is_some()
        || !args.delivery.is_empty();
    if !has_knobs {
        return Ok(());
    }
    if !args.modes.iter().any(|m| m.is_async()) {
        return Err(
            "--async-rate/--async-latency/--async-drop/--delivery only apply to the async \
             runtime; add `async` to --modes"
                .into(),
        );
    }
    let rules: Option<&[DeliveryRule]> = if args.delivery.is_empty() {
        None
    } else {
        Some(&args.delivery)
    };
    let mut modes = Vec::new();
    for mode in &args.modes {
        match *mode {
            ExecutionMode::Async {
                interaction_rate,
                max_latency,
                drop_rate,
                delivery,
            } => {
                let interaction_rate = args.async_rate.unwrap_or(interaction_rate);
                let max_latency = args.async_latency.unwrap_or(max_latency);
                let drop_rate = args.async_drop.unwrap_or(drop_rate);
                validate_async_knobs(interaction_rate, max_latency, drop_rate)?;
                for &delivery in rules.unwrap_or(&[delivery]) {
                    modes.push(ExecutionMode::Async {
                        interaction_rate,
                        max_latency,
                        drop_rate,
                        delivery,
                    });
                }
            }
            sync => modes.push(sync),
        }
    }
    args.modes = modes;
    Ok(())
}

fn parse_list<T>(csv: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

fn print_registry(registry: &Registry) {
    println!("registered algorithms ({}):", registry.len());
    for algorithm in registry.iter() {
        let topology = match algorithm.forced_topology() {
            Some(family) => format!(" [topology: {}]", family.label()),
            None => String::new(),
        };
        println!(
            "  {:<22} {:<28} {}{}",
            algorithm.label(),
            format!("expected: {}", algorithm.expectation().label()),
            algorithm.description(),
            topology,
        );
    }
}

fn main() -> ExitCode {
    let registry = Registry::builtin();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv, &registry) {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_algorithms {
        print_registry(&registry);
        return ExitCode::SUCCESS;
    }
    let outcome = if args.merge.is_empty() {
        run_sweep(&args)
    } else {
        run_merge(&args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs (one shard of) the sweep, streaming records to `--out`.
fn run_sweep(args: &Args) -> Result<(), String> {
    let scenarios = ScenarioGrid::new()
        .algorithms(args.algorithms.iter().cloned())
        .topologies(args.topologies.iter().copied())
        .envs(args.envs.iter().copied())
        .modes(args.modes.iter().copied())
        .sizes(args.sizes.iter().copied())
        .max_rounds(args.max_rounds)
        .trials(1) // replaced below by the exact budget split
        .expand();
    if scenarios.is_empty() {
        return Err("the scenario grid is empty".into());
    }

    // Split the budget exactly: every cell gets `base`, and the first
    // `extra` cells one more, so the total is `--trials`, not the old
    // `div_ceil` overshoot (e.g. 100 over 48 cells used to run 144).
    let mut scenarios = scenarios;
    let (base, extra) = distribute_trials(&mut scenarios, args.trials);
    if base == 0 {
        eprintln!(
            "warning: --trials {} is below the grid's {} cells; {} cells run zero trials \
             and will be absent from records and summaries",
            args.trials,
            scenarios.len(),
            scenarios.len() as u64 - extra,
        );
    }

    let campaign = Campaign::new(scenarios)
        .seed(args.seed)
        .threads(args.threads)
        .shard(args.shard);
    let total = campaign.trial_count();
    let shard_total = campaign.shard_trial_count();
    debug_assert_eq!(total, args.trials, "exact budget split");
    if !args.quiet {
        let shard_note = if args.shard.is_full() {
            String::new()
        } else {
            format!(
                ", shard {} -> {} of them here",
                args.shard.label(),
                shard_total
            )
        };
        eprintln!(
            "campaign: {} scenarios, {} trials total ({}-{} per cell, seed {}, {} threads{})",
            campaign.scenarios().len(),
            total,
            base,
            if extra > 0 { base + 1 } else { base },
            args.seed,
            if args.threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                args.threads
            },
            shard_note,
        );
    }

    // ~10 progress updates/sec however many worker threads finish trials.
    let throttle = ProgressThrottle::every(Duration::from_millis(100));
    let progress = |done: u64, total: u64| {
        if done == total || throttle.ready() {
            eprintln!("  {done}/{total} trials");
        }
    };

    let started = std::time::Instant::now();
    // (`Stdout`, not `StdoutLock` — the sink crosses into the runner's
    // worker scope and must be `Send`.  With `--out -` the records own
    // stdout and everything human-readable goes to stderr below.)
    let sink: Option<(Box<dyn Write + Send>, &str)> = match &args.out {
        Some(path) if is_stdout(path) => Some((
            Box::new(std::io::BufWriter::new(std::io::stdout())),
            "stdout",
        )),
        Some(path) => Some((
            Box::new(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            )),
            path.as_str(),
        )),
        None => None,
    };
    let result: CampaignResult = match sink {
        Some((mut writer, label)) => {
            let result = if args.quiet {
                campaign.stream_to(&mut writer)
            } else {
                campaign.stream_with_progress(&mut writer, progress)
            }
            .and_then(|result| {
                writer.flush()?;
                Ok(result)
            })
            .map_err(|e| format!("cannot stream records to {label}: {e}"))?;
            result
        }
        None => {
            if args.quiet {
                campaign.run()
            } else {
                campaign.run_with_progress(progress)
            }
        }
    };
    let elapsed = started.elapsed();

    if let Some(path) = &args.summary_out {
        write_file(path, |w| emit::write_summary_jsonl(w, &result.summaries))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let report = format!(
        "{}{}\n{:.2}s wall clock, {:.0} trials/s",
        emit::markdown_summary(&result.summaries),
        totals_line(&result, args),
        elapsed.as_secs_f64(),
        result.trials as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    );
    if args.out.as_deref().is_some_and(is_stdout) {
        if !args.quiet {
            eprintln!("{report}");
        }
    } else {
        println!("{report}");
    }
    Ok(())
}

/// `true` when `path` means "stream to stdout" (`-` or `/dev/stdout`).
fn is_stdout(path: &str) -> bool {
    path == "-" || path == "/dev/stdout"
}

/// Merges finished shard record files back into the unsharded byte stream
/// and re-aggregates the summary table from the merged records.
fn run_merge(args: &Args) -> Result<(), String> {
    let mut shards: Vec<BufReader<std::fs::File>> = Vec::with_capacity(args.merge.len());
    for path in &args.merge {
        let file =
            std::fs::File::open(path).map_err(|e| format!("cannot open shard file {path}: {e}"))?;
        shards.push(BufReader::new(file));
    }

    let stdout = std::io::stdout();
    let mut writer: Box<dyn Write> = match &args.out {
        Some(path) if !is_stdout(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        _ => Box::new(std::io::BufWriter::new(stdout.lock())),
    };

    // Every merged line is parsed once: the order checker proves the
    // reconstructed stream is in exact unsharded job order (this is what
    // catches equal-length shard files passed out of `--shard` order,
    // which no line-count check can see), and the same record feeds the
    // re-aggregated summary table.
    let mut order = MergeOrder::new();
    let mut aggregator = Aggregator::new();
    let merged = merge_shards(&mut shards, |line| {
        writer
            .write_all(line)
            .map_err(|e| format!("cannot write merged records: {e}"))?;
        let record =
            TrialRecord::from_jsonl_line(std::str::from_utf8(line).map_err(|e| e.to_string())?)?;
        order.check(&record)?;
        aggregator.observe(&record);
        Ok(())
    })
    .and_then(|merged| {
        writer
            .flush()
            .map_err(|e| format!("cannot flush merged records: {e}"))?;
        Ok(merged)
    });
    drop(writer);
    let merged = match merged {
        Ok(merged) => merged,
        Err(e) => {
            // Don't leave a partial (possibly misordered) merged file
            // behind: existence must imply a complete, validated stream.
            if let Some(path) = args.out.as_deref().filter(|p| !is_stdout(p)) {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }
    };

    let summaries = aggregator.summaries();
    if let Some(path) = &args.summary_out {
        write_file(path, |w| emit::write_summary_jsonl(w, &summaries))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if args.out.as_deref().is_some_and(|p| !is_stdout(p)) {
        // With --out FILE the table goes to stdout; otherwise stdout
        // carries the merged records and the table would corrupt the
        // stream.
        print!("{}", emit::markdown_summary(&summaries));
        println!(
            "merged {merged} records from {} shard files across {} scenario cells",
            args.merge.len(),
            summaries.len(),
        );
    } else if !args.quiet {
        eprintln!(
            "merged {merged} records from {} shard files across {} scenario cells",
            args.merge.len(),
            summaries.len(),
        );
    }
    Ok(())
}

fn totals_line(result: &CampaignResult, args: &Args) -> String {
    let trials = result.trials;
    let converged: u64 = result.summaries.iter().map(|s| s.converged).sum();
    let expected: u64 = result.summaries.iter().map(|s| s.expectation_met).sum();
    let shard_note = if args.shard.is_full() {
        String::new()
    } else {
        format!(" [shard {}]", args.shard.label())
    };
    format!(
        "{trials} trials{shard_note}, {converged} converged ({:.1}%), {expected} as expected ({:.1}%)",
        100.0 * converged as f64 / trials.max(1) as f64,
        100.0 * expected as f64 / trials.max(1) as f64,
    )
}

fn write_file(
    path: &str,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write(&mut writer)?;
    writer.flush()
}
