//! The `campaign` CLI: run a scenario sweep in parallel and emit
//! JSON-lines records plus a markdown summary table.
//!
//! ```text
//! cargo run --release --bin campaign -- --trials 100
//! cargo run --release --bin campaign -- --list-algorithms
//! cargo run --release --bin campaign -- \
//!     --algorithms minimum,snapshot,flooding --envs churn,partition \
//!     --topologies complete --modes sync,async --sizes 8,16 --trials 200 \
//!     --seed 42 --threads 8 --out runs.jsonl --summary-out summary.jsonl
//! ```
//!
//! Algorithms are resolved by label against the builtin [`Registry`] — the
//! paper's worked examples, the circumscribing-circle counterexample, and
//! the snapshot/flooding baselines all sweep through the same grid.
//!
//! `--trials` is the *total* trial budget: it is divided evenly (rounding
//! up) over the expanded scenario grid, so the flag scales the whole sweep
//! rather than multiplying it.

use std::io::Write;
use std::process::ExitCode;

use selfsim_campaign::{
    emit, AlgorithmRef, Campaign, EnvModel, ExecutionMode, Registry, ScenarioGrid, TopologyFamily,
};

struct Args {
    algorithms: Vec<AlgorithmRef>,
    topologies: Vec<TopologyFamily>,
    envs: Vec<EnvModel>,
    modes: Vec<ExecutionMode>,
    sizes: Vec<usize>,
    trials: u64,
    max_rounds: usize,
    seed: u64,
    threads: usize,
    out: Option<String>,
    summary_out: Option<String>,
    quiet: bool,
    list_algorithms: bool,
}

fn default_args(registry: &Registry) -> Args {
    Args {
        algorithms: ["minimum", "second-smallest", "sum", "sorting"]
            .iter()
            .map(|label| registry.resolve(label).expect("builtin"))
            .collect(),
        topologies: vec![
            TopologyFamily::Ring,
            TopologyFamily::Complete,
            TopologyFamily::Random { p: 0.3 },
        ],
        envs: vec![
            EnvModel::Static,
            EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            },
            EnvModel::MarkovLink {
                p_up: 0.3,
                p_down: 0.3,
            },
            EnvModel::PeriodicPartition {
                blocks: 3,
                period: 8,
            },
            EnvModel::CrashRestart {
                p_crash: 0.05,
                p_restart: 0.5,
            },
            EnvModel::Adversarial { silence: 1 },
        ],
        modes: vec![ExecutionMode::sync()],
        sizes: vec![12],
        trials: 100,
        max_rounds: 200_000,
        seed: 0,
        threads: 0,
        out: None,
        summary_out: None,
        quiet: false,
        list_algorithms: false,
    }
}

const USAGE: &str = "\
campaign — run a parallel experiment sweep over self-similar algorithms and baselines

OPTIONS
    --algorithms a,b,..   registry labels (see --list-algorithms)
    --topologies t,..     ring|line|grid|complete|star|random
    --envs e,..           static|churn|markov|partition|crash|adversary|churn+crash
    --modes m,..          sync|async — execution modes to sweep (default sync)
    --mode m              alias for --modes with a single value
    --sizes n,..          agents per system (default 12)
    --trials N            total trial budget, split over scenarios (default 100)
    --max-rounds N        per-trial round/tick budget (default 200000)
    --seed S              campaign master seed (default 0)
    --threads T           worker threads, 0 = all CPUs (default 0)
    --out PATH            write per-trial records as JSON-lines
    --summary-out PATH    write per-scenario summaries as JSON-lines
    --list-algorithms     print the algorithm registry and exit
    --quiet               suppress progress output
    --help                this text
";

fn parse_args(argv: &[String], registry: &Registry) -> Result<Args, String> {
    let mut args = default_args(registry);
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--algorithms" => {
                args.algorithms = parse_list(&value("--algorithms")?, |s| registry.resolve(s))?;
            }
            "--topologies" => {
                args.topologies = parse_list(&value("--topologies")?, |s| {
                    TopologyFamily::parse(s).ok_or_else(|| format!("unknown topology `{s}`"))
                })?;
            }
            "--envs" => {
                args.envs = parse_list(&value("--envs")?, |s| {
                    EnvModel::parse(s).ok_or_else(|| format!("unknown environment `{s}`"))
                })?;
            }
            "--modes" | "--mode" => {
                args.modes = parse_list(&value(flag)?, |s| {
                    ExecutionMode::parse(s)
                        .ok_or_else(|| format!("unknown mode `{s}` (expected sync|async)"))
                })?;
            }
            "--sizes" => {
                args.sizes = parse_list(&value("--sizes")?, |s| {
                    s.parse::<usize>()
                        .map_err(|e| format!("bad size `{s}`: {e}"))
                })?;
            }
            "--trials" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("bad --trials: {e}"))?;
            }
            "--max-rounds" => {
                args.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("bad --max-rounds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--summary-out" => args.summary_out = Some(value("--summary-out")?),
            "--list-algorithms" => args.list_algorithms = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.trials == 0 {
        return Err("--trials must be positive".into());
    }
    if let Some(n) = args.sizes.iter().find(|&&n| n < 2) {
        return Err(format!("--sizes values must be at least 2, got {n}"));
    }
    Ok(args)
}

fn parse_list<T>(csv: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

fn print_registry(registry: &Registry) {
    println!("registered algorithms ({}):", registry.len());
    for algorithm in registry.iter() {
        let topology = match algorithm.forced_topology() {
            Some(family) => format!(" [topology: {}]", family.label()),
            None => String::new(),
        };
        println!(
            "  {:<22} {:<28} {}{}",
            algorithm.label(),
            format!("expected: {}", algorithm.expectation().label()),
            algorithm.description(),
            topology,
        );
    }
}

fn main() -> ExitCode {
    let registry = Registry::builtin();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv, &registry) {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_algorithms {
        print_registry(&registry);
        return ExitCode::SUCCESS;
    }

    let scenarios = ScenarioGrid::new()
        .algorithms(args.algorithms.iter().cloned())
        .topologies(args.topologies.iter().copied())
        .envs(args.envs.iter().copied())
        .modes(args.modes.iter().copied())
        .sizes(args.sizes.iter().copied())
        .max_rounds(args.max_rounds)
        .trials(1) // replaced below by the budget split
        .expand();
    if scenarios.is_empty() {
        eprintln!("error: the scenario grid is empty");
        return ExitCode::from(2);
    }
    let per_scenario = args.trials.div_ceil(scenarios.len() as u64);
    let scenarios: Vec<_> = scenarios
        .into_iter()
        .map(|mut s| {
            s.trials = per_scenario;
            s
        })
        .collect();

    let campaign = Campaign::new(scenarios)
        .seed(args.seed)
        .threads(args.threads);
    let total = campaign.trial_count();
    if !args.quiet {
        eprintln!(
            "campaign: {} scenarios × {} trials = {} trials (seed {}, {} threads)",
            campaign.scenarios().len(),
            per_scenario,
            total,
            args.seed,
            if args.threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                args.threads
            },
        );
    }

    let started = std::time::Instant::now();
    let result = if args.quiet {
        campaign.run()
    } else {
        campaign.run_with_progress(|done, total| {
            if done % 25 == 0 || done == total {
                eprintln!("  {done}/{total} trials");
            }
        })
    };
    let elapsed = started.elapsed();

    if let Some(path) = &args.out {
        if let Err(e) = write_file(path, |w| emit::write_jsonl(w, &result.records)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.summary_out {
        if let Err(e) = write_file(path, |w| emit::write_summary_jsonl(w, &result.summaries)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("{}", emit::markdown_summary(&result.summaries));
    let converged: u64 = result.summaries.iter().map(|s| s.converged).sum();
    let expected: u64 = result.summaries.iter().map(|s| s.expectation_met).sum();
    println!(
        "{total} trials, {converged} converged ({:.1}%), {expected} as expected ({:.1}%), {:.2}s wall clock",
        100.0 * converged as f64 / total as f64,
        100.0 * expected as f64 / total as f64,
        elapsed.as_secs_f64(),
    );
    ExitCode::SUCCESS
}

fn write_file(
    path: &str,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write(&mut writer)?;
    writer.flush()
}
