//! The `campaign` CLI: run a scenario sweep in parallel — optionally as
//! one stride shard of a larger fleet — streaming JSON-lines records, and
//! merge shard outputs back into the exact unsharded byte stream.
//!
//! ```text
//! cargo run --release --bin campaign -- --trials 100
//! cargo run --release --bin campaign -- --list-algorithms
//! cargo run --release --bin campaign -- \
//!     --algorithms minimum,snapshot,flooding --envs "churn(e=0.3,a=0.8),partition" \
//!     --topologies complete --modes sync,async --sizes 8,16 --trials 200 \
//!     --seed 42 --threads 8 --out runs.jsonl --summary-out summary.jsonl
//!
//! # the delivery-semantics sweep: one async cell per rule, custom knobs
//! cargo run --release --bin campaign -- \
//!     --algorithms minimum,flooding --envs partition --topologies complete \
//!     --modes async --delivery valid-at-delivery,valid-at-send,any-overlap \
//!     --async-rate 0.5 --async-latency 3 --async-drop 0.1 --trials 120
//!
//! # the same sweep as three processes (possibly three machines) ...
//! cargo run --release --bin campaign -- --trials 200 --shard 0/3 --out s0.jsonl
//! cargo run --release --bin campaign -- --trials 200 --shard 1/3 --out s1.jsonl
//! cargo run --release --bin campaign -- --trials 200 --shard 2/3 --out s2.jsonl
//! # ... merged back into the bytes the unsharded run would have written
//! cargo run --release --bin campaign -- --merge s0.jsonl s1.jsonl s2.jsonl \
//!     --out merged.jsonl --summary-out summary.jsonl
//! ```
//!
//! The whole CLI lives in [`selfsim_campaign::cli`]; this binary runs it
//! against the builtin registries.  Projects with their own algorithm,
//! environment or topology families build the identical CLI over extended
//! registries with [`cli::run`] — see `examples/custom_campaign_cli.rs`.

use std::process::ExitCode;

use selfsim_campaign::cli::{self, CliRegistries};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    cli::run(&argv, &CliRegistries::default())
}
