//! Emitters: JSON-lines for machines, markdown tables for humans.
//!
//! Both formats are byte-deterministic for a given campaign result: records
//! are emitted in trial order, summaries in scenario-name order, and all
//! numbers use stable formatting.

use std::io::Write;

use crate::aggregate::ScenarioSummary;
use crate::trial::TrialRecord;

/// Writes one JSON object per trial record, one per line.
///
/// Delegates to [`TrialRecord::to_jsonl_line`] — the same serializer the
/// streaming runner spills through — so collecting records and emitting
/// them afterwards produces byte-for-byte what
/// [`Campaign::stream_to`](crate::Campaign::stream_to) streams.
pub fn write_jsonl<W: Write>(mut out: W, records: &[TrialRecord]) -> std::io::Result<()> {
    for record in records {
        out.write_all(&record.to_jsonl_line()?)?;
    }
    Ok(())
}

/// Renders the per-scenario summaries as one JSON object per line.
pub fn write_summary_jsonl<W: Write>(
    mut out: W,
    summaries: &[ScenarioSummary],
) -> std::io::Result<()> {
    for summary in summaries {
        let line = serde_json::to_string(summary)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Renders the per-scenario summaries as a GitHub-flavoured markdown table.
pub fn markdown_summary(summaries: &[ScenarioSummary]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | mode | delivery | trials | converged | expected | mean rounds | p95 rounds | mean msgs | mean dropped | mean req | effectiveness | monotone |\n",
    );
    out.push_str("|---|:---:|:---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---:|\n");
    for s in summaries {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {}/{} | {}/{} | {} | {} | {:.0} | {:.0} | {:.0} | {:.2} | {} |\n",
            s.scenario,
            s.mode,
            s.delivery,
            s.trials,
            s.converged,
            s.trials,
            s.expectation_met,
            s.trials,
            format_rounds(s.converged, s.rounds.mean),
            format_rounds(s.converged, s.rounds.p95),
            s.messages.mean,
            s.messages_dropped.mean,
            s.messages_requeued.mean,
            s.effectiveness.mean,
            if s.all_monotone { "yes" } else { "NO" },
        ));
    }
    out
}

/// `—` when nothing converged (a zero would read as "instant").
fn format_rounds(converged: u64, value: f64) -> String {
    if converged == 0 {
        "—".to_string()
    } else {
        format!("{value:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_trace::Summary;

    fn sample_summary(name: &str, converged: u64) -> ScenarioSummary {
        ScenarioSummary {
            scenario: name.into(),
            algorithm: "minimum".into(),
            topology: "ring".into(),
            environment: "static".into(),
            mode: "sync".into(),
            delivery: "-".into(),
            agents: 8,
            trials: 5,
            converged,
            expectation_met: converged,
            convergence_rate: converged as f64 / 5.0,
            rounds: Summary::of_counts(&[3, 4, 5]),
            messages: Summary::of(&[100.0, 120.0]),
            messages_dropped: Summary::of(&[0.0, 0.0]),
            messages_requeued: Summary::of(&[0.0, 0.0]),
            effectiveness: Summary::of(&[0.5, 0.6]),
            all_monotone: true,
        }
    }

    fn sample_record() -> TrialRecord {
        TrialRecord {
            scenario: "minimum/ring/static/n=8/sync".into(),
            algorithm: "minimum".into(),
            topology: "ring".into(),
            environment: "static".into(),
            mode: "sync".into(),
            delivery: "-".into(),
            agents: 8,
            trial: 0,
            seed: 42,
            converged: true,
            expected: "converge".into(),
            meets_expectation: true,
            rounds_to_convergence: Some(4),
            rounds_executed: 4,
            group_steps: 4,
            effective_group_steps: 3,
            messages: 32,
            messages_dropped: 0,
            messages_requeued: 0,
            events_processed: 0,
            peak_queue_depth: 0,
            initial_objective: 100.0,
            final_objective: 8.0,
            objective_monotone: true,
        }
    }

    #[test]
    fn jsonl_round_trips_records() {
        let mut buffer = Vec::new();
        write_jsonl(&mut buffer, &[sample_record(), sample_record()]).expect("in-memory write");
        let text = String::from_utf8(buffer).expect("JSONL is UTF-8");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let back: TrialRecord = serde_json::from_str(line).expect("line parses back");
            assert_eq!(back, sample_record());
        }
    }

    #[test]
    fn jsonl_is_byte_deterministic() {
        let records = [sample_record()];
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_jsonl(&mut a, &records).expect("in-memory write");
        write_jsonl(&mut b, &records).expect("in-memory write");
        assert_eq!(a, b);
    }

    #[test]
    fn summary_jsonl_round_trips() {
        let mut buffer = Vec::new();
        write_summary_jsonl(&mut buffer, &[sample_summary("a", 5)]).expect("in-memory write");
        let text = String::from_utf8(buffer).expect("JSONL is UTF-8");
        let back: ScenarioSummary = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back, sample_summary("a", 5));
    }

    #[test]
    fn markdown_has_header_and_one_row_per_summary() {
        let md = markdown_summary(&[sample_summary("a", 5), sample_summary("b", 0)]);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| scenario |"));
        assert!(lines[2].contains("| a |"));
        // A never-converging cell shows an em dash, not 0.0 rounds.
        assert!(lines[3].contains("—"));
    }
}
