//! The open algorithm API: an object-safe trait, a label registry, and the
//! builtin adapters.
//!
//! A [`CampaignAlgorithm`] is everything a campaign needs to run one trial
//! of one algorithm: a stable label, an optional forced topology, an
//! [`Expectation`] (the paper's counterexamples make *non*-convergence an
//! assertable outcome), and a `run` method that builds a fresh instance from
//! the trial's topology/RNG and executes it on the scenario's
//! [`ExecutionMode`].  Because the trait hides the per-algorithm state type
//! (and whether there is a [`SelfSimilarSystem`] at all), the paper's §5
//! baselines — snapshot and flooding — plug into the same grid as the
//! self-similar algorithms, which is exactly the comparison the paper
//! claims: one self-similar design everywhere, versus centralised protocols
//! that stall wherever the environment fragments.
//!
//! The [`Registry`] maps labels to shared algorithm factories.  It ships
//! with every worked example of the paper plus the baselines
//! ([`Registry::builtin`]), and accepts user-defined algorithms through
//! [`Registry::register`].

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use selfsim_algorithms::circumscribing;
use selfsim_baselines::{FloodingAggregator, SnapshotAggregator};
use selfsim_core::{FnGroupStep, SelfSimilarSystem, SummationObjective};
use selfsim_env::{Environment, FairnessSpec, Topology};
use selfsim_geometry::{enclosing_circle_of_circles, Circle, Point};
use selfsim_runtime::{DeliveryRule, ExecutionMode};
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::dimension::TopoRef;
use crate::scenario::TopologyFamily;

/// The assertable outcome an algorithm claims for its trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Must reach (and hold) the target under any fair environment — the
    /// paper's guarantee for a correctly-designed self-similar algorithm.
    Converge,
    /// The known counterexamples (a non-super-idempotent `f`): fragmented
    /// group steps overshoot the target irrecoverably, so the run must
    /// *not* converge whenever the execution fragments groups — and still
    /// converges when it does not (static environment, global rounds).
    DivergeUnderFragmentation,
}

impl Expectation {
    /// Short stable label used in records and reports.
    pub fn label(&self) -> &str {
        match self {
            Expectation::Converge => "converge",
            Expectation::DivergeUnderFragmentation => "diverge-under-fragmentation",
        }
    }

    /// Whether an observed trial outcome matches this expectation.
    /// `fragmenting` is true when the cell's execution can split agents
    /// into proper subgroups (any dynamic environment, or the pairwise
    /// asynchronous mode).
    pub fn met(&self, converged: bool, fragmenting: bool) -> bool {
        match self {
            Expectation::Converge => converged,
            Expectation::DivergeUnderFragmentation => {
                if fragmenting {
                    !converged
                } else {
                    converged
                }
            }
        }
    }
}

/// Everything a trial hands an algorithm so it can build and run one fresh
/// instance: the materialised topology, the execution mode, the per-trial
/// budget and seed, and the setup RNG that initial values are drawn from.
pub struct TrialSetup<'a> {
    /// Number of agents.
    pub n: usize,
    /// The communication graph this trial runs over.
    pub topology: Topology,
    /// Which runtime executes the trial.
    pub mode: ExecutionMode,
    /// Round (sync) or tick (async) budget.
    pub max_rounds: usize,
    /// The derived per-trial seed driving all simulator randomness.
    pub seed: u64,
    /// Setup randomness (initial values); already past the topology draws,
    /// so algorithms see the same stream regardless of topology family.
    pub rng: &'a mut StdRng,
    /// When present, the trial's structured [`TraceEvent`] stream is
    /// appended here (the campaign's `--trace` path).  `None` — the
    /// default — keeps event recording disabled and costs one branch per
    /// would-be event.
    pub events: Option<&'a mut Vec<TraceEvent>>,
}

/// An algorithm the campaign engine can run — object-safe so registries can
/// hold boxed factories and scenarios can carry them across threads.
///
/// Implementations are stateless factories: every [`CampaignAlgorithm::run`]
/// call builds a fresh instance from the [`TrialSetup`], so one shared
/// object serves arbitrarily many concurrent trials.
pub trait CampaignAlgorithm: Send + Sync {
    /// Short stable label: the registry key, scenario-name segment and
    /// report column.  Borrowed from `self` so runtime-parameterised
    /// algorithms can carry owned labels (e.g. `format!("{k}-smallest")`).
    fn label(&self) -> &str;

    /// One-line human description for `--list-algorithms`.
    fn description(&self) -> &str {
        ""
    }

    /// The topology family the algorithm's fairness argument requires, if
    /// any (sorting → line, sum → complete).  Returns a [`TopoRef`], so
    /// user algorithms can force user-registered families too.
    fn forced_topology(&self) -> Option<TopoRef> {
        None
    }

    /// The assertable outcome of this algorithm's trials.
    fn expectation(&self) -> Expectation {
        Expectation::Converge
    }

    /// Builds one fresh instance and runs it to completion (or budget
    /// exhaustion) under `env` on the setup's execution mode.
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics;
}

/// Runs a [`SelfSimilarSystem`] on the setup's execution mode — the one-line
/// body shared by every self-similar adapter, and the hook user-defined
/// algorithms reuse.
pub fn run_system<S: Ord + Clone + std::fmt::Debug>(
    system: &SelfSimilarSystem<S>,
    setup: &mut TrialSetup<'_>,
    env: &mut dyn Environment,
) -> RunMetrics {
    let report = setup
        .mode
        .runtime::<S>(setup.seed, setup.max_rounds, false, setup.events.is_some())
        .execute(system, env);
    if let Some(events) = setup.events.as_deref_mut() {
        events.extend(report.events);
    }
    report.metrics
}

/// A shared, cloneable handle to a registered algorithm — what scenarios
/// carry.
#[derive(Clone)]
pub struct AlgorithmRef(Arc<dyn CampaignAlgorithm>);

impl AlgorithmRef {
    /// Wraps an algorithm implementation.
    pub fn new(algorithm: impl CampaignAlgorithm + 'static) -> Self {
        AlgorithmRef(Arc::new(algorithm))
    }

    /// The algorithm's stable label.
    pub fn label(&self) -> &str {
        self.0.label()
    }

    /// The algorithm's one-line description.
    pub fn description(&self) -> &str {
        self.0.description()
    }

    /// The forced topology family, if any.
    pub fn forced_topology(&self) -> Option<TopoRef> {
        self.0.forced_topology()
    }

    /// The assertable outcome of this algorithm's trials.
    pub fn expectation(&self) -> Expectation {
        self.0.expectation()
    }

    /// Runs one trial (see [`CampaignAlgorithm::run`]).
    pub fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        self.0.run(setup, env)
    }
}

impl std::fmt::Debug for AlgorithmRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlgorithmRef({})", self.label())
    }
}

impl PartialEq for AlgorithmRef {
    fn eq(&self, other: &Self) -> bool {
        self.label() == other.label()
    }
}

/// Maps labels to algorithm factories.  [`Registry::builtin`] covers every
/// worked example of the paper plus the §5 baselines; [`Registry::register`]
/// adds (or replaces) entries.
#[derive(Clone, Default)]
pub struct Registry {
    entries: BTreeMap<String, AlgorithmRef>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The builtin registry: all ten algorithm modules (including the
    /// circumscribing-circle counterexample) and both baselines.
    ///
    /// The returned value is a cheap clone (label → `Arc` map) of a shared
    /// instance; use [`Registry::builtin_ref`] when a borrow suffices.
    pub fn builtin() -> Self {
        Registry::builtin_ref().clone()
    }

    /// Borrowed view of the shared builtin registry, built once per
    /// process — what label lookups on the hot path should use.
    pub fn builtin_ref() -> &'static Registry {
        static BUILTIN: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        BUILTIN.get_or_init(Registry::build_builtin)
    }

    fn build_builtin() -> Self {
        let mut registry = Registry::new();
        for algorithm in [
            AlgorithmRef::new(MinimumAlgo),
            AlgorithmRef::new(MaximumAlgo),
            AlgorithmRef::new(SumAlgo),
            AlgorithmRef::new(SortingAlgo),
            AlgorithmRef::new(SecondSmallestAlgo),
            AlgorithmRef::new(ConvexHullAlgo),
            AlgorithmRef::new(BooleanOrAlgo),
            AlgorithmRef::new(BooleanAndAlgo),
            AlgorithmRef::new(KSmallestAlgo),
            AlgorithmRef::new(SetUnionAlgo),
            AlgorithmRef::new(CircumscribingAlgo),
            AlgorithmRef::new(SnapshotBaseline),
            AlgorithmRef::new(FloodingBaseline),
        ] {
            registry.register(algorithm);
        }
        registry
    }

    /// Registers an algorithm under its label, replacing any previous entry
    /// with the same label.
    pub fn register(&mut self, algorithm: AlgorithmRef) {
        self.entries
            .insert(algorithm.label().to_string(), algorithm);
    }

    /// Looks a label up.
    pub fn get(&self, label: &str) -> Option<AlgorithmRef> {
        self.entries.get(label).cloned()
    }

    /// Looks a label up, producing an error that names every registered
    /// label on a miss (what the CLI surfaces for typos).
    pub fn resolve(&self, label: &str) -> Result<AlgorithmRef, String> {
        self.get(label).ok_or_else(|| {
            format!(
                "unknown algorithm `{label}`; registered algorithms: {}",
                self.labels().join(", ")
            )
        })
    }

    /// All registered labels, sorted.
    pub fn labels(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Iterates over the registered algorithms in label order.
    pub fn iter(&self) -> impl Iterator<Item = &AlgorithmRef> {
        self.entries.values()
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Positive, pairwise-distinct integer initial values (the sum example
/// requires non-negative values, sorting requires distinct ones).
///
/// Cells up to 4096 agents draw from the historical `1..=9999` pool so
/// their RNG streams (and hence every committed record) are byte-stable;
/// larger cells — the event-runtime scaling curves go to 10⁶ agents —
/// widen the pool to keep rejection sampling cheap.
pub(crate) fn int_values(n: usize, rng: &mut impl Rng) -> Vec<i64> {
    let pool_max: i64 = if n <= 4096 { 9999 } else { n as i64 * 4 };
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.gen_range(1..=pool_max);
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

/// Integer-grid sites for the geometric examples.
pub(crate) fn point_values(n: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(-50i64..=50) as f64,
                rng.gen_range(-50i64..=50) as f64,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Builtin adapters: the self-similar worked examples.
// ---------------------------------------------------------------------------

struct MinimumAlgo;
impl CampaignAlgorithm for MinimumAlgo {
    fn label(&self) -> &str {
        "minimum"
    }
    fn description(&self) -> &str {
        "§4.1 — every agent adopts the minimum"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::minimum::system(&values, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct MaximumAlgo;
impl CampaignAlgorithm for MaximumAlgo {
    fn label(&self) -> &str {
        "maximum"
    }
    fn description(&self) -> &str {
        "extension — every agent adopts the maximum"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::maximum::system(&values, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct SumAlgo;
impl CampaignAlgorithm for SumAlgo {
    fn label(&self) -> &str {
        "sum"
    }
    fn description(&self) -> &str {
        "§4.2 — one agent concentrates the sum (complete fairness graph)"
    }
    fn forced_topology(&self) -> Option<TopoRef> {
        Some(TopologyFamily::Complete.into())
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::sum::system(&values, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct SortingAlgo;
impl CampaignAlgorithm for SortingAlgo {
    fn label(&self) -> &str {
        "sorting"
    }
    fn description(&self) -> &str {
        "§4.4 — values sort themselves along a line"
    }
    fn forced_topology(&self) -> Option<TopoRef> {
        Some(TopologyFamily::Line.into())
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::sorting::system(&values);
        run_system(&sys, setup, env)
    }
}

struct SecondSmallestAlgo;
impl CampaignAlgorithm for SecondSmallestAlgo {
    fn label(&self) -> &str {
        "second-smallest"
    }
    fn description(&self) -> &str {
        "§4.3 — every agent learns the pair (smallest, second smallest)"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::second_smallest::system(&values, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct ConvexHullAlgo;
impl CampaignAlgorithm for ConvexHullAlgo {
    fn label(&self) -> &str {
        "convex-hull"
    }
    fn description(&self) -> &str {
        "§4.5 — every agent learns the convex hull of all sites"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let sites = point_values(setup.n, setup.rng);
        let sys = selfsim_algorithms::convex_hull::system(&sites, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct BooleanOrAlgo;
impl CampaignAlgorithm for BooleanOrAlgo {
    fn label(&self) -> &str {
        "boolean-or"
    }
    fn description(&self) -> &str {
        "extension — event detection: one random agent holds true, all adopt the disjunction"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let hot = setup.rng.gen_range(0..setup.n);
        let initial: Vec<bool> = (0..setup.n).map(|i| i == hot).collect();
        let sys = selfsim_algorithms::boolean::or_system(&initial, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct BooleanAndAlgo;
impl CampaignAlgorithm for BooleanAndAlgo {
    fn label(&self) -> &str {
        "boolean-and"
    }
    fn description(&self) -> &str {
        "extension — agreement: one random agent holds false, all adopt the conjunction"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let cold = setup.rng.gen_range(0..setup.n);
        let initial: Vec<bool> = (0..setup.n).map(|i| i != cold).collect();
        let sys = selfsim_algorithms::boolean::and_system(&initial, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

/// How many smallest distinct values the `k-smallest` adapter tracks.
const K_SMALLEST_K: usize = 3;

struct KSmallestAlgo;
impl CampaignAlgorithm for KSmallestAlgo {
    fn label(&self) -> &str {
        "k-smallest"
    }
    fn description(&self) -> &str {
        "extension — every agent learns the 3 smallest distinct values"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let sys =
            selfsim_algorithms::k_smallest::system(&values, K_SMALLEST_K, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

struct SetUnionAlgo;
impl CampaignAlgorithm for SetUnionAlgo {
    fn label(&self) -> &str {
        "set-union"
    }
    fn description(&self) -> &str {
        "extension — gossip dissemination: every agent learns the union of all knowledge"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        // The canonical dissemination instance: agent i initially knows
        // exactly item i, so the universe has one item per agent.
        let initial: Vec<std::collections::BTreeSet<i64>> =
            (0..setup.n).map(|i| [i as i64].into()).collect();
        let sys = selfsim_algorithms::set_union::system(&initial, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

// ---------------------------------------------------------------------------
// The circumscribing-circle counterexample (§4.5 first half, Figure 2).
// ---------------------------------------------------------------------------

/// Builds a runnable system around the **naive** circumscribing-circle
/// function.  The function is idempotent but not super-idempotent, so
/// group-wise application can overshoot the global circle irrecoverably —
/// this system exists to make that failure measurable, not to compute
/// anything.
fn circumscribing_system(
    sites: &[Point],
    topology: Topology,
) -> SelfSimilarSystem<circumscribing::State> {
    use circumscribing::{estimate_of, initial_state, make_state, site_of, SCALE};
    let initial: Vec<circumscribing::State> = sites.iter().map(|p| initial_state(*p)).collect();
    SelfSimilarSystem::new(
        "circumscribing-circle",
        circumscribing::naive_function(),
        // Sum of estimate radii: descends nowhere (estimates only grow) —
        // the paper's point is that no objective can rescue this f.
        SummationObjective::new("estimate-radius", |s: &circumscribing::State| {
            s.4 as f64 / SCALE
        }),
        FnGroupStep::new(
            "adopt-enclosing-circle",
            |states: &[circumscribing::State], _rng: &mut dyn rand::RngCore| {
                let circles: Vec<Circle> = states.iter().map(estimate_of).collect();
                let enclosing = enclosing_circle_of_circles(&circles);
                states
                    .iter()
                    .map(|s| make_state(site_of(s), enclosing))
                    .collect()
            },
        ),
        initial,
        FairnessSpec::for_graph(&topology),
    )
}

struct CircumscribingAlgo;
impl CampaignAlgorithm for CircumscribingAlgo {
    fn label(&self) -> &str {
        "circumscribing-circle"
    }
    fn description(&self) -> &str {
        "§4.5 counterexample — naive (non-super-idempotent) f; diverges once groups fragment"
    }
    fn expectation(&self) -> Expectation {
        Expectation::DivergeUnderFragmentation
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let sites = point_values(setup.n, setup.rng);
        let sys = circumscribing_system(&sites, setup.topology.clone());
        run_system(&sys, setup, env)
    }
}

// ---------------------------------------------------------------------------
// The §5 baselines.
//
// Both adapters map `Sync` cells onto the baselines' round-based protocol
// and `Async` cells onto their message-passing variants.  The `Sync`
// cooldown knob is a *stability* audit (`stable (S = f(S))`) that only
// makes sense for self-similar systems; the baselines terminate the moment
// their aggregate is known, so a non-zero cooldown is ignored — compare
// baseline cells on `rounds_to_convergence`/`messages`, not
// `rounds_executed`.
// ---------------------------------------------------------------------------

/// The one dispatch site mapping an [`ExecutionMode`] onto a baseline's
/// round-based / message-passing entry points.  The delivery rule rides
/// along with the other async knobs, so baselines and the self-similar
/// runtime always judge blocked messages by the same rule — and the event
/// log is handed to whichever entry point runs, so traced cells observe
/// baselines through the same stream as the self-similar runtimes.
fn dispatch_baseline<R>(
    mode: ExecutionMode,
    env: &mut dyn Environment,
    events: &mut EventLog,
    sync: impl FnOnce(&mut dyn Environment, &mut EventLog) -> R,
    asynchronous: impl FnOnce(&mut dyn Environment, f64, usize, f64, DeliveryRule, &mut EventLog) -> R,
) -> R {
    match mode {
        // The baselines terminate on their own; the event-driven runtime's
        // queue is an execution strategy for the synchronous round
        // semantics, so event cells run the same round-based entry point.
        ExecutionMode::Sync { .. } | ExecutionMode::Event { .. } => sync(env, events),
        ExecutionMode::Async {
            interaction_rate,
            max_latency,
            drop_rate,
            delivery,
        } => asynchronous(
            env,
            interaction_rate,
            max_latency,
            drop_rate,
            delivery,
            events,
        ),
    }
}

/// An [`EventLog`] matching a [`TrialSetup`]'s event request, plus the
/// flush gluing its recording back onto the setup's sink — the shared
/// prologue/epilogue of both baseline adapters.
fn baseline_event_log(setup: &TrialSetup<'_>) -> EventLog {
    if setup.events.is_some() {
        EventLog::enabled()
    } else {
        EventLog::disabled()
    }
}

fn flush_baseline_events(setup: &mut TrialSetup<'_>, log: EventLog) {
    if let Some(events) = setup.events.as_deref_mut() {
        events.extend(log.into_events());
    }
}

struct SnapshotBaseline;
impl CampaignAlgorithm for SnapshotBaseline {
    fn label(&self) -> &str {
        "snapshot"
    }
    fn description(&self) -> &str {
        "§5 baseline — coordinator-driven global snapshots; stalls whenever the system fragments"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let baseline = SnapshotAggregator::new(values, setup.max_rounds);
        let seed = setup.seed;
        let mut log = baseline_event_log(setup);
        let (metrics, _) = dispatch_baseline(
            setup.mode,
            env,
            &mut log,
            |env, ev| baseline.run_observed(env, seed, i64::min, ev),
            |env, i, l, d, dv, ev| {
                baseline.run_async_observed(env, seed, i, l, d, dv, i64::min, ev)
            },
        );
        flush_baseline_events(setup, log);
        metrics
    }
}

struct FloodingBaseline;
impl CampaignAlgorithm for FloodingBaseline {
    fn label(&self) -> &str {
        "flooding"
    }
    fn description(&self) -> &str {
        "§5 baseline — full-information flooding; robust to churn, pays in message volume"
    }
    fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
        let values = int_values(setup.n, setup.rng);
        let baseline = FloodingAggregator::new(values, setup.max_rounds);
        let seed = setup.seed;
        let mut log = baseline_event_log(setup);
        let (metrics, _) = dispatch_baseline(
            setup.mode,
            env,
            &mut log,
            |env, ev| baseline.run_observed(env, seed, i64::min, ev),
            |env, i, l, d, dv, ev| {
                baseline.run_async_observed(env, seed, i, l, d, dv, i64::min, ev)
            },
        );
        flush_baseline_events(setup, log);
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use selfsim_env::StaticEnv;

    fn setup_for<'a>(
        n: usize,
        mode: ExecutionMode,
        rng: &'a mut StdRng,
    ) -> (TrialSetup<'a>, Box<dyn Environment>) {
        let topology = Topology::ring(n);
        let env = Box::new(StaticEnv::new(topology.clone()));
        (
            TrialSetup {
                n,
                topology,
                mode,
                max_rounds: 100_000,
                seed: 42,
                rng,
                events: None,
            },
            env,
        )
    }

    #[test]
    fn builtin_registry_round_trips_every_label() {
        let registry = Registry::builtin();
        assert_eq!(registry.len(), 13);
        for label in registry.labels() {
            let algorithm = registry.resolve(&label).expect("registered");
            assert_eq!(algorithm.label(), label);
        }
    }

    #[test]
    fn resolve_error_lists_the_registry_contents() {
        let registry = Registry::builtin();
        let err = registry.resolve("nonsense").unwrap_err();
        assert!(err.contains("unknown algorithm `nonsense`"));
        for label in registry.labels() {
            assert!(err.contains(&label), "error must list {label}");
        }
    }

    #[test]
    fn register_replaces_by_label() {
        let mut registry = Registry::new();
        assert!(registry.is_empty());
        registry.register(AlgorithmRef::new(MinimumAlgo));
        registry.register(AlgorithmRef::new(MinimumAlgo));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn runtime_parameterised_algorithms_register_with_owned_labels() {
        // A user variant built at runtime: k-smallest for a swept k, with a
        // label owned by the instance (impossible under &'static str keys).
        struct ParamKSmallest {
            k: usize,
            label: String,
        }
        impl CampaignAlgorithm for ParamKSmallest {
            fn label(&self) -> &str {
                &self.label
            }
            fn run(&self, setup: &mut TrialSetup<'_>, env: &mut dyn Environment) -> RunMetrics {
                let values = int_values(setup.n, setup.rng);
                let sys =
                    selfsim_algorithms::k_smallest::system(&values, self.k, setup.topology.clone());
                run_system(&sys, setup, env)
            }
        }
        let mut registry = Registry::builtin();
        for k in [2usize, 4] {
            registry.register(AlgorithmRef::new(ParamKSmallest {
                k,
                label: format!("{k}-smallest"),
            }));
        }
        assert_eq!(registry.len(), 15);
        let algorithm = registry.resolve("4-smallest").unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let topology = Topology::ring(6);
        let mut env: Box<dyn Environment> = Box::new(StaticEnv::new(topology.clone()));
        let mut setup = TrialSetup {
            n: 6,
            topology,
            mode: ExecutionMode::sync(),
            max_rounds: 10_000,
            seed: 8,
            rng: &mut rng,
            events: None,
        };
        let metrics = algorithm.run(&mut setup, env.as_mut());
        assert!(metrics.converged());
    }

    #[test]
    fn every_converging_builtin_converges_on_a_static_ring_sync() {
        for algorithm in Registry::builtin().iter() {
            if algorithm.expectation() != Expectation::Converge {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(7);
            let topology = algorithm
                .forced_topology()
                .unwrap_or_else(|| TopologyFamily::Ring.into())
                .build(6, &mut rng);
            let mut env: Box<dyn Environment> = Box::new(StaticEnv::new(topology.clone()));
            let mut setup = TrialSetup {
                n: 6,
                topology,
                mode: ExecutionMode::sync(),
                max_rounds: 100_000,
                seed: 42,
                rng: &mut rng,
                events: None,
            };
            let metrics = algorithm.run(&mut setup, env.as_mut());
            assert!(
                metrics.converged(),
                "{} did not converge",
                algorithm.label()
            );
        }
    }

    #[test]
    fn counterexample_converges_without_fragmentation_and_diverges_with_it() {
        let algorithm = Registry::builtin()
            .resolve("circumscribing-circle")
            .unwrap();
        assert_eq!(
            algorithm.expectation(),
            Expectation::DivergeUnderFragmentation
        );

        // Global synchronous rounds: one whole-system step computes the
        // exact circle — converges.
        let mut rng = StdRng::seed_from_u64(3);
        let (mut setup, mut env) = setup_for(6, ExecutionMode::sync(), &mut rng);
        let metrics = algorithm.run(&mut setup, env.as_mut());
        assert!(metrics.converged());

        // Pairwise asynchronous interactions fragment every step: the
        // estimates overshoot and the target is never reached.
        let mut rng = StdRng::seed_from_u64(3);
        let (mut setup, mut env) = setup_for(6, ExecutionMode::asynchronous(), &mut rng);
        setup.max_rounds = 2_000;
        let metrics = algorithm.run(&mut setup, env.as_mut());
        assert!(!metrics.converged(), "fragmented steps must overshoot");
    }

    #[test]
    fn expectation_met_logic() {
        use Expectation::*;
        assert!(Converge.met(true, true));
        assert!(!Converge.met(false, true));
        assert!(DivergeUnderFragmentation.met(false, true));
        assert!(!DivergeUnderFragmentation.met(true, true));
        assert!(DivergeUnderFragmentation.met(true, false));
        assert!(!DivergeUnderFragmentation.met(false, false));
    }

    #[test]
    fn baselines_run_in_both_modes() {
        for label in ["snapshot", "flooding"] {
            let algorithm = Registry::builtin().resolve(label).unwrap();
            for mode in ExecutionMode::both() {
                let mut rng = StdRng::seed_from_u64(9);
                let topology = Topology::complete(5);
                let mut env: Box<dyn Environment> = Box::new(StaticEnv::new(topology.clone()));
                let mut setup = TrialSetup {
                    n: 5,
                    topology,
                    mode,
                    max_rounds: 10_000,
                    seed: 4,
                    rng: &mut rng,
                    events: None,
                };
                let metrics = algorithm.run(&mut setup, env.as_mut());
                assert!(
                    metrics.converged(),
                    "{label} under {} on a static complete graph",
                    mode.label()
                );
            }
        }
    }
}
