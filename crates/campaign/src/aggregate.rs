//! Streaming aggregation of trial records into per-scenario summaries.

use std::collections::BTreeMap;

use selfsim_trace::Summary;
use serde::{Deserialize, Serialize};

use crate::trial::TrialRecord;

/// Folds [`TrialRecord`]s into per-scenario statistics as they arrive.
///
/// Memory is independent of the trial count *and* the round budget:
/// per-round objective trajectories never reach the aggregator, and each
/// cell keeps exact `value -> multiplicity` histograms instead of
/// per-trial samples, so a million-trial campaign aggregates in
/// `O(cells × distinct values)`.  Folding is order-independent (histogram
/// insertion commutes and [`Summary::of_histogram`] reads values in
/// ascending order), which is what lets the streaming runner fold records
/// in completion order while emitting byte-deterministic summaries.
/// Grouping is by [`Scenario::name`](crate::Scenario::name), and
/// [`Aggregator::summaries`] reuses [`selfsim_trace::Summary`] so campaign
/// statistics are computed by the same code as every other experiment in
/// the workspace.
#[derive(Debug, Default)]
pub struct Aggregator {
    cells: BTreeMap<String, Cell>,
}

#[derive(Debug, Default)]
struct Cell {
    algorithm: String,
    topology: String,
    environment: String,
    mode: String,
    delivery: String,
    agents: usize,
    trials: u64,
    converged: u64,
    expectation_met: u64,
    /// Histogram of rounds-to-convergence over converged trials.
    rounds: BTreeMap<usize, u64>,
    /// Histogram of per-trial message counts.
    messages: BTreeMap<usize, u64>,
    /// Histogram of per-trial dropped-message counts.
    messages_dropped: BTreeMap<usize, u64>,
    /// Histogram of per-trial re-queue decision counts.
    messages_requeued: BTreeMap<usize, u64>,
    /// Histogram of step effectiveness, keyed by the ratio's IEEE bits
    /// (effectiveness is in `[0, 1]`, where the bit order *is* the
    /// numeric order).
    effectiveness: BTreeMap<u64, u64>,
    all_monotone: bool,
}

/// The aggregated statistics of one scenario cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Scenario name (the grouping key).
    pub scenario: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Topology-family label.
    pub topology: String,
    /// Environment-model label.
    pub environment: String,
    /// Execution-mode label (`sync` / `async`).
    pub mode: String,
    /// Delivery-rule label for async cells, `-` for sync cells.
    pub delivery: String,
    /// Number of agents.
    pub agents: usize,
    /// Trials observed.
    pub trials: u64,
    /// Trials that converged.
    pub converged: u64,
    /// Trials whose outcome matched the algorithm's declared expectation
    /// (for counterexample cells this counts asserted *non*-convergence).
    pub expectation_met: u64,
    /// `converged / trials` (0 for an empty cell).
    pub convergence_rate: f64,
    /// Statistics of rounds-to-convergence over the *converged* trials.
    pub rounds: Summary,
    /// Statistics of message counts over all trials.
    pub messages: Summary,
    /// Statistics of dropped-message counts over all trials (identically
    /// zero whenever the cell's `drop_rate` is zero).
    pub messages_dropped: Summary,
    /// Statistics of re-queue decision counts over all trials (non-zero
    /// only for `any-overlap` cells; identically zero under
    /// `valid-at-delivery` and `valid-at-send`).
    pub messages_requeued: Summary,
    /// Statistics of step effectiveness (changed / attempted) over all
    /// trials.
    pub effectiveness: Summary,
    /// Whether the objective descended monotonically in every trial.
    pub all_monotone: bool,
}

impl ScenarioSummary {
    /// `true` when `other` is the same grid cell on the *other runtime*
    /// (sync vs. async, regardless of knob parameterisation) — the
    /// cross-runtime sibling relation.  Matched on the structured
    /// coordinates, not the scenario name: mode labels are not
    /// string-symmetric.
    pub fn is_cross_runtime_sibling(&self, other: &ScenarioSummary) -> bool {
        // "sync(cd=7)" and "async(i=0.9,...)" reduce to their runtime kind.
        fn kind(label: &str) -> &str {
            label.split('(').next().unwrap_or(label)
        }
        kind(&self.mode) != kind(&other.mode)
            && self.algorithm == other.algorithm
            && self.topology == other.topology
            && self.environment == other.environment
            && self.agents == other.agents
    }
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Folds one record into its scenario's cell.
    pub fn observe(&mut self, record: &TrialRecord) {
        let cell = self
            .cells
            .entry(record.scenario.clone())
            .or_insert_with(|| Cell {
                algorithm: record.algorithm.clone(),
                topology: record.topology.clone(),
                environment: record.environment.clone(),
                mode: record.mode.clone(),
                delivery: record.delivery.clone(),
                agents: record.agents,
                all_monotone: true,
                ..Cell::default()
            });
        cell.trials += 1;
        if record.meets_expectation {
            cell.expectation_met += 1;
        }
        if record.converged {
            cell.converged += 1;
            if let Some(r) = record.rounds_to_convergence {
                *cell.rounds.entry(r).or_default() += 1;
            }
        }
        *cell.messages.entry(record.messages).or_default() += 1;
        *cell
            .messages_dropped
            .entry(record.messages_dropped)
            .or_default() += 1;
        *cell
            .messages_requeued
            .entry(record.messages_requeued)
            .or_default() += 1;
        let effectiveness = if record.group_steps == 0 {
            0.0
        } else {
            record.effective_group_steps as f64 / record.group_steps as f64
        };
        *cell
            .effectiveness
            .entry(effectiveness.to_bits())
            .or_default() += 1;
        cell.all_monotone &= record.objective_monotone;
    }

    /// Parses one emitted JSONL line and folds it — how the shard-merge
    /// path re-aggregates a campaign from its record streams without ever
    /// holding more than one record in memory.
    pub fn observe_line(&mut self, line: &str) -> Result<(), String> {
        self.observe(&TrialRecord::from_jsonl_line(line)?);
        Ok(())
    }

    /// Absorbs another aggregator: cell counters add, histograms add,
    /// monotone flags AND.  Folding records through two aggregators and
    /// merging equals folding them all through one (aggregation is
    /// commutative), which lets runner workers aggregate locally and merge
    /// once at the barrier instead of contending on a shared lock per
    /// trial.
    pub fn merge(&mut self, other: Aggregator) {
        for (name, incoming) in other.cells {
            match self.cells.entry(name) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(incoming);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let cell = slot.get_mut();
                    cell.trials += incoming.trials;
                    cell.converged += incoming.converged;
                    cell.expectation_met += incoming.expectation_met;
                    for (value, count) in incoming.rounds {
                        *cell.rounds.entry(value).or_default() += count;
                    }
                    for (value, count) in incoming.messages {
                        *cell.messages.entry(value).or_default() += count;
                    }
                    for (value, count) in incoming.messages_dropped {
                        *cell.messages_dropped.entry(value).or_default() += count;
                    }
                    for (value, count) in incoming.messages_requeued {
                        *cell.messages_requeued.entry(value).or_default() += count;
                    }
                    for (value, count) in incoming.effectiveness {
                        *cell.effectiveness.entry(value).or_default() += count;
                    }
                    cell.all_monotone &= incoming.all_monotone;
                }
            }
        }
    }

    /// Number of scenario cells observed so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total records folded so far.
    pub fn trial_count(&self) -> u64 {
        self.cells.values().map(|c| c.trials).sum()
    }

    /// Closes the aggregation: one summary per scenario, sorted by scenario
    /// name (deterministic regardless of observation order).
    pub fn summaries(&self) -> Vec<ScenarioSummary> {
        self.cells
            .iter()
            .map(|(name, cell)| ScenarioSummary {
                scenario: name.clone(),
                algorithm: cell.algorithm.clone(),
                topology: cell.topology.clone(),
                environment: cell.environment.clone(),
                mode: cell.mode.clone(),
                delivery: cell.delivery.clone(),
                agents: cell.agents,
                trials: cell.trials,
                converged: cell.converged,
                expectation_met: cell.expectation_met,
                convergence_rate: if cell.trials == 0 {
                    0.0
                } else {
                    cell.converged as f64 / cell.trials as f64
                },
                rounds: Summary::of_histogram(cell.rounds.iter().map(|(&v, &c)| (v as f64, c))),
                messages: Summary::of_histogram(cell.messages.iter().map(|(&v, &c)| (v as f64, c))),
                messages_dropped: Summary::of_histogram(
                    cell.messages_dropped.iter().map(|(&v, &c)| (v as f64, c)),
                ),
                messages_requeued: Summary::of_histogram(
                    cell.messages_requeued.iter().map(|(&v, &c)| (v as f64, c)),
                ),
                effectiveness: Summary::of_histogram(
                    cell.effectiveness
                        .iter()
                        .map(|(&v, &c)| (f64::from_bits(v), c)),
                ),
                all_monotone: cell.all_monotone,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: &str, trial: u64, rounds: Option<usize>, messages: usize) -> TrialRecord {
        TrialRecord {
            scenario: scenario.into(),
            algorithm: "minimum".into(),
            topology: "ring".into(),
            environment: "static".into(),
            mode: "sync".into(),
            delivery: "-".into(),
            agents: 8,
            trial,
            seed: trial,
            converged: rounds.is_some(),
            expected: "converge".into(),
            meets_expectation: rounds.is_some(),
            rounds_to_convergence: rounds,
            rounds_executed: rounds.unwrap_or(100),
            group_steps: 10,
            effective_group_steps: 5,
            messages,
            messages_dropped: messages / 10,
            messages_requeued: 0,
            events_processed: 0,
            peak_queue_depth: 0,
            initial_objective: 100.0,
            final_objective: 10.0,
            objective_monotone: true,
        }
    }

    #[test]
    fn groups_by_scenario_and_counts_convergence() {
        let mut agg = Aggregator::new();
        agg.observe(&record("a", 0, Some(4), 40));
        agg.observe(&record("a", 1, Some(6), 60));
        agg.observe(&record("a", 2, None, 100));
        agg.observe(&record("b", 0, Some(2), 10));
        assert_eq!(agg.cell_count(), 2);
        assert_eq!(agg.trial_count(), 4);

        let summaries = agg.summaries();
        assert_eq!(summaries.len(), 2);
        let a = &summaries[0];
        assert_eq!(a.scenario, "a");
        assert_eq!(a.trials, 3);
        assert_eq!(a.converged, 2);
        assert_eq!(a.expectation_met, 2);
        assert_eq!(a.mode, "sync");
        assert!((a.convergence_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.rounds.count, 2);
        assert_eq!(a.rounds.mean, 5.0);
        assert_eq!(a.messages.count, 3);
    }

    #[test]
    fn summaries_are_order_independent() {
        let records = [
            record("a", 0, Some(4), 40),
            record("b", 0, Some(2), 10),
            record("a", 1, Some(6), 60),
        ];
        let mut forward = Aggregator::new();
        let mut backward = Aggregator::new();
        for r in &records {
            forward.observe(r);
        }
        for r in records.iter().rev() {
            backward.observe(r);
        }
        assert_eq!(forward.summaries(), backward.summaries());
    }

    #[test]
    fn merging_aggregators_equals_one_aggregator() {
        let records = [
            record("a", 0, Some(4), 40),
            record("a", 1, Some(6), 60),
            record("a", 2, None, 100),
            record("b", 0, Some(2), 10),
        ];
        let mut whole = Aggregator::new();
        for r in &records {
            whole.observe(r);
        }
        let mut left = Aggregator::new();
        let mut right = Aggregator::new();
        left.observe(&records[0]);
        left.observe(&records[3]);
        right.observe(&records[1]);
        right.observe(&records[2]);
        left.merge(right);
        assert_eq!(left.summaries(), whole.summaries());
        assert_eq!(left.trial_count(), 4);
    }

    #[test]
    fn monotone_flag_is_an_and() {
        let mut agg = Aggregator::new();
        agg.observe(&record("a", 0, Some(4), 40));
        let mut bad = record("a", 1, Some(5), 50);
        bad.objective_monotone = false;
        agg.observe(&bad);
        assert!(!agg.summaries()[0].all_monotone);
    }
}
