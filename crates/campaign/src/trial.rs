//! Per-trial execution and the flat record it produces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use selfsim_core::SelfSimilarSystem;
use selfsim_geometry::Point;
use selfsim_runtime::{SyncConfig, SyncSimulator};
use selfsim_trace::RunMetrics;

use crate::scenario::{AlgorithmKind, Scenario};

/// The flat, trajectory-free result of one trial — what the campaign emits
/// as one JSON line and what the aggregator folds.
///
/// This is [`RunMetrics`] minus the per-round objective trajectory (which
/// grows with the round budget and would defeat streaming aggregation), plus
/// the scenario coordinates and two scalar digests of the trajectory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The scenario cell this trial belongs to ([`Scenario::name`]).
    pub scenario: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Topology-family label.
    pub topology: String,
    /// Environment-model label.
    pub environment: String,
    /// Number of agents.
    pub agents: usize,
    /// Trial index within the scenario.
    pub trial: u64,
    /// The derived seed the trial ran with.
    pub seed: u64,
    /// Whether the trial reached (and held) the target state.
    pub converged: bool,
    /// Rounds to convergence (`None` when the budget ran out first).
    pub rounds_to_convergence: Option<usize>,
    /// Total rounds executed.
    pub rounds_executed: usize,
    /// Group steps attempted.
    pub group_steps: usize,
    /// Group steps that changed state.
    pub effective_group_steps: usize,
    /// Messages exchanged.
    pub messages: usize,
    /// `h(S(0))`.
    pub initial_objective: f64,
    /// `h` of the final state.
    pub final_objective: f64,
    /// Whether the objective trajectory never increased (the global
    /// manifestation of every group step being an improvement).
    pub objective_monotone: bool,
}

impl TrialRecord {
    /// Flattens a run's metrics into a record for `scenario`'s cell.
    pub fn from_metrics(scenario: &Scenario, trial: u64, seed: u64, m: &RunMetrics) -> Self {
        TrialRecord {
            scenario: scenario.name(),
            algorithm: scenario.algorithm.label().to_string(),
            topology: scenario.topology.label(),
            environment: scenario.env.label(),
            agents: scenario.n,
            trial,
            seed,
            converged: m.converged(),
            rounds_to_convergence: m.rounds_to_convergence,
            rounds_executed: m.rounds_executed,
            group_steps: m.group_steps,
            effective_group_steps: m.effective_group_steps,
            messages: m.messages,
            initial_objective: m.initial_objective().unwrap_or(0.0),
            final_objective: m.final_objective().unwrap_or(0.0),
            objective_monotone: m.objective_is_monotone(1e-9),
        }
    }
}

/// Runs one trial of `scenario` with the given derived seed.
///
/// Everything random about the trial — the initial values, a random
/// topology's edges, the environment's choices and any randomness in the
/// group steps — is derived from `seed` alone, so a trial is reproducible
/// in isolation regardless of which thread runs it or what ran before.
pub fn run_trial(scenario: &Scenario, trial: u64, seed: u64) -> TrialRecord {
    // Setup (initial values, random topologies) draws from its own stream so
    // that the simulation stream matches a direct `SyncSimulator` run with
    // the same seed.
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xD1FF_E7ED_05E7_u64);
    let topology = scenario.topology.build(scenario.n, &mut setup_rng);

    let metrics = match scenario.algorithm {
        AlgorithmKind::Minimum => {
            let values = int_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::minimum::system(&values, topology.clone());
            simulate(&sys, scenario, topology, seed)
        }
        AlgorithmKind::Maximum => {
            let values = int_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::maximum::system(&values, topology.clone());
            simulate(&sys, scenario, topology, seed)
        }
        AlgorithmKind::Sum => {
            let values = int_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::sum::system(&values, topology.clone());
            simulate(&sys, scenario, topology, seed)
        }
        AlgorithmKind::Sorting => {
            let values = int_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::sorting::system(&values);
            simulate(&sys, scenario, topology, seed)
        }
        AlgorithmKind::SecondSmallest => {
            let values = int_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::second_smallest::system(&values, topology.clone());
            simulate(&sys, scenario, topology, seed)
        }
        AlgorithmKind::ConvexHull => {
            let sites = point_values(scenario.n, &mut setup_rng);
            let sys = selfsim_algorithms::convex_hull::system(&sites, topology.clone());
            simulate(&sys, scenario, topology, seed)
        }
    };

    TrialRecord::from_metrics(scenario, trial, seed, &metrics)
}

fn simulate<S: Ord + Clone + std::fmt::Debug>(
    system: &SelfSimilarSystem<S>,
    scenario: &Scenario,
    topology: selfsim_env::Topology,
    seed: u64,
) -> RunMetrics {
    let mut env = scenario.env.build(topology);
    let config = SyncConfig {
        max_rounds: scenario.max_rounds,
        cooldown_rounds: 0,
        seed,
        record_traces: false,
    };
    let report = SyncSimulator::new(config).run(system, env.as_mut());
    report.metrics
}

/// Positive, pairwise-distinct integer initial values (the sum example
/// requires non-negative values, sorting requires distinct ones).
fn int_values(n: usize, rng: &mut impl Rng) -> Vec<i64> {
    assert!(n <= 4096, "value pool supports up to 4096 agents");
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.gen_range(1..=9999);
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

/// Integer-grid sites for the geometric example.
fn point_values(n: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(-50i64..=50) as f64,
                rng.gen_range(-50i64..=50) as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EnvModel, TopologyFamily};

    fn tiny(algorithm: AlgorithmKind, env: EnvModel) -> Scenario {
        Scenario::builder(algorithm)
            .topology(TopologyFamily::Ring)
            .env(env)
            .agents(6)
            .max_rounds(50_000)
            .build()
    }

    #[test]
    fn every_algorithm_converges_under_static_env() {
        for &algorithm in AlgorithmKind::all() {
            let scenario = tiny(algorithm, EnvModel::Static);
            let record = run_trial(&scenario, 0, 42);
            assert!(record.converged, "{} did not converge", scenario.name());
            assert!(record.objective_monotone, "{}", scenario.name());
        }
    }

    #[test]
    fn trials_are_seed_deterministic() {
        let scenario = tiny(
            AlgorithmKind::Minimum,
            EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            },
        );
        let a = run_trial(&scenario, 3, 777);
        let b = run_trial(&scenario, 3, 777);
        assert_eq!(a, b);
        let c = run_trial(&scenario, 3, 778);
        assert_eq!(a.scenario, c.scenario);
    }

    #[test]
    fn random_topology_trials_converge() {
        let scenario = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Random { p: 0.3 })
            .env(EnvModel::MarkovLink {
                p_up: 0.4,
                p_down: 0.4,
            })
            .agents(10)
            .max_rounds(100_000)
            .build();
        for trial in 0..3u64 {
            let record = run_trial(&scenario, trial, 1000 + trial);
            assert!(record.converged, "trial {trial}");
        }
    }

    #[test]
    fn record_carries_scenario_coordinates() {
        let scenario = tiny(AlgorithmKind::Sum, EnvModel::Static);
        let record = run_trial(&scenario, 5, 99);
        assert_eq!(record.agents, 6);
        assert_eq!(record.trial, 5);
        assert_eq!(record.seed, 99);
        assert_eq!(record.algorithm, "sum");
        assert_eq!(record.scenario, scenario.name());
    }
}
