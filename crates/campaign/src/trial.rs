//! Per-trial execution and the flat record it produces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};

use selfsim_trace::{RunMetrics, TraceEvent};

use crate::algorithm::TrialSetup;
use crate::scenario::Scenario;

/// The flat, trajectory-free result of one trial — what the campaign emits
/// as one JSON line and what the aggregator folds.
///
/// This is [`RunMetrics`] minus the per-round objective trajectory (which
/// grows with the round budget and would defeat streaming aggregation), plus
/// the scenario coordinates and two scalar digests of the trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialRecord {
    /// The scenario cell this trial belongs to ([`Scenario::name`]).
    pub scenario: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Topology-family label.
    pub topology: String,
    /// Environment-model label.
    pub environment: String,
    /// Execution-mode label (`sync` / `async`, plus non-default knobs).
    pub mode: String,
    /// Delivery-rule label for async cells
    /// ([`DeliveryRule::label`](selfsim_runtime::DeliveryRule::label));
    /// `-` for sync cells, which have no messages in flight.
    pub delivery: String,
    /// Number of agents.
    pub agents: usize,
    /// Trial index within the scenario.
    pub trial: u64,
    /// The derived seed the trial ran with.
    pub seed: u64,
    /// Whether the trial reached (and held) the target state.
    pub converged: bool,
    /// The algorithm's declared expectation
    /// ([`Expectation::label`](crate::Expectation::label)).
    pub expected: String,
    /// Whether the observed outcome matches the expectation given the
    /// cell's fragmentation (see [`crate::Expectation::met`]).
    pub meets_expectation: bool,
    /// Rounds to convergence (`None` when the budget ran out first).
    pub rounds_to_convergence: Option<usize>,
    /// Total rounds executed.
    pub rounds_executed: usize,
    /// Group steps attempted.
    pub group_steps: usize,
    /// Group steps that changed state.
    pub effective_group_steps: usize,
    /// Messages exchanged.
    pub messages: usize,
    /// Messages lost in flight to the drop roll (zero whenever the cell's
    /// `drop_rate` is zero, and always zero for sync cells).
    pub messages_dropped: usize,
    /// Delivery-rule re-queue decisions (one per due-but-blocked message per
    /// tick): non-zero only under `any-overlap` grace windows, structurally
    /// zero for `valid-at-delivery`, `valid-at-send` and every sync cell.
    /// Omitted from the JSONL encoding when zero, so requeue-free campaigns
    /// stay byte-identical to pre-observability outputs.
    pub messages_requeued: usize,
    /// Events popped off the event-driven runtime's queue; structurally
    /// zero for sync and async cells, which have no event queue.  Omitted
    /// from the JSONL encoding when zero, so sync/async campaigns stay
    /// byte-identical to pre-event-runtime outputs.
    pub events_processed: usize,
    /// High-water mark of the event queue's depth; zero (and omitted from
    /// the JSONL encoding) for runtimes without an event queue.
    pub peak_queue_depth: usize,
    /// `h(S(0))`.
    pub initial_objective: f64,
    /// `h` of the final state.
    pub final_objective: f64,
    /// Whether the objective trajectory never increased (the global
    /// manifestation of every group step being an improvement).
    pub objective_monotone: bool,
}

// Manual (rather than derived) impls so `messages_requeued`,
// `events_processed` and `peak_queue_depth` can be skipped when zero: the
// derive emits every field unconditionally and errors on missing fields,
// either of which would break the byte-identity contract against records
// produced before the columns existed.
impl Serialize for TrialRecord {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("scenario".into(), self.scenario.to_value()),
            ("algorithm".into(), self.algorithm.to_value()),
            ("topology".into(), self.topology.to_value()),
            ("environment".into(), self.environment.to_value()),
            ("mode".into(), self.mode.to_value()),
            ("delivery".into(), self.delivery.to_value()),
            ("agents".into(), self.agents.to_value()),
            ("trial".into(), self.trial.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("converged".into(), self.converged.to_value()),
            ("expected".into(), self.expected.to_value()),
            (
                "meets_expectation".into(),
                self.meets_expectation.to_value(),
            ),
            (
                "rounds_to_convergence".into(),
                self.rounds_to_convergence.to_value(),
            ),
            ("rounds_executed".into(), self.rounds_executed.to_value()),
            ("group_steps".into(), self.group_steps.to_value()),
            (
                "effective_group_steps".into(),
                self.effective_group_steps.to_value(),
            ),
            ("messages".into(), self.messages.to_value()),
            ("messages_dropped".into(), self.messages_dropped.to_value()),
        ];
        if self.messages_requeued != 0 {
            fields.push((
                "messages_requeued".into(),
                self.messages_requeued.to_value(),
            ));
        }
        if self.events_processed != 0 {
            fields.push(("events_processed".into(), self.events_processed.to_value()));
        }
        if self.peak_queue_depth != 0 {
            fields.push(("peak_queue_depth".into(), self.peak_queue_depth.to_value()));
        }
        fields.push((
            "initial_objective".into(),
            self.initial_objective.to_value(),
        ));
        fields.push(("final_objective".into(), self.final_objective.to_value()));
        fields.push((
            "objective_monotone".into(),
            self.objective_monotone.to_value(),
        ));
        Value::Object(fields)
    }
}

fn required<T: Deserialize>(v: &Value, name: &str) -> Result<T, serde::Error> {
    T::from_value(
        v.get_field(name)
            .ok_or_else(|| serde::Error(format!("missing field {name}")))?,
    )
}

impl Deserialize for TrialRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(TrialRecord {
            scenario: required(v, "scenario")?,
            algorithm: required(v, "algorithm")?,
            topology: required(v, "topology")?,
            environment: required(v, "environment")?,
            mode: required(v, "mode")?,
            delivery: required(v, "delivery")?,
            agents: required(v, "agents")?,
            trial: required(v, "trial")?,
            seed: required(v, "seed")?,
            converged: required(v, "converged")?,
            expected: required(v, "expected")?,
            meets_expectation: required(v, "meets_expectation")?,
            rounds_to_convergence: required(v, "rounds_to_convergence")?,
            rounds_executed: required(v, "rounds_executed")?,
            group_steps: required(v, "group_steps")?,
            effective_group_steps: required(v, "effective_group_steps")?,
            messages: required(v, "messages")?,
            messages_dropped: required(v, "messages_dropped")?,
            messages_requeued: match v.get_field("messages_requeued") {
                Some(x) => usize::from_value(x)?,
                None => 0,
            },
            events_processed: match v.get_field("events_processed") {
                Some(x) => usize::from_value(x)?,
                None => 0,
            },
            peak_queue_depth: match v.get_field("peak_queue_depth") {
                Some(x) => usize::from_value(x)?,
                None => 0,
            },
            initial_objective: required(v, "initial_objective")?,
            final_objective: required(v, "final_objective")?,
            objective_monotone: required(v, "objective_monotone")?,
        })
    }
}

impl TrialRecord {
    /// The record's canonical JSONL form: one JSON object plus the line
    /// terminator.  Every emission path (the streaming runner's spill
    /// buffers, [`crate::emit::write_jsonl`], shard outputs) goes through
    /// this one serializer, which is what makes "streamed bytes ==
    /// collected-then-emitted bytes" and the shard-merge byte identity
    /// hold by construction.
    pub fn to_jsonl_line(&self) -> std::io::Result<Vec<u8>> {
        let mut line = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        line.push(b'\n');
        Ok(line)
    }

    /// Parses one JSONL line back into a record (the inverse of
    /// [`TrialRecord::to_jsonl_line`]); used by the shard-merge path to
    /// re-aggregate.
    pub fn from_jsonl_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line.trim_end_matches('\n'))
            .map_err(|e| format!("malformed trial record line: {e}"))
    }

    /// Flattens a run's metrics into a record for `scenario`'s cell.
    pub fn from_metrics(scenario: &Scenario, trial: u64, seed: u64, m: &RunMetrics) -> Self {
        let expectation = scenario.algorithm.expectation();
        TrialRecord {
            scenario: scenario.name(),
            algorithm: scenario.algorithm.label().to_string(),
            topology: scenario.topology.label(),
            environment: scenario.env.label(),
            mode: scenario.mode.label(),
            delivery: scenario.mode.delivery_label(),
            agents: scenario.n,
            trial,
            seed,
            converged: m.converged(),
            expected: expectation.label().to_string(),
            meets_expectation: expectation.met(m.converged(), scenario.fragmenting()),
            rounds_to_convergence: m.rounds_to_convergence,
            rounds_executed: m.rounds_executed,
            group_steps: m.group_steps,
            effective_group_steps: m.effective_group_steps,
            messages: m.messages,
            messages_dropped: m.messages_dropped,
            messages_requeued: m.messages_requeued,
            events_processed: m.events_processed,
            peak_queue_depth: m.peak_queue_depth,
            initial_objective: m.initial_objective().unwrap_or(0.0),
            final_objective: m.final_objective().unwrap_or(0.0),
            objective_monotone: m.objective_is_monotone(1e-9),
        }
    }
}

/// Runs one trial of `scenario` with the given derived seed.
///
/// Everything random about the trial — the initial values, a random
/// topology's edges, the environment's choices and any randomness in the
/// group steps — is derived from `seed` alone, so a trial is reproducible
/// in isolation regardless of which thread runs it or what ran before.
pub fn run_trial(scenario: &Scenario, trial: u64, seed: u64) -> TrialRecord {
    run_trial_impl(scenario, trial, seed, None)
}

/// Runs one trial like [`run_trial`] while recording its structured event
/// stream, framed by `trial-start` (carrying the full replay coordinates:
/// round-trippable scenario labels plus the derived seed) and `trial-end`
/// events so each trial's block is self-contained.
///
/// The record is identical to the untraced run's — recording reads the
/// simulation, it never perturbs it.
pub fn run_trial_traced(
    scenario: &Scenario,
    trial: u64,
    seed: u64,
) -> (TrialRecord, Vec<TraceEvent>) {
    let mut events = vec![TraceEvent::TrialStart {
        scenario: scenario.name(),
        algorithm: scenario.algorithm.label().to_string(),
        topology: scenario.topology.label(),
        environment: scenario.env.label(),
        mode: scenario.mode.label(),
        delivery: scenario.mode.delivery_label(),
        agents: scenario.n,
        trial,
        seed,
    }];
    let record = run_trial_impl(scenario, trial, seed, Some(&mut events));
    events.push(TraceEvent::TrialEnd {
        trial,
        converged: record.converged,
        ticks: record.rounds_executed as u64,
    });
    (record, events)
}

fn run_trial_impl(
    scenario: &Scenario,
    trial: u64,
    seed: u64,
    events: Option<&mut Vec<TraceEvent>>,
) -> TrialRecord {
    // Setup (random topologies, then initial values) draws from its own
    // stream so that the simulation stream matches a direct simulator run
    // with the same seed.
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xD1FF_E7ED_05E7_u64);
    let topology = scenario.topology.build(scenario.n, &mut setup_rng);
    let mut env = scenario.env.build(topology.clone());
    let mut setup = TrialSetup {
        n: scenario.n,
        topology,
        mode: scenario.mode,
        max_rounds: scenario.max_rounds,
        seed,
        rng: &mut setup_rng,
        events,
    };
    let metrics = scenario.algorithm.run(&mut setup, env.as_mut());
    TrialRecord::from_metrics(scenario, trial, seed, &metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgorithmKind, EnvModel, Scenario, TopologyFamily};
    use crate::{ExecutionMode, Registry};

    fn tiny(algorithm: AlgorithmKind, env: EnvModel) -> Scenario {
        Scenario::builder(algorithm)
            .topology(TopologyFamily::Ring)
            .env(env)
            .agents(6)
            .max_rounds(50_000)
            .build()
    }

    #[test]
    fn every_registered_algorithm_meets_its_expectation_under_static_env() {
        for algorithm in Registry::builtin().iter() {
            let scenario = Scenario::builder(algorithm.clone())
                .topology(TopologyFamily::Ring)
                .agents(6)
                .max_rounds(50_000)
                .build();
            let record = run_trial(&scenario, 0, 42);
            // Static + sync never fragments, so even the counterexample
            // must converge here.
            assert!(record.converged, "{} did not converge", scenario.name());
            assert!(record.meets_expectation, "{}", scenario.name());
        }
    }

    #[test]
    fn shim_variants_still_converge_and_descend() {
        for &algorithm in AlgorithmKind::all() {
            let scenario = tiny(algorithm, EnvModel::Static);
            let record = run_trial(&scenario, 0, 42);
            assert!(record.converged, "{} did not converge", scenario.name());
            assert!(record.objective_monotone, "{}", scenario.name());
        }
    }

    #[test]
    fn trials_are_seed_deterministic() {
        let scenario = tiny(
            AlgorithmKind::Minimum,
            EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            },
        );
        let a = run_trial(&scenario, 3, 777);
        let b = run_trial(&scenario, 3, 777);
        assert_eq!(a, b);
        let c = run_trial(&scenario, 3, 778);
        assert_eq!(a.scenario, c.scenario);
    }

    #[test]
    fn async_trials_are_seed_deterministic() {
        let scenario = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Ring)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .mode(ExecutionMode::asynchronous())
            .agents(6)
            .max_rounds(100_000)
            .build();
        let a = run_trial(&scenario, 1, 999);
        let b = run_trial(&scenario, 1, 999);
        assert_eq!(a, b);
        assert_eq!(a.mode, "async");
        assert_eq!(a.delivery, "valid-at-delivery");
        assert_eq!(a.messages_dropped, 0, "default drop_rate is zero");
        assert!(a.converged, "minimum converges asynchronously under churn");
    }

    #[test]
    fn delivery_rule_is_a_scenario_dimension() {
        use selfsim_runtime::DeliveryRule;
        let scenario = |rule| {
            Scenario::builder(AlgorithmKind::Minimum)
                .topology(TopologyFamily::Complete)
                .env(EnvModel::PeriodicPartition {
                    blocks: 2,
                    period: 8,
                })
                .mode(ExecutionMode::asynchronous_with(rule))
                .agents(8)
                .max_rounds(3_000)
                .build()
        };
        let stalled = run_trial(&scenario(DeliveryRule::ValidAtDelivery), 0, 77);
        assert!(
            !stalled.converged,
            "single-tick merges starve the historical rule"
        );
        let sent = run_trial(&scenario(DeliveryRule::ValidAtSend), 0, 77);
        assert!(sent.converged);
        assert_eq!(sent.delivery, "valid-at-send");
        assert!(
            sent.scenario.contains("dv=valid-at-send"),
            "the rule is part of the cell identity: {}",
            sent.scenario
        );
        assert_ne!(stalled.scenario, sent.scenario);
    }

    #[test]
    fn random_topology_trials_converge() {
        let scenario = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Random { p: 0.3 })
            .env(EnvModel::MarkovLink {
                p_up: 0.4,
                p_down: 0.4,
            })
            .agents(10)
            .max_rounds(100_000)
            .build();
        for trial in 0..3u64 {
            let record = run_trial(&scenario, trial, 1000 + trial);
            assert!(record.converged, "trial {trial}");
        }
    }

    #[test]
    fn counterexample_diverges_under_partition_and_meets_expectation() {
        let scenario = Scenario::builder(
            Registry::builtin()
                .resolve("circumscribing-circle")
                .expect("builtin registry label"),
        )
        .topology(TopologyFamily::Ring)
        .env(EnvModel::PeriodicPartition {
            blocks: 2,
            period: 8,
        })
        .agents(8)
        .max_rounds(2_000)
        .build();
        let record = run_trial(&scenario, 0, 5);
        assert!(!record.converged, "fragmented naive circle must overshoot");
        assert!(record.meets_expectation);
        assert_eq!(record.expected, "diverge-under-fragmentation");
    }

    #[test]
    fn baseline_record_reports_snapshot_stall_under_adversary() {
        let scenario = Scenario::builder(
            Registry::builtin()
                .resolve("snapshot")
                .expect("builtin registry label"),
        )
        .topology(TopologyFamily::Complete)
        .env(EnvModel::Adversarial { silence: 0 })
        .agents(6)
        .max_rounds(3_000)
        .build();
        let record = run_trial(&scenario, 0, 9);
        assert!(!record.converged, "one edge at a time: no global snapshot");
        assert!(!record.meets_expectation, "baseline expected to converge");
    }

    #[test]
    fn jsonl_line_round_trips() {
        let scenario = tiny(AlgorithmKind::Minimum, EnvModel::Static);
        let record = run_trial(&scenario, 2, 77);
        let line = record.to_jsonl_line().expect("record serializes");
        assert_eq!(line.last(), Some(&b'\n'));
        let text = String::from_utf8(line).expect("JSONL is UTF-8");
        assert_eq!(
            TrialRecord::from_jsonl_line(&text).expect("line parses back"),
            record
        );
        // Without the trailing newline too (a shard file's final line).
        assert_eq!(
            TrialRecord::from_jsonl_line(text.trim_end()).expect("parses without newline"),
            record
        );
        assert!(TrialRecord::from_jsonl_line("{not json")
            .unwrap_err()
            .contains("malformed trial record line"));
    }

    #[test]
    fn record_carries_scenario_coordinates() {
        let scenario = tiny(AlgorithmKind::Sum, EnvModel::Static);
        let record = run_trial(&scenario, 5, 99);
        assert_eq!(record.agents, 6);
        assert_eq!(record.trial, 5);
        assert_eq!(record.seed, 99);
        assert_eq!(record.algorithm, "sum");
        assert_eq!(record.mode, "sync");
        assert_eq!(record.delivery, "-", "sync cells have no delivery rule");
        assert_eq!(record.messages_dropped, 0, "sync cells drop nothing");
        assert_eq!(record.expected, "converge");
        assert_eq!(record.scenario, scenario.name());
    }
}
