//! A declarative, parallel experiment-campaign engine for self-similar
//! algorithms.
//!
//! The paper's thesis — one algorithm, any environment, any execution model
//! — is only convincing when the same algorithm is shown converging across
//! *many* adversarial environments, topologies, scales and runtimes, and
//! shown *beating the baselines* exactly where the environment fragments.
//! This crate turns that comparison into a first-class object:
//!
//! * [`CampaignAlgorithm`] / [`Registry`] — the open algorithm API: an
//!   object-safe trait every worked example of the paper implements, plus
//!   the §5 baselines (snapshot, flooding) and the circumscribing-circle
//!   counterexample (whose *non*-convergence under fragmentation is an
//!   assertable [`Expectation`]).  User algorithms register by label.
//! * [`Scenario`] / [`ScenarioGrid`] — a declarative spec of algorithm ×
//!   topology family × environment model × execution mode × size × trials,
//!   with builder and cartesian grid expansion;
//! * [`ExecutionMode`] — the runtime dimension: the same cell runs on the
//!   synchronous round-based simulator or the asynchronous message-passing
//!   one (latency, drops), behind the [`Runtime`] trait from
//!   `selfsim-runtime`;
//! * [`Campaign`] — a *streaming* runner that executes trials on a worker
//!   pool with *derived* per-trial seeds and spills each finished record
//!   through an ordered reorder window, so emitted bytes are identical no
//!   matter how many threads run them and memory stays `O(threads)`
//!   (records are only retained by the opt-in [`Campaign::run_collect`]);
//! * [`ShardSpec`] / [`merge_shards`] — stride sharding across processes:
//!   shard `i/k` runs every `k`-th job, and the round-robin merge of the
//!   shard streams is byte-identical to an unsharded run — the
//!   determinism contract (same bytes for a given `(scenarios, seed)`,
//!   regardless of threads *or* shards) is the system's headline
//!   invariant;
//! * [`Aggregator`] — streaming per-scenario statistics (via
//!   [`selfsim_trace::Summary`]) that never retain per-round trajectories;
//! * [`emit`] — byte-deterministic JSON-lines and markdown emitters, used
//!   by the `campaign` CLI binary;
//! * [`ProgressThrottle`] — a lock-free rate limiter so million-trial runs
//!   don't serialize on progress output.
//!
//! # Example: self-similar vs. baseline, sync vs. async, one grid
//!
//! ```
//! use selfsim_campaign::{Campaign, EnvModel, ExecutionMode, Registry, ScenarioGrid,
//!                        TopologyFamily};
//!
//! let registry = Registry::builtin();
//! let scenarios = ScenarioGrid::new()
//!     .algorithms([
//!         registry.resolve("minimum").expect("builtin label"),
//!         registry.resolve("snapshot").expect("builtin label"),
//!         registry.resolve("flooding").expect("builtin label"),
//!     ])
//!     .topologies([TopologyFamily::Complete])
//!     .envs([EnvModel::RandomChurn { p_edge: 0.5, p_agent: 0.9 }])
//!     .modes(ExecutionMode::both())
//!     .sizes([8])
//!     .trials(3)
//!     .expand();
//! let result = Campaign::new(scenarios).seed(42).run();
//! println!("{}", selfsim_campaign::emit::markdown_summary(&result.summaries));
//! ```
//!
//! The closed [`AlgorithmKind`] enum of the original API remains as a thin
//! shim: anywhere an algorithm is expected, `AlgorithmKind::Minimum` and
//! `registry.resolve("minimum")?` are interchangeable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod algorithm;
pub mod cli;
mod dimension;
pub mod emit;
mod runner;
mod scenario;
mod shard;
mod trial;

pub use aggregate::{Aggregator, ScenarioSummary};
pub use algorithm::{
    run_system, AlgorithmRef, CampaignAlgorithm, Expectation, Registry, TrialSetup,
};
pub use dimension::{
    EnvFactory, EnvRef, EnvRegistry, LabelRegistry, RegistryEntry, TopoRef, TopologyFactory,
    TopologyRegistry,
};
pub use runner::{Campaign, CampaignConfig, CampaignResult, CollectedResult, ProgressThrottle};
pub use scenario::{
    distribute_trials, grid_dims, AlgorithmKind, EnvModel, Scenario, ScenarioBuilder, ScenarioGrid,
    TopologyFamily,
};
pub use selfsim_env::{parse_label, split_top_level, Params};
pub use selfsim_runtime::{DeliveryRule, ExecutionMode, Runtime};
pub use shard::{merge_shards, merge_trace_shards, MergeOrder, ShardSpec};
pub use trial::{run_trial, run_trial_traced, TrialRecord};
