//! A declarative, parallel experiment-campaign engine for self-similar
//! algorithms.
//!
//! The paper's thesis — one algorithm, any environment — is only convincing
//! when the same algorithm is shown converging across *many* adversarial
//! environments, topologies and scales.  This crate turns that scenario
//! sweep into a first-class object:
//!
//! * [`Scenario`] / [`ScenarioGrid`] — a declarative spec of algorithm ×
//!   topology family × environment model × size × trials, with builder and
//!   cartesian grid expansion;
//! * [`Campaign`] — a runner that executes all trials on a worker pool with
//!   *derived* per-trial seeds, so results are identical no matter how many
//!   threads run them;
//! * [`Aggregator`] — streaming per-scenario statistics (via
//!   [`selfsim_trace::Summary`]) that never retain per-round trajectories;
//! * [`emit`] — byte-deterministic JSON-lines and markdown emitters, used
//!   by the `campaign` CLI binary.
//!
//! # Example
//!
//! ```
//! use selfsim_campaign::{AlgorithmKind, Campaign, EnvModel, ScenarioGrid, TopologyFamily};
//!
//! let scenarios = ScenarioGrid::new()
//!     .algorithms([AlgorithmKind::Minimum, AlgorithmKind::Sorting])
//!     .topologies([TopologyFamily::Ring])
//!     .envs([EnvModel::Static, EnvModel::RandomChurn { p_edge: 0.5, p_agent: 0.9 }])
//!     .sizes([8])
//!     .trials(5)
//!     .expand();
//! let result = Campaign::new(scenarios).seed(42).run();
//! assert!(result.records.iter().all(|r| r.converged));
//! println!("{}", selfsim_campaign::emit::markdown_summary(&result.summaries));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod emit;
mod runner;
mod scenario;
mod trial;

pub use aggregate::{Aggregator, ScenarioSummary};
pub use runner::{Campaign, CampaignConfig, CampaignResult};
pub use scenario::{
    grid_dims, AlgorithmKind, EnvModel, Scenario, ScenarioBuilder, ScenarioGrid, TopologyFamily,
};
pub use trial::{run_trial, TrialRecord};
