//! Declarative scenario specifications and grid expansion.
//!
//! A [`Scenario`] names one *cell* of an experiment campaign: an algorithm
//! (an [`AlgorithmRef`] from the registry), a topology family (a
//! [`TopoRef`]), an environment model (an [`EnvRef`]), an execution mode, a
//! system size and a number of trials.  Scenarios are cheap shareable data
//! — building the actual algorithm instance and
//! [`Environment`](selfsim_env::Environment) happens per trial in the
//! runner, so scenarios can be freely sent across threads and expanded into
//! grids.
//!
//! All three grid dimensions are open: algorithms, environments and
//! topologies resolve by label against their registries
//! ([`Registry`](crate::Registry), [`EnvRegistry`](crate::EnvRegistry),
//! [`TopologyRegistry`](crate::TopologyRegistry)).  The closed
//! [`AlgorithmKind`], [`EnvModel`] and [`TopologyFamily`] enums of the
//! original API remain as thin `Into<…Ref>` shims.

use rand::Rng;
use selfsim_runtime::ExecutionMode;

use crate::algorithm::{AlgorithmRef, Registry};
use crate::dimension::{
    AdversaryEnvFactory, ChurnEnvFactory, ChurnPlusCrashEnvFactory, CompleteTopology,
    CrashEnvFactory, EnvRef, GridTopology, LineTopology, MarkovEnvFactory, PartitionEnvFactory,
    RandomTopology, RingTopology, StarTopology, StaticEnvFactory, TopoRef,
};

/// The closed enum of the original campaign API, kept as a thin shim over
/// the open [`Registry`]: existing callers keep writing
/// `AlgorithmKind::Minimum` and conversion into an [`AlgorithmRef`] happens
/// wherever a scenario is built.  New algorithms (baselines, the
/// counterexample, user-registered ones) are addressed by label instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// §4.1 — every agent adopts the minimum.
    Minimum,
    /// Extension — every agent adopts the maximum.
    Maximum,
    /// §4.2 — one agent concentrates the sum, the others go to zero.
    Sum,
    /// §4.4 — values sort themselves along a line (topology is forced to
    /// [`TopologyFamily::Line`]).
    Sorting,
    /// §4.3 — every agent learns the pair (smallest, second smallest).
    SecondSmallest,
    /// §4.5 — every agent learns the convex hull of all sites.
    ConvexHull,
}

impl AlgorithmKind {
    /// Short stable label used in scenario names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Minimum => "minimum",
            AlgorithmKind::Maximum => "maximum",
            AlgorithmKind::Sum => "sum",
            AlgorithmKind::Sorting => "sorting",
            AlgorithmKind::SecondSmallest => "second-smallest",
            AlgorithmKind::ConvexHull => "convex-hull",
        }
    }

    /// Parses a label produced by [`AlgorithmKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "minimum" => Some(AlgorithmKind::Minimum),
            "maximum" => Some(AlgorithmKind::Maximum),
            "sum" => Some(AlgorithmKind::Sum),
            "sorting" => Some(AlgorithmKind::Sorting),
            "second-smallest" => Some(AlgorithmKind::SecondSmallest),
            "convex-hull" => Some(AlgorithmKind::ConvexHull),
            _ => None,
        }
    }

    /// All supported algorithms.
    pub fn all() -> &'static [AlgorithmKind] {
        &[
            AlgorithmKind::Minimum,
            AlgorithmKind::Maximum,
            AlgorithmKind::Sum,
            AlgorithmKind::Sorting,
            AlgorithmKind::SecondSmallest,
            AlgorithmKind::ConvexHull,
        ]
    }

    /// `true` when the algorithm's fairness argument fixes the topology:
    /// sorting needs the line graph (§4.4) and sum the complete graph
    /// (§4.2 — with pairwise interactions, zero-valued agents cannot relay
    /// mass, so every pair must eventually share an edge).
    pub fn forced_topology(&self) -> Option<TopologyFamily> {
        match self {
            AlgorithmKind::Sorting => Some(TopologyFamily::Line),
            AlgorithmKind::Sum => Some(TopologyFamily::Complete),
            _ => None,
        }
    }

    /// The registry entry this shim variant stands for.
    pub fn resolve(&self) -> AlgorithmRef {
        Registry::builtin_ref()
            .get(self.label())
            .expect("every AlgorithmKind label is registered")
    }
}

impl From<AlgorithmKind> for AlgorithmRef {
    fn from(kind: AlgorithmKind) -> AlgorithmRef {
        kind.resolve()
    }
}

/// The closed topology enum of the original API, kept as a thin shim over
/// the open [`TopologyRegistry`](crate::TopologyRegistry): each variant
/// converts into the [`TopoRef`] of the corresponding builtin family, and
/// user families are addressed by label instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyFamily {
    /// Cycle on `n` agents.
    Ring,
    /// Path on `n` agents.
    Line,
    /// Near-square grid (largest divisor split of `n`).
    Grid,
    /// Complete graph on `n` agents.
    Complete,
    /// Star with agent 0 at the centre.
    Star,
    /// Connected Erdős–Rényi graph with edge probability `p`, re-sampled
    /// per trial from the trial's seed.
    Random {
        /// Edge probability.
        p: f64,
    },
}

impl TopologyFamily {
    /// Short stable label used in scenario names and reports.  Like every
    /// method that goes through [`TopologyFamily::resolve`], panics on
    /// out-of-range public fields (see its `# Panics`).
    pub fn label(&self) -> String {
        self.resolve().label()
    }

    /// Parses a bare family name (random takes its default `p = 0.3`).
    /// Parameterised labels resolve through
    /// [`TopologyRegistry::resolve`](crate::TopologyRegistry::resolve)
    /// instead, which also covers user-registered families.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(TopologyFamily::Ring),
            "line" => Some(TopologyFamily::Line),
            "grid" => Some(TopologyFamily::Grid),
            "complete" => Some(TopologyFamily::Complete),
            "star" => Some(TopologyFamily::Star),
            "random" => Some(TopologyFamily::Random { p: 0.3 }),
            _ => None,
        }
    }

    /// Materialises the graph for `n` agents, drawing any randomness from
    /// `rng` (so random families are deterministic per trial).  Panics on
    /// out-of-range public fields (see [`TopologyFamily::resolve`]).
    pub fn build(&self, n: usize, rng: &mut impl Rng) -> selfsim_env::Topology {
        self.resolve().build(n, rng)
    }

    /// The registry family instance this shim variant stands for.
    ///
    /// # Panics
    ///
    /// Panics with the field named when a random family's `p` lies
    /// outside `[0, 1]` — at construction, not mid-campaign.
    pub fn resolve(&self) -> TopoRef {
        match *self {
            TopologyFamily::Ring => TopoRef::new(RingTopology),
            TopologyFamily::Line => TopoRef::new(LineTopology),
            TopologyFamily::Grid => TopoRef::new(GridTopology),
            TopologyFamily::Complete => TopoRef::new(CompleteTopology),
            TopologyFamily::Star => TopoRef::new(StarTopology),
            TopologyFamily::Random { p } => TopoRef::new(RandomTopology {
                p: selfsim_env::validate_probability("p", p)
                    .unwrap_or_else(|message| panic!("TopologyFamily: {message}")),
            }),
        }
    }
}

impl From<TopologyFamily> for TopoRef {
    fn from(family: TopologyFamily) -> TopoRef {
        family.resolve()
    }
}

/// Distributes a total trial budget *exactly* over expanded scenarios:
/// every cell gets `total / cells` trials and the first `total % cells`
/// cells one more, so the campaign runs precisely `total` trials (no
/// `div_ceil` overshoot).  Returns `(base, extra)` for reporting.
///
/// Both the `campaign` CLI and the `bench_campaign` regression gate use
/// this one split, so the benched workload is the shipped workload.
///
/// **When `total < cells` the trailing cells get zero trials** and will be
/// absent from records and summaries — callers should surface that to
/// their users the way the CLI does (it prints a warning naming how many
/// cells run empty).  `base == 0` on return is the signal:
///
/// ```
/// use selfsim_campaign::{distribute_trials, AlgorithmKind, Scenario};
///
/// let mut cells: Vec<Scenario> = (0..4)
///     .map(|i| Scenario::builder(AlgorithmKind::Minimum).agents(4 + 2 * i).build())
///     .collect();
/// // 10 trials over 4 cells: 2 each, the first two get one more.
/// assert_eq!(distribute_trials(&mut cells, 10), (2, 2));
/// assert_eq!(cells.iter().map(|s| s.trials).collect::<Vec<_>>(), [3, 3, 2, 2]);
/// // Fewer trials than cells: base == 0 — the last cell runs nothing.
/// assert_eq!(distribute_trials(&mut cells, 3), (0, 3));
/// assert_eq!(cells[3].trials, 0);
/// ```
///
/// # Panics
///
/// Panics if `scenarios` is empty (there is nothing to distribute over).
pub fn distribute_trials(scenarios: &mut [Scenario], total: u64) -> (u64, u64) {
    let cells = scenarios.len() as u64;
    assert!(cells > 0, "cannot distribute trials over an empty grid");
    let (base, extra) = (total / cells, total % cells);
    for (i, scenario) in scenarios.iter_mut().enumerate() {
        scenario.trials = base + u64::from((i as u64) < extra);
    }
    (base, extra)
}

/// Splits `n` into the most-square `rows × cols` factorisation (`rows ≤
/// cols`, `rows * cols == n`).
///
/// **Primes degenerate to a line**: a prime `n` has no divisor between 1
/// and itself, so the `grid` topology family silently becomes the path
/// graph — sweeps comparing `grid` against `line` should pick composite
/// sizes, or the two families' cells coincide:
///
/// ```
/// use selfsim_campaign::grid_dims;
///
/// assert_eq!(grid_dims(12), (3, 4));
/// assert_eq!(grid_dims(16), (4, 4));
/// assert_eq!(grid_dims(13), (1, 13)); // prime → line
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn grid_dims(n: usize) -> (usize, usize) {
    assert!(n > 0, "need at least one agent");
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, n / rows)
}

/// The closed environment enum of the original API, kept as a thin shim
/// over the open [`EnvRegistry`](crate::EnvRegistry): each variant converts
/// into the [`EnvRef`] of the corresponding builtin family, and user
/// families are addressed by label instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnvModel {
    /// Fully benign: every edge available, every agent enabled.
    Static,
    /// Independent per-round churn.
    RandomChurn {
        /// Probability an edge is available each round.
        p_edge: f64,
        /// Probability an agent is enabled each round.
        p_agent: f64,
    },
    /// Two-state Markov on/off links.
    MarkovLink {
        /// down → up probability.
        p_up: f64,
        /// up → down probability.
        p_down: f64,
    },
    /// Periodic partition into blocks with periodic global merges.
    PeriodicPartition {
        /// Number of contiguous blocks.
        blocks: usize,
        /// Rounds per merge.
        period: usize,
    },
    /// Agent crash/restart faults.
    CrashRestart {
        /// up → down probability.
        p_crash: f64,
        /// down → up probability.
        p_restart: f64,
    },
    /// Minimally fair adversary: one edge every `silence + 1` rounds.
    Adversarial {
        /// Silent rounds between activations.
        silence: usize,
    },
    /// Link churn composed with crash/restart faults.
    ChurnPlusCrash {
        /// Probability an edge is available each round.
        p_edge: f64,
        /// up → down probability.
        p_crash: f64,
        /// down → up probability.
        p_restart: f64,
    },
}

impl EnvModel {
    /// Short stable label used in scenario names and reports.  Like every
    /// method that goes through [`EnvModel::resolve`], panics on
    /// out-of-range public fields (see its `# Panics`) — values the old
    /// API silently clamped.
    pub fn label(&self) -> String {
        self.resolve().label()
    }

    /// Parses a bare model name into its default parameterisation.
    /// Parameterised labels resolve through
    /// [`EnvRegistry::resolve`](crate::EnvRegistry::resolve) instead,
    /// which also covers user-registered families.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(EnvModel::Static),
            "churn" => Some(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            }),
            "markov" => Some(EnvModel::MarkovLink {
                p_up: 0.3,
                p_down: 0.3,
            }),
            "partition" => Some(EnvModel::PeriodicPartition {
                blocks: 3,
                period: 8,
            }),
            "crash" => Some(EnvModel::CrashRestart {
                p_crash: 0.05,
                p_restart: 0.5,
            }),
            "adversary" => Some(EnvModel::Adversarial { silence: 1 }),
            "churn+crash" => Some(EnvModel::ChurnPlusCrash {
                p_edge: 0.6,
                p_crash: 0.05,
                p_restart: 0.5,
            }),
            _ => None,
        }
    }

    /// `true` when the environment's *parameters* allow it to split the
    /// agents into proper subgroups (see
    /// [`EnvFactory::can_fragment`](crate::EnvFactory::can_fragment)).
    /// Panics on out-of-range public fields (see [`EnvModel::resolve`]).
    pub fn can_fragment(&self) -> bool {
        self.resolve().can_fragment()
    }

    /// Materialises the environment process over `topology`.  Panics on
    /// out-of-range public fields (see [`EnvModel::resolve`]).
    pub fn build(&self, topology: selfsim_env::Topology) -> Box<dyn selfsim_env::Environment> {
        self.resolve().build(topology)
    }

    /// The registry family instance this shim variant stands for.
    ///
    /// # Panics
    ///
    /// Panics with the offending field named when a probability lies
    /// outside `[0, 1]` or a partition count/period is zero (the enum's
    /// fields are public, so invalid values can reach it) — failing here,
    /// at scenario construction, instead of mid-campaign on a worker
    /// thread after other cells' records have already streamed.
    pub fn resolve(&self) -> EnvRef {
        let prob = |field: &str, p: f64| {
            selfsim_env::validate_probability(field, p)
                .unwrap_or_else(|message| panic!("EnvModel: {message}"))
        };
        let positive = |field: &str, value: usize| {
            assert!(value > 0, "EnvModel: {field} must be at least 1");
            value
        };
        match *self {
            EnvModel::Static => EnvRef::new(StaticEnvFactory),
            EnvModel::RandomChurn { p_edge, p_agent } => EnvRef::new(ChurnEnvFactory {
                p_edge: prob("p_edge", p_edge),
                p_agent: prob("p_agent", p_agent),
            }),
            EnvModel::MarkovLink { p_up, p_down } => EnvRef::new(MarkovEnvFactory {
                p_up: prob("p_up", p_up),
                p_down: prob("p_down", p_down),
            }),
            EnvModel::PeriodicPartition { blocks, period } => EnvRef::new(PartitionEnvFactory {
                blocks: positive("blocks", blocks),
                period: positive("period", period),
            }),
            EnvModel::CrashRestart { p_crash, p_restart } => EnvRef::new(CrashEnvFactory {
                p_crash: prob("p_crash", p_crash),
                p_restart: prob("p_restart", p_restart),
            }),
            EnvModel::Adversarial { silence } => EnvRef::new(AdversaryEnvFactory { silence }),
            EnvModel::ChurnPlusCrash {
                p_edge,
                p_crash,
                p_restart,
            } => EnvRef::new(ChurnPlusCrashEnvFactory {
                p_edge: prob("p_edge", p_edge),
                p_crash: prob("p_crash", p_crash),
                p_restart: prob("p_restart", p_restart),
            }),
        }
    }
}

impl From<EnvModel> for EnvRef {
    fn from(model: EnvModel) -> EnvRef {
        model.resolve()
    }
}

/// One cell of a campaign: every field needed to reproduce its trials.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The algorithm to run.
    pub algorithm: AlgorithmRef,
    /// The communication-graph family.
    pub topology: TopoRef,
    /// The adversary model.
    pub env: EnvRef,
    /// Which runtime executes the cell's trials.
    pub mode: ExecutionMode,
    /// Number of agents.
    pub n: usize,
    /// Number of independent trials (distinct derived seeds).
    pub trials: u64,
    /// Round (sync) or tick (async) budget per trial.
    pub max_rounds: usize,
}

impl Scenario {
    /// Starts a builder with the given algorithm (an [`AlgorithmKind`]
    /// shim variant or any [`AlgorithmRef`] from a registry).
    pub fn builder(algorithm: impl Into<AlgorithmRef>) -> ScenarioBuilder {
        let algorithm = algorithm.into();
        ScenarioBuilder {
            scenario: Scenario {
                topology: algorithm
                    .forced_topology()
                    .unwrap_or_else(|| TopologyFamily::Ring.into()),
                algorithm,
                env: EnvModel::Static.into(),
                mode: ExecutionMode::sync(),
                n: 16,
                trials: 10,
                max_rounds: 200_000,
            },
        }
    }

    /// The stable, human-readable identity of this cell; used as the
    /// grouping key by the aggregator and in every emitted record.  Each
    /// segment round-trips through its registry or parser, so the name (or
    /// any column of a JSONL record) identifies the cell exactly.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}/n={}/{}",
            self.algorithm.label(),
            self.topology.label(),
            self.env.label(),
            self.n,
            self.mode.label(),
        )
    }

    /// The name used for per-trial seed derivation: [`Scenario::name`] with
    /// the mode segment replaced by
    /// [`ExecutionMode::seed_label`](selfsim_runtime::ExecutionMode::seed_label).
    /// For sync and async cells this *is* the cell name (their seeds are
    /// anchored to themselves, so every historical record is unchanged);
    /// event cells share the seed stream of the matching-cooldown sync
    /// cell, which is what lets CI compare their records byte for byte.
    pub fn seed_name(&self) -> String {
        format!(
            "{}/{}/{}/n={}/{}",
            self.algorithm.label(),
            self.topology.label(),
            self.env.label(),
            self.n,
            self.mode.seed_label(),
        )
    }

    /// `true` when this cell's execution can take a collaborative group
    /// step on a *proper* subset of the agents: a fragmenting environment
    /// or the pairwise asynchronous mode.  At `n = 2` nothing ever
    /// fragments — singleton groups are no-ops and any pair step is a
    /// whole-system step — so two-agent cells never count as fragmenting.
    pub fn fragmenting(&self) -> bool {
        self.n > 2 && (self.mode.is_async() || self.env.can_fragment())
    }
}

/// Fluent construction of a single [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the topology family (ignored — forced — for sorting).  Accepts
    /// a [`TopologyFamily`] shim variant or any [`TopoRef`] from a
    /// registry.
    pub fn topology(mut self, family: impl Into<TopoRef>) -> Self {
        self.scenario.topology = self
            .scenario
            .algorithm
            .forced_topology()
            .unwrap_or_else(|| family.into());
        self
    }

    /// Sets the environment model (an [`EnvModel`] shim variant or any
    /// [`EnvRef`] from a registry).
    pub fn env(mut self, model: impl Into<EnvRef>) -> Self {
        self.scenario.env = model.into();
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.scenario.mode = mode;
        self
    }

    /// Sets the number of agents.
    pub fn agents(mut self, n: usize) -> Self {
        assert!(n >= 2, "campaign scenarios need at least two agents");
        self.scenario.n = n;
        self
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.scenario.trials = trials;
        self
    }

    /// Sets the per-trial round budget.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.scenario.max_rounds = max_rounds;
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

/// Cartesian-product expansion of scenario dimensions — the "sweep" half of
/// the declarative API.
///
/// Algorithms with a forced topology (sorting, sum) contribute one scenario
/// per environment/size instead of one per topology, so the grid never
/// contains unsatisfiable cells.  The execution-mode dimension defaults to
/// `[sync]` when unset, so pre-mode callers are unaffected.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    algorithms: Vec<AlgorithmRef>,
    topologies: Vec<TopoRef>,
    envs: Vec<EnvRef>,
    modes: Vec<ExecutionMode>,
    sizes: Vec<usize>,
    trials: u64,
    max_rounds: usize,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid::new()
    }
}

impl ScenarioGrid {
    /// An empty grid with 10 trials and a 200k-round budget per cell.
    pub fn new() -> Self {
        ScenarioGrid {
            algorithms: Vec::new(),
            topologies: Vec::new(),
            envs: Vec::new(),
            modes: Vec::new(),
            sizes: Vec::new(),
            trials: 10,
            max_rounds: 200_000,
        }
    }

    /// Adds algorithms to the sweep ([`AlgorithmKind`] shim variants and
    /// registry [`AlgorithmRef`]s mix freely).
    pub fn algorithms<A: Into<AlgorithmRef>>(
        mut self,
        algorithms: impl IntoIterator<Item = A>,
    ) -> Self {
        self.algorithms
            .extend(algorithms.into_iter().map(Into::into));
        self
    }

    /// Adds topology families to the sweep ([`TopologyFamily`] shim
    /// variants and registry [`TopoRef`]s mix freely).
    pub fn topologies<T: Into<TopoRef>>(mut self, topologies: impl IntoIterator<Item = T>) -> Self {
        self.topologies
            .extend(topologies.into_iter().map(Into::into));
        self
    }

    /// Adds environment models to the sweep ([`EnvModel`] shim variants
    /// and registry [`EnvRef`]s mix freely).
    pub fn envs<E: Into<EnvRef>>(mut self, envs: impl IntoIterator<Item = E>) -> Self {
        self.envs.extend(envs.into_iter().map(Into::into));
        self
    }

    /// Adds execution modes to the sweep (defaults to synchronous-only when
    /// never called).
    pub fn modes(mut self, modes: impl IntoIterator<Item = ExecutionMode>) -> Self {
        self.modes.extend(modes);
        self
    }

    /// Adds system sizes to the sweep.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes.extend(sizes);
        self
    }

    /// Sets trials per cell.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the per-trial round budget.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Expands the grid into concrete scenarios (deduplicated by name, in
    /// deterministic algorithm-major order).
    ///
    /// # Panics
    ///
    /// Panics if any size is below two agents — the same invariant
    /// [`ScenarioBuilder::agents`] enforces (a "campaign" over zero or one
    /// agent would report meaningless instant convergence).
    pub fn expand(&self) -> Vec<Scenario> {
        if let Some(&n) = self.sizes.iter().find(|&&n| n < 2) {
            panic!("campaign scenarios need at least two agents, got size {n}");
        }
        let modes: Vec<ExecutionMode> = if self.modes.is_empty() {
            vec![ExecutionMode::sync()]
        } else {
            self.modes.clone()
        };
        let mut out: Vec<Scenario> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for algorithm in &self.algorithms {
            let topologies: Vec<TopoRef> = match algorithm.forced_topology() {
                Some(forced) => vec![forced],
                None => self.topologies.clone(),
            };
            for topology in &topologies {
                for env in &self.envs {
                    for &n in &self.sizes {
                        // Modes innermost: a cell and its cross-runtime
                        // sibling sit next to each other in the output.
                        for &mode in &modes {
                            let scenario = Scenario {
                                algorithm: algorithm.clone(),
                                topology: topology.clone(),
                                env: env.clone(),
                                mode,
                                n,
                                trials: self.trials,
                                max_rounds: self.max_rounds,
                            };
                            if seen.insert(scenario.name()) {
                                out.push(scenario);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribute_trials_is_exact() {
        let mut scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::builder(AlgorithmKind::Minimum)
                    .agents(4 + 2 * i)
                    .build()
            })
            .collect();
        let (base, extra) = distribute_trials(&mut scenarios, 100);
        assert_eq!((base, extra), (16, 4));
        let per_cell: Vec<u64> = scenarios.iter().map(|s| s.trials).collect();
        assert_eq!(per_cell, vec![17, 17, 17, 17, 16, 16]);
        assert_eq!(per_cell.iter().sum::<u64>(), 100);
        // Fewer trials than cells: trailing cells get zero.
        let (base, extra) = distribute_trials(&mut scenarios, 4);
        assert_eq!((base, extra), (0, 4));
        assert_eq!(scenarios.iter().map(|s| s.trials).sum::<u64>(), 4);
        assert_eq!(scenarios[5].trials, 0);
    }

    #[test]
    fn grid_dims_factorises() {
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(7), (1, 7)); // prime → line
        assert_eq!(grid_dims(1), (1, 1));
        // Larger primes degenerate to a line too — the documented caveat
        // for grid-vs-line sweeps.
        assert_eq!(grid_dims(31), (1, 31));
    }

    #[test]
    fn topology_families_have_right_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in [
            TopologyFamily::Ring,
            TopologyFamily::Line,
            TopologyFamily::Grid,
            TopologyFamily::Complete,
            TopologyFamily::Star,
            TopologyFamily::Random { p: 0.4 },
        ] {
            let topo = family.build(12, &mut rng);
            assert_eq!(topo.agent_count(), 12, "{}", family.label());
            assert!(topo.is_connected(), "{}", family.label());
        }
    }

    #[test]
    fn random_topology_is_seed_deterministic() {
        let family = TopologyFamily::Random { p: 0.3 };
        let a = family.build(10, &mut StdRng::seed_from_u64(9));
        let b = family.build(10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_names_are_stable_keys() {
        let s = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Ring)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .agents(8)
            .build();
        assert_eq!(s.name(), "minimum/ring/churn(e=0.5,a=0.9)/n=8/sync");
        let a = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .build();
        assert!(a.name().ends_with("/async"));
    }

    #[test]
    fn registry_refs_build_scenarios_like_shim_variants() {
        // Registry-resolved dimensions produce the same cells as the
        // closed-enum shims — the shim contract.
        let env = crate::EnvRegistry::builtin()
            .resolve("churn(e=0.5,a=0.9)")
            .unwrap();
        let topo = crate::TopologyRegistry::builtin().resolve("ring").unwrap();
        let via_registry = Scenario::builder(AlgorithmKind::Minimum)
            .topology(topo)
            .env(env)
            .agents(8)
            .build();
        let via_shim = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Ring)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .agents(8)
            .build();
        assert_eq!(via_registry.name(), via_shim.name());
        assert_eq!(via_registry.fragmenting(), via_shim.fragmenting());
    }

    #[test]
    fn can_fragment_is_parameter_aware() {
        assert!(!EnvModel::Static.can_fragment());
        // Dynamic in name only: every edge and agent up every round.
        assert!(!EnvModel::RandomChurn {
            p_edge: 1.0,
            p_agent: 1.0
        }
        .can_fragment());
        assert!(EnvModel::RandomChurn {
            p_edge: 0.5,
            p_agent: 1.0
        }
        .can_fragment());
        assert!(!EnvModel::MarkovLink {
            p_up: 0.5,
            p_down: 0.0
        }
        .can_fragment());
        assert!(!EnvModel::PeriodicPartition {
            blocks: 1,
            period: 4
        }
        .can_fragment());
        assert!(!EnvModel::CrashRestart {
            p_crash: 0.0,
            p_restart: 1.0
        }
        .can_fragment());
        assert!(EnvModel::Adversarial { silence: 0 }.can_fragment());
    }

    #[test]
    fn fragmenting_tracks_env_and_mode() {
        let sync_static = Scenario::builder(AlgorithmKind::Minimum).build();
        assert!(!sync_static.fragmenting());
        let async_static = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .build();
        assert!(async_static.fragmenting());
        let sync_churn = Scenario::builder(AlgorithmKind::Minimum)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .build();
        assert!(sync_churn.fragmenting());
        // Two agents can never take a proper-subgroup step: singleton
        // groups idle and a pair step is the whole system.
        let two_async = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .agents(2)
            .build();
        assert!(!two_async.fragmenting());
    }

    #[test]
    fn registry_labels_build_scenarios_like_shim_variants() {
        let registry = crate::Registry::builtin();
        let via_label = Scenario::builder(registry.resolve("minimum").unwrap()).build();
        let via_shim = Scenario::builder(AlgorithmKind::Minimum).build();
        assert_eq!(via_label.name(), via_shim.name());
        // Baselines are ordinary grid citizens now.
        let snapshot = Scenario::builder(registry.resolve("snapshot").unwrap()).build();
        assert_eq!(snapshot.name(), "snapshot/ring/static/n=16/sync");
    }

    #[test]
    fn grid_mode_dimension_multiplies_cells_and_defaults_to_sync() {
        let base = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([TopologyFamily::Ring])
            .envs([EnvModel::Static])
            .sizes([8]);
        let sync_only = base.clone().expand();
        assert_eq!(sync_only.len(), 1);
        assert_eq!(sync_only[0].mode, ExecutionMode::sync());
        let both = base.modes(ExecutionMode::both()).expand();
        assert_eq!(both.len(), 2);
        assert!(both[0].name().ends_with("/sync"));
        assert!(both[1].name().ends_with("/async"));
    }

    #[test]
    fn sorting_topology_is_forced_to_line() {
        let s = Scenario::builder(AlgorithmKind::Sorting)
            .topology(TopologyFamily::Complete)
            .build();
        assert_eq!(s.topology.label(), "line");
    }

    #[test]
    fn grid_expansion_covers_product_and_dedups_sorting() {
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum, AlgorithmKind::Sorting])
            .topologies([TopologyFamily::Ring, TopologyFamily::Complete])
            .envs([EnvModel::Static, EnvModel::Adversarial { silence: 1 }])
            .sizes([8, 12])
            .expand();
        // minimum: 2 topologies × 2 envs × 2 sizes = 8; sorting: line only
        // × 2 envs × 2 sizes = 4.
        assert_eq!(scenarios.len(), 12);
        let names: std::collections::BTreeSet<String> =
            scenarios.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 12, "names are unique");
    }

    #[test]
    fn grid_mixes_shim_variants_and_registry_refs() {
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([
                TopologyFamily::Ring.into(),
                crate::TopologyRegistry::builtin()
                    .resolve("random(p=0.15)")
                    .unwrap(),
            ])
            .envs([
                EnvModel::Static.into(),
                crate::EnvRegistry::builtin()
                    .resolve("churn(e=0.3,a=0.8)")
                    .unwrap(),
            ])
            .sizes([8])
            .expand();
        assert_eq!(scenarios.len(), 4);
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "minimum/random(p=0.15)/churn(e=0.3,a=0.8)/n=8/sync"));
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn grid_expansion_rejects_degenerate_sizes() {
        let _ = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([TopologyFamily::Ring])
            .envs([EnvModel::Static])
            .sizes([8, 1])
            .expand();
    }

    #[test]
    fn labels_parse_back() {
        for kind in AlgorithmKind::all() {
            assert_eq!(AlgorithmKind::parse(kind.label()), Some(*kind));
        }
        assert_eq!(TopologyFamily::parse("grid"), Some(TopologyFamily::Grid));
        assert!(EnvModel::parse("churn").is_some());
        assert!(EnvModel::parse("nonsense").is_none());
    }

    #[test]
    #[should_panic(expected = "p_edge must be a probability")]
    fn shim_resolve_rejects_out_of_range_probabilities_at_construction() {
        // Fail at scenario construction with the field named, not
        // mid-campaign on a worker thread.
        let _ = EnvModel::RandomChurn {
            p_edge: 1.7,
            p_agent: 0.5,
        }
        .resolve();
    }

    #[test]
    #[should_panic(expected = "blocks must be at least 1")]
    fn shim_resolve_rejects_zero_partition_blocks() {
        let _ = EnvModel::PeriodicPartition {
            blocks: 0,
            period: 8,
        }
        .resolve();
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn shim_resolve_rejects_out_of_range_random_topology() {
        let _ = TopologyFamily::Random { p: -0.5 }.resolve();
    }

    #[test]
    fn shim_parse_defaults_match_registry_defaults() {
        // The shim parsers hardcode each family's default parameters and
        // the factory `Default` impls hardcode them again; this pins the
        // two together so a bumped default cannot silently make
        // `EnvModel::parse("churn")` and `EnvRegistry::resolve("churn")`
        // name different cells.
        for family in crate::EnvRegistry::builtin().families() {
            let shim = EnvModel::parse(&family)
                .expect("every builtin environment family has a shim variant")
                .resolve();
            let registry = crate::EnvRegistry::builtin().resolve(&family).unwrap();
            assert_eq!(shim, registry, "{family}");
        }
        for family in crate::TopologyRegistry::builtin().families() {
            let shim = TopologyFamily::parse(&family)
                .expect("every builtin topology family has a shim variant")
                .resolve();
            let registry = crate::TopologyRegistry::builtin().resolve(&family).unwrap();
            assert_eq!(shim, registry, "{family}");
        }
    }
}
