//! Declarative scenario specifications and grid expansion.
//!
//! A [`Scenario`] names one *cell* of an experiment campaign: an algorithm
//! (an [`AlgorithmRef`] from the registry), a topology family, an
//! environment model, an execution mode, a system size and a number of
//! trials.  Scenarios are cheap shareable data — building the actual
//! algorithm instance and [`Environment`](selfsim_env::Environment) happens
//! per trial in the runner, so scenarios can be freely sent across threads
//! and expanded into grids.

use rand::Rng;
use selfsim_env::{
    AdversarialEnv, ComposedEnv, CrashRestartEnv, Environment, MarkovLinkEnv, PeriodicPartitionEnv,
    RandomChurnEnv, StaticEnv, Topology,
};
use selfsim_runtime::ExecutionMode;

use crate::algorithm::{AlgorithmRef, Registry};

/// The closed enum of the original campaign API, kept as a thin shim over
/// the open [`Registry`]: existing callers keep writing
/// `AlgorithmKind::Minimum` and conversion into an [`AlgorithmRef`] happens
/// wherever a scenario is built.  New algorithms (baselines, the
/// counterexample, user-registered ones) are addressed by label instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// §4.1 — every agent adopts the minimum.
    Minimum,
    /// Extension — every agent adopts the maximum.
    Maximum,
    /// §4.2 — one agent concentrates the sum, the others go to zero.
    Sum,
    /// §4.4 — values sort themselves along a line (topology is forced to
    /// [`TopologyFamily::Line`]).
    Sorting,
    /// §4.3 — every agent learns the pair (smallest, second smallest).
    SecondSmallest,
    /// §4.5 — every agent learns the convex hull of all sites.
    ConvexHull,
}

impl AlgorithmKind {
    /// Short stable label used in scenario names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Minimum => "minimum",
            AlgorithmKind::Maximum => "maximum",
            AlgorithmKind::Sum => "sum",
            AlgorithmKind::Sorting => "sorting",
            AlgorithmKind::SecondSmallest => "second-smallest",
            AlgorithmKind::ConvexHull => "convex-hull",
        }
    }

    /// Parses a label produced by [`AlgorithmKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "minimum" => Some(AlgorithmKind::Minimum),
            "maximum" => Some(AlgorithmKind::Maximum),
            "sum" => Some(AlgorithmKind::Sum),
            "sorting" => Some(AlgorithmKind::Sorting),
            "second-smallest" => Some(AlgorithmKind::SecondSmallest),
            "convex-hull" => Some(AlgorithmKind::ConvexHull),
            _ => None,
        }
    }

    /// All supported algorithms.
    pub fn all() -> &'static [AlgorithmKind] {
        &[
            AlgorithmKind::Minimum,
            AlgorithmKind::Maximum,
            AlgorithmKind::Sum,
            AlgorithmKind::Sorting,
            AlgorithmKind::SecondSmallest,
            AlgorithmKind::ConvexHull,
        ]
    }

    /// `true` when the algorithm's fairness argument fixes the topology:
    /// sorting needs the line graph (§4.4) and sum the complete graph
    /// (§4.2 — with pairwise interactions, zero-valued agents cannot relay
    /// mass, so every pair must eventually share an edge).
    pub fn forced_topology(&self) -> Option<TopologyFamily> {
        match self {
            AlgorithmKind::Sorting => Some(TopologyFamily::Line),
            AlgorithmKind::Sum => Some(TopologyFamily::Complete),
            _ => None,
        }
    }

    /// The registry entry this shim variant stands for.
    pub fn resolve(&self) -> AlgorithmRef {
        Registry::builtin_ref()
            .get(self.label())
            .expect("every AlgorithmKind label is registered")
    }
}

impl From<AlgorithmKind> for AlgorithmRef {
    fn from(kind: AlgorithmKind) -> AlgorithmRef {
        kind.resolve()
    }
}

/// The topology dimension: a family of communication graphs parameterised by
/// the system size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyFamily {
    /// Cycle on `n` agents.
    Ring,
    /// Path on `n` agents.
    Line,
    /// Near-square grid (largest divisor split of `n`).
    Grid,
    /// Complete graph on `n` agents.
    Complete,
    /// Star with agent 0 at the centre.
    Star,
    /// Connected Erdős–Rényi graph with edge probability `p`, re-sampled
    /// per trial from the trial's seed.
    Random {
        /// Edge probability.
        p: f64,
    },
}

impl TopologyFamily {
    /// Short stable label used in scenario names and reports.
    pub fn label(&self) -> String {
        match self {
            TopologyFamily::Ring => "ring".into(),
            TopologyFamily::Line => "line".into(),
            TopologyFamily::Grid => "grid".into(),
            TopologyFamily::Complete => "complete".into(),
            TopologyFamily::Star => "star".into(),
            TopologyFamily::Random { p } => format!("random(p={p})"),
        }
    }

    /// Parses a label produced by [`TopologyFamily::label`] (random accepts
    /// plain `random` with `p = 0.3`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(TopologyFamily::Ring),
            "line" => Some(TopologyFamily::Line),
            "grid" => Some(TopologyFamily::Grid),
            "complete" => Some(TopologyFamily::Complete),
            "star" => Some(TopologyFamily::Star),
            "random" => Some(TopologyFamily::Random { p: 0.3 }),
            _ => None,
        }
    }

    /// Materialises the graph for `n` agents, drawing any randomness from
    /// `rng` (so random families are deterministic per trial).
    pub fn build(&self, n: usize, rng: &mut impl Rng) -> Topology {
        match self {
            TopologyFamily::Ring => Topology::ring(n),
            TopologyFamily::Line => Topology::line(n),
            TopologyFamily::Grid => {
                let (rows, cols) = grid_dims(n);
                Topology::grid(rows, cols)
            }
            TopologyFamily::Complete => Topology::complete(n),
            TopologyFamily::Star => Topology::star(n),
            TopologyFamily::Random { p } => Topology::random_connected(n, *p, rng),
        }
    }
}

/// Distributes a total trial budget *exactly* over expanded scenarios:
/// every cell gets `total / cells` trials and the first `total % cells`
/// cells one more, so the campaign runs precisely `total` trials (no
/// `div_ceil` overshoot).  Returns `(base, extra)` for reporting.
///
/// Both the `campaign` CLI and the `bench_campaign` regression gate use
/// this one split, so the benched workload is the shipped workload.  Note
/// that when `total < cells` the trailing cells get **zero** trials and
/// will be absent from records and summaries — callers should surface
/// that (the CLI warns).
pub fn distribute_trials(scenarios: &mut [Scenario], total: u64) -> (u64, u64) {
    let cells = scenarios.len() as u64;
    assert!(cells > 0, "cannot distribute trials over an empty grid");
    let (base, extra) = (total / cells, total % cells);
    for (i, scenario) in scenarios.iter_mut().enumerate() {
        scenario.trials = base + u64::from((i as u64) < extra);
    }
    (base, extra)
}

/// Splits `n` into the most-square `rows × cols` factorisation (`rows ≤
/// cols`, `rows * cols == n`); primes degenerate to a line.
pub fn grid_dims(n: usize) -> (usize, usize) {
    assert!(n > 0, "need at least one agent");
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, n / rows)
}

/// The environment dimension: which adversary the algorithm runs against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnvModel {
    /// Fully benign: every edge available, every agent enabled.
    Static,
    /// Independent per-round churn.
    RandomChurn {
        /// Probability an edge is available each round.
        p_edge: f64,
        /// Probability an agent is enabled each round.
        p_agent: f64,
    },
    /// Two-state Markov on/off links.
    MarkovLink {
        /// down → up probability.
        p_up: f64,
        /// up → down probability.
        p_down: f64,
    },
    /// Periodic partition into blocks with periodic global merges.
    PeriodicPartition {
        /// Number of contiguous blocks.
        blocks: usize,
        /// Rounds per merge.
        period: usize,
    },
    /// Agent crash/restart faults.
    CrashRestart {
        /// up → down probability.
        p_crash: f64,
        /// down → up probability.
        p_restart: f64,
    },
    /// Minimally fair adversary: one edge every `silence + 1` rounds.
    Adversarial {
        /// Silent rounds between activations.
        silence: usize,
    },
    /// Link churn composed with crash/restart faults.
    ChurnPlusCrash {
        /// Probability an edge is available each round.
        p_edge: f64,
        /// up → down probability.
        p_crash: f64,
        /// down → up probability.
        p_restart: f64,
    },
}

impl EnvModel {
    /// Short stable label used in scenario names and reports.
    pub fn label(&self) -> String {
        match self {
            EnvModel::Static => "static".into(),
            EnvModel::RandomChurn { p_edge, p_agent } => format!("churn(e={p_edge},a={p_agent})"),
            EnvModel::MarkovLink { p_up, p_down } => format!("markov(up={p_up},down={p_down})"),
            EnvModel::PeriodicPartition { blocks, period } => {
                format!("partition(b={blocks},t={period})")
            }
            EnvModel::CrashRestart { p_crash, p_restart } => {
                format!("crash(c={p_crash},r={p_restart})")
            }
            EnvModel::Adversarial { silence } => format!("adversary(s={silence})"),
            EnvModel::ChurnPlusCrash {
                p_edge,
                p_crash,
                p_restart,
            } => format!("churn+crash(e={p_edge},c={p_crash},r={p_restart})"),
        }
    }

    /// Parses a bare model name into its default parameterisation.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(EnvModel::Static),
            "churn" => Some(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            }),
            "markov" => Some(EnvModel::MarkovLink {
                p_up: 0.3,
                p_down: 0.3,
            }),
            "partition" => Some(EnvModel::PeriodicPartition {
                blocks: 3,
                period: 8,
            }),
            "crash" => Some(EnvModel::CrashRestart {
                p_crash: 0.05,
                p_restart: 0.5,
            }),
            "adversary" => Some(EnvModel::Adversarial { silence: 1 }),
            "churn+crash" => Some(EnvModel::ChurnPlusCrash {
                p_edge: 0.6,
                p_crash: 0.05,
                p_restart: 0.5,
            }),
            _ => None,
        }
    }

    /// `true` when the environment's *parameters* allow it to split the
    /// agents into proper subgroups — e.g. churn with `p_edge = 1.0` and
    /// `p_agent = 1.0` is dynamic in name only and never fragments.
    /// Together with the execution mode this decides whether a
    /// [`DivergeUnderFragmentation`](crate::Expectation) cell is expected
    /// to converge.  (This is a per-cell expectation: a genuinely
    /// fragmenting environment can still draw a fully-connected first
    /// round, so treat the `meets_expectation` column as a measurement,
    /// not an invariant.)
    pub fn can_fragment(&self) -> bool {
        match *self {
            EnvModel::Static => false,
            EnvModel::RandomChurn { p_edge, p_agent } => p_edge < 1.0 || p_agent < 1.0,
            // Links start up and only fragment once one goes down.
            EnvModel::MarkovLink { p_down, .. } => p_down > 0.0,
            // A single block never partitions anything.
            EnvModel::PeriodicPartition { blocks, .. } => blocks > 1,
            // Agents start up and only drop out if they can crash.
            EnvModel::CrashRestart { p_crash, .. } => p_crash > 0.0,
            // One edge at a time is maximal fragmentation by construction.
            EnvModel::Adversarial { .. } => true,
            EnvModel::ChurnPlusCrash {
                p_edge, p_crash, ..
            } => p_edge < 1.0 || p_crash > 0.0,
        }
    }

    /// Materialises the environment process over `topology`.
    pub fn build(&self, topology: Topology) -> Box<dyn Environment> {
        match *self {
            EnvModel::Static => Box::new(StaticEnv::new(topology)),
            EnvModel::RandomChurn { p_edge, p_agent } => {
                Box::new(RandomChurnEnv::new(topology, p_edge, p_agent))
            }
            EnvModel::MarkovLink { p_up, p_down } => {
                Box::new(MarkovLinkEnv::new(topology, p_up, p_down))
            }
            EnvModel::PeriodicPartition { blocks, period } => {
                Box::new(PeriodicPartitionEnv::new(topology, blocks, period))
            }
            EnvModel::CrashRestart { p_crash, p_restart } => {
                Box::new(CrashRestartEnv::new(topology, p_crash, p_restart))
            }
            EnvModel::Adversarial { silence } => Box::new(AdversarialEnv::new(topology, silence)),
            EnvModel::ChurnPlusCrash {
                p_edge,
                p_crash,
                p_restart,
            } => Box::new(ComposedEnv::new(
                RandomChurnEnv::new(topology.clone(), p_edge, 1.0),
                CrashRestartEnv::new(topology, p_crash, p_restart),
            )),
        }
    }
}

/// One cell of a campaign: every field needed to reproduce its trials.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The algorithm to run.
    pub algorithm: AlgorithmRef,
    /// The communication-graph family.
    pub topology: TopologyFamily,
    /// The adversary model.
    pub env: EnvModel,
    /// Which runtime executes the cell's trials.
    pub mode: ExecutionMode,
    /// Number of agents.
    pub n: usize,
    /// Number of independent trials (distinct derived seeds).
    pub trials: u64,
    /// Round (sync) or tick (async) budget per trial.
    pub max_rounds: usize,
}

impl Scenario {
    /// Starts a builder with the given algorithm (an [`AlgorithmKind`]
    /// shim variant or any [`AlgorithmRef`] from a registry).
    pub fn builder(algorithm: impl Into<AlgorithmRef>) -> ScenarioBuilder {
        let algorithm = algorithm.into();
        ScenarioBuilder {
            scenario: Scenario {
                topology: algorithm.forced_topology().unwrap_or(TopologyFamily::Ring),
                algorithm,
                env: EnvModel::Static,
                mode: ExecutionMode::sync(),
                n: 16,
                trials: 10,
                max_rounds: 200_000,
            },
        }
    }

    /// The stable, human-readable identity of this cell; used as the
    /// grouping key by the aggregator and in every emitted record.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}/n={}/{}",
            self.algorithm.label(),
            self.topology.label(),
            self.env.label(),
            self.n,
            self.mode.label(),
        )
    }

    /// `true` when this cell's execution can take a collaborative group
    /// step on a *proper* subset of the agents: a fragmenting environment
    /// or the pairwise asynchronous mode.  At `n = 2` nothing ever
    /// fragments — singleton groups are no-ops and any pair step is a
    /// whole-system step — so two-agent cells never count as fragmenting.
    pub fn fragmenting(&self) -> bool {
        self.n > 2 && (self.mode.is_async() || self.env.can_fragment())
    }
}

/// Fluent construction of a single [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the topology family (ignored — forced — for sorting).
    pub fn topology(mut self, family: TopologyFamily) -> Self {
        self.scenario.topology = self.scenario.algorithm.forced_topology().unwrap_or(family);
        self
    }

    /// Sets the environment model.
    pub fn env(mut self, model: EnvModel) -> Self {
        self.scenario.env = model;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.scenario.mode = mode;
        self
    }

    /// Sets the number of agents.
    pub fn agents(mut self, n: usize) -> Self {
        assert!(n >= 2, "campaign scenarios need at least two agents");
        self.scenario.n = n;
        self
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.scenario.trials = trials;
        self
    }

    /// Sets the per-trial round budget.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.scenario.max_rounds = max_rounds;
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

/// Cartesian-product expansion of scenario dimensions — the "sweep" half of
/// the declarative API.
///
/// Algorithms with a forced topology (sorting, sum) contribute one scenario
/// per environment/size instead of one per topology, so the grid never
/// contains unsatisfiable cells.  The execution-mode dimension defaults to
/// `[sync]` when unset, so pre-mode callers are unaffected.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    algorithms: Vec<AlgorithmRef>,
    topologies: Vec<TopologyFamily>,
    envs: Vec<EnvModel>,
    modes: Vec<ExecutionMode>,
    sizes: Vec<usize>,
    trials: u64,
    max_rounds: usize,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid::new()
    }
}

impl ScenarioGrid {
    /// An empty grid with 10 trials and a 200k-round budget per cell.
    pub fn new() -> Self {
        ScenarioGrid {
            algorithms: Vec::new(),
            topologies: Vec::new(),
            envs: Vec::new(),
            modes: Vec::new(),
            sizes: Vec::new(),
            trials: 10,
            max_rounds: 200_000,
        }
    }

    /// Adds algorithms to the sweep ([`AlgorithmKind`] shim variants and
    /// registry [`AlgorithmRef`]s mix freely).
    pub fn algorithms<A: Into<AlgorithmRef>>(
        mut self,
        algorithms: impl IntoIterator<Item = A>,
    ) -> Self {
        self.algorithms
            .extend(algorithms.into_iter().map(Into::into));
        self
    }

    /// Adds topology families to the sweep.
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = TopologyFamily>) -> Self {
        self.topologies.extend(topologies);
        self
    }

    /// Adds environment models to the sweep.
    pub fn envs(mut self, envs: impl IntoIterator<Item = EnvModel>) -> Self {
        self.envs.extend(envs);
        self
    }

    /// Adds execution modes to the sweep (defaults to synchronous-only when
    /// never called).
    pub fn modes(mut self, modes: impl IntoIterator<Item = ExecutionMode>) -> Self {
        self.modes.extend(modes);
        self
    }

    /// Adds system sizes to the sweep.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes.extend(sizes);
        self
    }

    /// Sets trials per cell.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the per-trial round budget.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Expands the grid into concrete scenarios (deduplicated by name, in
    /// deterministic algorithm-major order).
    ///
    /// # Panics
    ///
    /// Panics if any size is below two agents — the same invariant
    /// [`ScenarioBuilder::agents`] enforces (a "campaign" over zero or one
    /// agent would report meaningless instant convergence).
    pub fn expand(&self) -> Vec<Scenario> {
        if let Some(&n) = self.sizes.iter().find(|&&n| n < 2) {
            panic!("campaign scenarios need at least two agents, got size {n}");
        }
        let modes: Vec<ExecutionMode> = if self.modes.is_empty() {
            vec![ExecutionMode::sync()]
        } else {
            self.modes.clone()
        };
        let mut out: Vec<Scenario> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for algorithm in &self.algorithms {
            let topologies: Vec<TopologyFamily> = match algorithm.forced_topology() {
                Some(forced) => vec![forced],
                None => self.topologies.clone(),
            };
            for &topology in &topologies {
                for &env in &self.envs {
                    for &n in &self.sizes {
                        // Modes innermost: a cell and its cross-runtime
                        // sibling sit next to each other in the output.
                        for &mode in &modes {
                            let scenario = Scenario {
                                algorithm: algorithm.clone(),
                                topology,
                                env,
                                mode,
                                n,
                                trials: self.trials,
                                max_rounds: self.max_rounds,
                            };
                            if seen.insert(scenario.name()) {
                                out.push(scenario);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribute_trials_is_exact() {
        let mut scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::builder(AlgorithmKind::Minimum)
                    .agents(4 + 2 * i)
                    .build()
            })
            .collect();
        let (base, extra) = distribute_trials(&mut scenarios, 100);
        assert_eq!((base, extra), (16, 4));
        let per_cell: Vec<u64> = scenarios.iter().map(|s| s.trials).collect();
        assert_eq!(per_cell, vec![17, 17, 17, 17, 16, 16]);
        assert_eq!(per_cell.iter().sum::<u64>(), 100);
        // Fewer trials than cells: trailing cells get zero.
        let (base, extra) = distribute_trials(&mut scenarios, 4);
        assert_eq!((base, extra), (0, 4));
        assert_eq!(scenarios.iter().map(|s| s.trials).sum::<u64>(), 4);
        assert_eq!(scenarios[5].trials, 0);
    }

    #[test]
    fn grid_dims_factorises() {
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(7), (1, 7)); // prime → line
        assert_eq!(grid_dims(1), (1, 1));
    }

    #[test]
    fn topology_families_have_right_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in [
            TopologyFamily::Ring,
            TopologyFamily::Line,
            TopologyFamily::Grid,
            TopologyFamily::Complete,
            TopologyFamily::Star,
            TopologyFamily::Random { p: 0.4 },
        ] {
            let topo = family.build(12, &mut rng);
            assert_eq!(topo.agent_count(), 12, "{}", family.label());
            assert!(topo.is_connected(), "{}", family.label());
        }
    }

    #[test]
    fn random_topology_is_seed_deterministic() {
        let family = TopologyFamily::Random { p: 0.3 };
        let a = family.build(10, &mut StdRng::seed_from_u64(9));
        let b = family.build(10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_names_are_stable_keys() {
        let s = Scenario::builder(AlgorithmKind::Minimum)
            .topology(TopologyFamily::Ring)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .agents(8)
            .build();
        assert_eq!(s.name(), "minimum/ring/churn(e=0.5,a=0.9)/n=8/sync");
        let a = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .build();
        assert!(a.name().ends_with("/async"));
    }

    #[test]
    fn can_fragment_is_parameter_aware() {
        assert!(!EnvModel::Static.can_fragment());
        // Dynamic in name only: every edge and agent up every round.
        assert!(!EnvModel::RandomChurn {
            p_edge: 1.0,
            p_agent: 1.0
        }
        .can_fragment());
        assert!(EnvModel::RandomChurn {
            p_edge: 0.5,
            p_agent: 1.0
        }
        .can_fragment());
        assert!(!EnvModel::MarkovLink {
            p_up: 0.5,
            p_down: 0.0
        }
        .can_fragment());
        assert!(!EnvModel::PeriodicPartition {
            blocks: 1,
            period: 4
        }
        .can_fragment());
        assert!(!EnvModel::CrashRestart {
            p_crash: 0.0,
            p_restart: 1.0
        }
        .can_fragment());
        assert!(EnvModel::Adversarial { silence: 0 }.can_fragment());
    }

    #[test]
    fn fragmenting_tracks_env_and_mode() {
        let sync_static = Scenario::builder(AlgorithmKind::Minimum).build();
        assert!(!sync_static.fragmenting());
        let async_static = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .build();
        assert!(async_static.fragmenting());
        let sync_churn = Scenario::builder(AlgorithmKind::Minimum)
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .build();
        assert!(sync_churn.fragmenting());
        // Two agents can never take a proper-subgroup step: singleton
        // groups idle and a pair step is the whole system.
        let two_async = Scenario::builder(AlgorithmKind::Minimum)
            .mode(ExecutionMode::asynchronous())
            .env(EnvModel::RandomChurn {
                p_edge: 0.5,
                p_agent: 0.9,
            })
            .agents(2)
            .build();
        assert!(!two_async.fragmenting());
    }

    #[test]
    fn registry_labels_build_scenarios_like_shim_variants() {
        let registry = crate::Registry::builtin();
        let via_label = Scenario::builder(registry.resolve("minimum").unwrap()).build();
        let via_shim = Scenario::builder(AlgorithmKind::Minimum).build();
        assert_eq!(via_label.name(), via_shim.name());
        // Baselines are ordinary grid citizens now.
        let snapshot = Scenario::builder(registry.resolve("snapshot").unwrap()).build();
        assert_eq!(snapshot.name(), "snapshot/ring/static/n=16/sync");
    }

    #[test]
    fn grid_mode_dimension_multiplies_cells_and_defaults_to_sync() {
        let base = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([TopologyFamily::Ring])
            .envs([EnvModel::Static])
            .sizes([8]);
        let sync_only = base.clone().expand();
        assert_eq!(sync_only.len(), 1);
        assert_eq!(sync_only[0].mode, ExecutionMode::sync());
        let both = base.modes(ExecutionMode::both()).expand();
        assert_eq!(both.len(), 2);
        assert!(both[0].name().ends_with("/sync"));
        assert!(both[1].name().ends_with("/async"));
    }

    #[test]
    fn sorting_topology_is_forced_to_line() {
        let s = Scenario::builder(AlgorithmKind::Sorting)
            .topology(TopologyFamily::Complete)
            .build();
        assert_eq!(s.topology, TopologyFamily::Line);
    }

    #[test]
    fn grid_expansion_covers_product_and_dedups_sorting() {
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum, AlgorithmKind::Sorting])
            .topologies([TopologyFamily::Ring, TopologyFamily::Complete])
            .envs([EnvModel::Static, EnvModel::Adversarial { silence: 1 }])
            .sizes([8, 12])
            .expand();
        // minimum: 2 topologies × 2 envs × 2 sizes = 8; sorting: line only
        // × 2 envs × 2 sizes = 4.
        assert_eq!(scenarios.len(), 12);
        let names: std::collections::BTreeSet<String> =
            scenarios.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 12, "names are unique");
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn grid_expansion_rejects_degenerate_sizes() {
        let _ = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([TopologyFamily::Ring])
            .envs([EnvModel::Static])
            .sizes([8, 1])
            .expand();
    }

    #[test]
    fn labels_parse_back() {
        for kind in AlgorithmKind::all() {
            assert_eq!(AlgorithmKind::parse(kind.label()), Some(*kind));
        }
        assert_eq!(TopologyFamily::parse("grid"), Some(TopologyFamily::Grid));
        assert!(EnvModel::parse("churn").is_some());
        assert!(EnvModel::parse("nonsense").is_none());
    }
}
