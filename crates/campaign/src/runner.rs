//! The parallel, streaming campaign runner.
//!
//! Determinism is the design constraint: a campaign's emitted record
//! stream must be byte-identical for a given `(scenarios, campaign seed)`
//! pair no matter how many worker threads run it — or how many process
//! shards it is split over.  Four mechanisms provide this:
//!
//! 1. every trial's seed is *derived* (SplitMix64 over the campaign seed,
//!    the scenario name and the trial index), never drawn from a shared
//!    RNG and never from the thread or shard that happens to run it;
//! 2. trials are identified by their *global position* in the flat,
//!    scenario-major/trial-minor job list; a shard owns a stable stride of
//!    positions ([`ShardSpec`]);
//! 3. workers claim positions from an atomic counter and hand finished
//!    records to an *ordered reorder window* that releases them strictly
//!    in position order, so completion order is irrelevant;
//! 4. aggregation folds incrementally into per-scenario cells keyed by
//!    name (order-independent), and emission happens through the window.
//!
//! Memory is `O(threads)`, not `O(trials)`: workers serialize each record
//! into a spill buffer as the trial finishes, the reorder window holds at
//! most `threads × window-factor` pending buffers (a worker that runs too
//! far ahead parks until the stream catches up), and released bytes go
//! straight to the sink.  Nothing per-trial survives the run unless the
//! opt-in [`Campaign::run_collect`] is used.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use selfsim_trace::{Counter, Histogram, MetricsRegistry, StageTimer, TraceEvent};

use crate::aggregate::{Aggregator, ScenarioSummary};
use crate::scenario::Scenario;
use crate::shard::ShardSpec;
use crate::trial::{run_trial, run_trial_traced, TrialRecord};

/// How many finished-but-unreleased records the reorder window may hold
/// per worker thread before fast workers park.  Bounds peak memory at
/// `O(threads)` regardless of trial count while keeping enough slack that
/// parking is rare in practice.
const REORDER_WINDOW_PER_THREAD: usize = 8;

/// Stage timers measure every `OBS_SAMPLE`-th trial (by shard-local job
/// index) rather than all of them: `Instant::now` is a syscall on kernels
/// without a vDSO clock fast path, and six reads per ~20 µs trial costs
/// several percent of throughput — sampling keeps the per-stage breakdown
/// representative while the counters and the depth histogram stay exact
/// over *every* trial.
const OBS_SAMPLE: u64 = 8;

/// Configuration of a campaign run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CampaignConfig {
    /// The master seed every per-trial seed is derived from.
    pub seed: u64,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Which stride of the job list this process runs (default: all).
    pub shard: ShardSpec,
}

/// A set of scenarios plus run configuration — the executable form of an
/// experiment campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
    config: CampaignConfig,
    observe: Option<Arc<MetricsRegistry>>,
}

/// The pre-registered metric handles the streaming pipeline updates — one
/// `Arc` clone per handle up front, so the hot loop never touches the
/// registry's name map.
struct PipelineObs {
    trial_run: Arc<StageTimer>,
    serialize: Arc<StageTimer>,
    reorder_wait: Arc<StageTimer>,
    sink_write: Arc<StageTimer>,
    reorder_depth: Arc<Histogram>,
    sink_stalls: Arc<Counter>,
    trials: Arc<Counter>,
    messages: Arc<Counter>,
    messages_dropped: Arc<Counter>,
    messages_requeued: Arc<Counter>,
    group_steps: Arc<Counter>,
    effective_group_steps: Arc<Counter>,
}

impl PipelineObs {
    fn new(registry: &MetricsRegistry) -> Self {
        PipelineObs {
            trial_run: registry.timer("pipeline/trial-run"),
            serialize: registry.timer("pipeline/serialize"),
            reorder_wait: registry.timer("pipeline/reorder-wait"),
            sink_write: registry.timer("pipeline/sink-write"),
            reorder_depth: registry.histogram("pipeline/reorder-depth"),
            sink_stalls: registry.counter("pipeline/sink-stalls"),
            trials: registry.counter("campaign/trials"),
            messages: registry.counter("sim/messages"),
            messages_dropped: registry.counter("sim/messages_dropped"),
            messages_requeued: registry.counter("sim/messages_requeued"),
            group_steps: registry.counter("sim/group_steps"),
            effective_group_steps: registry.counter("sim/effective_group_steps"),
        }
    }

    /// Folds one finished trial's scalar counters.
    fn observe_record(&self, record: &TrialRecord) {
        self.trials.incr();
        self.messages.add(record.messages as u64);
        self.messages_dropped.add(record.messages_dropped as u64);
        self.messages_requeued.add(record.messages_requeued as u64);
        self.group_steps.add(record.group_steps as u64);
        self.effective_group_steps
            .add(record.effective_group_steps as u64);
    }
}

/// What a finished campaign retains: the closed per-scenario aggregation
/// and the executed-trial count.  Per-trial records are *streamed* (to the
/// sink passed to [`Campaign::stream_to`], or dropped after aggregation by
/// [`Campaign::run`]), never accumulated here — use the opt-in
/// [`Campaign::run_collect`] when a test or small run wants them in
/// memory.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Per-scenario summaries, sorted by scenario name.
    pub summaries: Vec<ScenarioSummary>,
    /// Trials executed by this process (the shard's share of the grid).
    pub trials: u64,
}

/// The opt-in collected form: every record of this process's shard, in
/// deterministic (scenario-major, trial-minor) order, plus the
/// aggregation.  Memory is `O(trials)` by construction.
#[derive(Clone, Debug)]
pub struct CollectedResult {
    /// One record per executed trial, in global job order.
    pub records: Vec<TrialRecord>,
    /// Per-scenario summaries, sorted by scenario name.
    pub summaries: Vec<ScenarioSummary>,
}

impl Campaign {
    /// Creates a campaign over `scenarios` with default configuration.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Campaign {
            scenarios,
            config: CampaignConfig::default(),
            observe: None,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Restricts this process to one stride shard of the job list.  Seeds
    /// and record bytes are shard-independent, so the concatenation (via
    /// [`crate::merge_shards`]) of all `k` shard streams is byte-identical
    /// to an unsharded run.
    pub fn shard(mut self, shard: ShardSpec) -> Self {
        self.config.shard = shard;
        self
    }

    /// Attaches a [`MetricsRegistry`] the run will update: per-stage
    /// pipeline timers (`pipeline/trial-run`, `pipeline/serialize`,
    /// `pipeline/reorder-wait`, `pipeline/sink-write`), the
    /// `pipeline/reorder-depth` histogram and `pipeline/sink-stalls`
    /// counter, and the `sim/*` / `campaign/trials` counters folded from
    /// every finished record.  Counters and the depth histogram are exact;
    /// the stage timers sample one trial in [`OBS_SAMPLE`] to keep clock
    /// reads off the per-trial hot path.  Metrics read the run — they
    /// never perturb the records or their bytes; without a registry the
    /// run takes no clock readings at all.
    pub fn observe(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.observe = Some(registry);
        self
    }

    /// The scenarios of this campaign.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Total number of trials in the whole campaign (all shards).
    pub fn trial_count(&self) -> u64 {
        self.scenarios.iter().map(|s| s.trials).sum()
    }

    /// Number of trials this process's shard will run.
    pub fn shard_trial_count(&self) -> u64 {
        self.config.shard.size(self.trial_count())
    }

    /// The seed trial `trial` of `scenario` will run with.
    ///
    /// Mixes the campaign seed, a hash of the scenario's *seed name*
    /// ([`Scenario::seed_name`] — the cell name for sync/async cells, the
    /// matching sync cell's name for event cells) and the trial index
    /// through SplitMix64, so every trial in the campaign gets an
    /// independent, schedule- and shard-free seed, and semantically
    /// equivalent cells across runtimes draw identical streams.
    pub fn trial_seed(&self, scenario: &Scenario, trial: u64) -> u64 {
        self.seed_for(fnv1a(scenario.seed_name().as_bytes()), trial)
    }

    fn seed_for(&self, scenario_hash: u64, trial: u64) -> u64 {
        splitmix64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(scenario_hash)
                .wrapping_add(splitmix64(trial)),
        )
    }

    /// Runs this shard's trials in parallel and returns the aggregation
    /// only — records are folded and dropped, so memory stays
    /// `O(threads)` however many trials run.
    pub fn run(&self) -> CampaignResult {
        self.run_with_progress(|_, _| {})
    }

    /// Like [`Campaign::run`], with a callback `(done, shard total)`
    /// invoked after every finished trial (from worker threads; keep it
    /// cheap — see [`ProgressThrottle`] for stderr-friendly pacing).
    pub fn run_with_progress(&self, progress: impl Fn(u64, u64) + Sync) -> CampaignResult {
        self.execute::<std::io::Sink, std::io::Sink>(None, None, None, &progress)
            .expect("aggregate-only runs perform no I/O")
    }

    /// Streams this shard's records to `sink` as JSON lines in
    /// deterministic global job order, returning the aggregation.  The
    /// bytes written are exactly what [`crate::emit::write_jsonl`] would
    /// produce from the collected records — the streaming/collected
    /// equivalence — while retaining no record in memory.
    pub fn stream_to<W: Write + Send>(&self, sink: &mut W) -> std::io::Result<CampaignResult> {
        self.stream_with_progress(sink, |_, _| {})
    }

    /// Like [`Campaign::stream_to`] with a per-trial progress callback.
    pub fn stream_with_progress<W: Write + Send>(
        &self,
        sink: &mut W,
        progress: impl Fn(u64, u64) + Sync,
    ) -> std::io::Result<CampaignResult> {
        self.execute::<W, std::io::Sink>(Some(sink), None, None, &progress)
    }

    /// Like [`Campaign::stream_with_progress`], additionally streaming the
    /// per-trial structured event traces (`trial-start` … `trial-end`
    /// blocks, one JSON event per line) to `trace`.
    ///
    /// Trace blocks flow through the same ordered reorder window as the
    /// records, so the trace bytes are identical no matter how many worker
    /// threads run — and the round-robin block merge of sharded traces
    /// ([`crate::merge_trace_shards`]) reconstructs the unsharded stream
    /// exactly, extending the campaign's determinism contract to traces.
    pub fn stream_with_trace<W: Write + Send, T: Write + Send>(
        &self,
        sink: &mut W,
        trace: &mut T,
        progress: impl Fn(u64, u64) + Sync,
    ) -> std::io::Result<CampaignResult> {
        self.execute(Some(sink), Some(trace), None, &progress)
    }

    /// Opt-in collection for tests and small runs: like [`Campaign::run`]
    /// but additionally retains every record, in order, at `O(trials)`
    /// memory.
    pub fn run_collect(&self) -> CollectedResult {
        self.run_collect_with_progress(|_, _| {})
    }

    /// Like [`Campaign::run_collect`] with a per-trial progress callback.
    pub fn run_collect_with_progress(&self, progress: impl Fn(u64, u64) + Sync) -> CollectedResult {
        let mut records = Vec::new();
        let result = self
            .execute::<std::io::Sink, std::io::Sink>(None, None, Some(&mut records), &progress)
            .expect("collect-only runs perform no I/O");
        CollectedResult {
            records,
            summaries: result.summaries,
        }
    }

    /// The streaming engine behind every run mode.
    ///
    /// Workers claim shard-local job indices from an atomic counter, run
    /// the trial, fold the record into the shared aggregator, serialize it
    /// into a spill buffer (when a sink wants bytes) and hand it to the
    /// reorder window, which releases buffers to the sink strictly in job
    /// order.  A worker more than the window size ahead of the release
    /// cursor parks on a condvar until the stream catches up, bounding
    /// pending memory at `O(threads)`.
    fn execute<W: Write + Send, T: Write + Send>(
        &self,
        sink: Option<&mut W>,
        trace_sink: Option<&mut T>,
        collect: Option<&mut Vec<TrialRecord>>,
        progress: &(dyn Fn(u64, u64) + Sync),
    ) -> std::io::Result<CampaignResult> {
        // Per-scenario prefix sums: the job list itself is never
        // materialised — global position -> (scenario, trial) is a binary
        // search, so job bookkeeping is O(#scenarios), not O(#trials).
        let mut offsets: Vec<u64> = Vec::with_capacity(self.scenarios.len());
        let mut hashes: Vec<u64> = Vec::with_capacity(self.scenarios.len());
        let mut total = 0u64;
        for scenario in &self.scenarios {
            offsets.push(total);
            hashes.push(fnv1a(scenario.seed_name().as_bytes()));
            total += scenario.trials;
        }
        let shard = self.config.shard;
        let shard_total = shard.size(total);

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        }
        .min(shard_total.max(1) as usize);

        let serialize = sink.is_some();
        let tracing = trace_sink.is_some();
        let collecting = collect.is_some();
        // Aggregate-only runs have no ordered side effects, so they skip
        // the reorder window entirely.
        let ordered = serialize || tracing || collecting;
        let window = threads * REORDER_WINDOW_PER_THREAD;
        let obs = self.observe.as_deref().map(PipelineObs::new);
        let obs = obs.as_ref();

        let reorder = Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
            sink: sink.map(|w| w as &mut (dyn Write + Send)),
            trace_sink: trace_sink.map(|w| w as &mut (dyn Write + Send)),
            collect,
            obs,
            error: None,
        });
        let space = Condvar::new();
        // Workers aggregate locally and merge at the barrier (aggregation
        // is commutative), so the hot loop takes no shared lock in
        // aggregate-only mode.
        let merged = Mutex::new(Aggregator::new());
        let next_job = AtomicUsize::new(0);
        let done = AtomicU64::new(0);
        let abort = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut aggregator = Aggregator::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let local = next_job.fetch_add(1, Ordering::Relaxed) as u64;
                        if local >= shard_total {
                            break;
                        }
                        let global = shard.global_position(local);
                        let scenario_idx = offsets.partition_point(|&o| o <= global) - 1;
                        let trial = global - offsets[scenario_idx];
                        let scenario = &self.scenarios[scenario_idx];
                        let seed = self.seed_for(hashes[scenario_idx], trial);
                        let sampled = obs.is_some() && local.is_multiple_of(OBS_SAMPLE);
                        // detlint::allow(wall-clock, reason = "sampled PipelineObs trial-run timer; metrics read the run and never touch record bytes")
                        #[allow(clippy::disallowed_methods)] // sanctioned: see pragma above
                        let t0 = sampled.then(Instant::now);
                        let (record, events) = if tracing {
                            let (record, events) = run_trial_traced(scenario, trial, seed);
                            (record, Some(events))
                        } else {
                            (run_trial(scenario, trial, seed), None)
                        };
                        if let (Some(obs), Some(t0)) = (obs, t0) {
                            obs.trial_run.record(t0.elapsed());
                        }
                        if let Some(obs) = obs {
                            obs.observe_record(&record);
                        }

                        aggregator.observe(&record);

                        if ordered {
                            // The spill buffer: the record leaves the worker
                            // as bytes (and/or the collected struct), never
                            // as shared mutable state.
                            // detlint::allow(wall-clock, reason = "sampled PipelineObs serialize timer; off unless a registry is attached")
                            #[allow(clippy::disallowed_methods)] // sanctioned: see pragma above
                            let t0 = sampled.then(Instant::now);
                            let bytes = if serialize {
                                match record.to_jsonl_line() {
                                    Ok(bytes) => Some(bytes),
                                    Err(e) => {
                                        let mut state = reorder.lock().expect("reorder lock");
                                        state.error.get_or_insert(e);
                                        abort.store(true, Ordering::Relaxed);
                                        space.notify_all();
                                        break;
                                    }
                                }
                            } else {
                                None
                            };
                            let trace = match events.as_deref().map(trace_block) {
                                Some(Ok(bytes)) => Some(bytes),
                                Some(Err(e)) => {
                                    let mut state = reorder.lock().expect("reorder lock");
                                    state.error.get_or_insert(e);
                                    abort.store(true, Ordering::Relaxed);
                                    space.notify_all();
                                    break;
                                }
                                None => None,
                            };
                            if let (Some(obs), Some(t0)) = (obs, t0) {
                                obs.serialize.record(t0.elapsed());
                            }
                            let slot = Slot {
                                bytes,
                                trace,
                                record: collecting.then_some(record),
                            };
                            let mut state = reorder.lock().expect("reorder lock");
                            if local >= state.next + window as u64 && state.error.is_none() {
                                // The window is full: the sink has fallen
                                // behind this worker.
                                // detlint::allow(wall-clock, reason = "reorder-wait stall timer; stalls are rare and only timed when a registry is attached")
                                #[allow(clippy::disallowed_methods)] // sanctioned: see pragma above
                                let t0 = obs.map(|_| Instant::now());
                                if let Some(obs) = obs {
                                    obs.sink_stalls.incr();
                                }
                                while local >= state.next + window as u64 && state.error.is_none() {
                                    state = space.wait(state).expect("reorder condvar");
                                }
                                if let (Some(obs), Some(t0)) = (obs, t0) {
                                    obs.reorder_wait.record(t0.elapsed());
                                }
                            }
                            if state.error.is_some() {
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                            state.pending.insert(local, slot);
                            if let Some(obs) = obs {
                                obs.reorder_depth.record(state.pending.len() as u64);
                            }
                            if state.release().is_err() {
                                abort.store(true, Ordering::Relaxed);
                                drop(state);
                                space.notify_all();
                                break;
                            }
                            drop(state);
                            space.notify_all();
                        }

                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        progress(finished, shard_total);
                    }
                    merged.lock().expect("aggregator lock").merge(aggregator);
                });
            }
        });

        let mut state = reorder.into_inner().expect("reorder lock");
        if let Some(error) = state.error.take() {
            return Err(error);
        }
        debug_assert!(state.pending.is_empty(), "window drained at barrier");
        let aggregator = merged.into_inner().expect("aggregator lock");
        Ok(CampaignResult {
            summaries: aggregator.summaries(),
            trials: done.load(Ordering::Relaxed),
        })
    }
}

/// Serializes one trial's event block as JSONL bytes, one event per line,
/// ending with the `trial-end` line the shard merge delimits blocks by.
fn trace_block(events: &[TraceEvent]) -> std::io::Result<Vec<u8>> {
    let mut block = Vec::new();
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        block.extend_from_slice(line.as_bytes());
        block.push(b'\n');
    }
    Ok(block)
}

/// One finished trial in flight between a worker and the ordered release:
/// its serialized JSONL line (when streaming), its serialized event block
/// (when tracing) and/or the record itself (when collecting).
struct Slot {
    bytes: Option<Vec<u8>>,
    trace: Option<Vec<u8>>,
    record: Option<TrialRecord>,
}

/// The ordered reorder window: releases finished trials strictly in job
/// order regardless of completion order.
struct Reorder<'a> {
    /// The next shard-local job index to release.
    next: u64,
    /// Finished jobs ahead of `next`, bounded by the window size.
    pending: BTreeMap<u64, Slot>,
    sink: Option<&'a mut (dyn Write + Send)>,
    trace_sink: Option<&'a mut (dyn Write + Send)>,
    collect: Option<&'a mut Vec<TrialRecord>>,
    obs: Option<&'a PipelineObs>,
    error: Option<std::io::Error>,
}

impl<'a> Reorder<'a> {
    /// Releases every consecutive pending slot starting at `next`.  On a
    /// sink error, records it (for the caller) and reports failure so
    /// workers can abort.
    fn release(&mut self) -> Result<(), ()> {
        loop {
            let next = self.next;
            let Some(slot) = self.pending.remove(&next) else {
                return Ok(());
            };
            // detlint::allow(wall-clock, reason = "sampled PipelineObs sink-write timer; release order is fixed by `next` before any clock read")
            #[allow(clippy::disallowed_methods)] // sanctioned: see pragma above
            let t0 = (self.obs.is_some() && next.is_multiple_of(OBS_SAMPLE)).then(Instant::now);
            if let (Some(sink), Some(bytes)) =
                (self.trace_sink.as_deref_mut(), slot.trace.as_deref())
            {
                if let Err(e) = sink.write_all(bytes) {
                    self.error = Some(e);
                    return Err(());
                }
            }
            if let (Some(sink), Some(bytes)) = (self.sink.as_deref_mut(), slot.bytes.as_deref()) {
                if let Err(e) = sink.write_all(bytes) {
                    self.error = Some(e);
                    return Err(());
                }
            }
            if let (Some(obs), Some(t0)) = (self.obs, t0) {
                obs.sink_write.record(t0.elapsed());
            }
            if let (Some(collected), Some(record)) = (self.collect.as_deref_mut(), slot.record) {
                collected.push(record);
            }
            self.next += 1;
        }
    }
}

/// A lock-free rate limiter for progress reporting from worker threads.
///
/// [`Campaign::run_with_progress`] fires its callback once per finished
/// trial; printing every call would serialize a million-trial campaign on
/// stderr.  [`ProgressThrottle::report`] returns `true` for at most one
/// caller per interval — except for the final `done >= total` update,
/// which *always* passes (exactly once), so a run never finishes with its
/// progress line stuck short of 100%:
///
/// ```
/// use selfsim_campaign::ProgressThrottle;
/// use std::time::Duration;
///
/// let throttle = ProgressThrottle::every(Duration::from_millis(100));
/// let progress = |done: u64, total: u64| {
///     if throttle.report(done, total) {
///         eprintln!("  {done}/{total} trials");
///     }
/// };
/// progress(1, 2);
/// progress(2, 2); // the 100% line is never throttled away
/// ```
pub struct ProgressThrottle {
    start: Instant,
    interval_ms: u64,
    /// Milliseconds (since `start`) of the last update that passed;
    /// `u64::MAX` until the first.
    last: AtomicU64,
    /// One past the highest `done` that has been reported; a later update
    /// that ties a stale worker's count never passes, and the final update
    /// passes exactly once however many workers race on it.
    emitted: AtomicU64,
}

impl ProgressThrottle {
    /// A throttle that passes at most one update per `interval` (~10
    /// updates/sec at the CLI's 100 ms).
    #[allow(clippy::disallowed_methods)] // sanctioned: see pragma below
    pub fn every(interval: Duration) -> Self {
        ProgressThrottle {
            // detlint::allow(wall-clock, reason = "progress pacing only; throttle decisions gate stderr lines, never record bytes")
            start: Instant::now(),
            interval_ms: (interval.as_millis() as u64).max(1),
            last: AtomicU64::new(u64::MAX),
            emitted: AtomicU64::new(0),
        }
    }

    /// `true` when the caller should print this `(done, total)` update:
    /// rate-limited to one per interval in the steady state, but the final
    /// update (`done >= total`) always passes, exactly once.
    pub fn report(&self, done: u64, total: u64) -> bool {
        if self.emitted.load(Ordering::Relaxed) > done {
            // A higher count was already reported; this stale update
            // would move the progress line backwards.
            return false;
        }
        if done >= total || self.ready() {
            // `fetch_max` arbitrates racing reporters: exactly one caller
            // per `done` value observes `prev <= done` and wins.
            let prev = self.emitted.fetch_max(done + 1, Ordering::Relaxed);
            return prev <= done;
        }
        false
    }

    /// `true` when the caller won the right to report progress now.
    pub fn ready(&self) -> bool {
        let now = self.start.elapsed().as_millis() as u64;
        let mut last = self.last.load(Ordering::Relaxed);
        loop {
            if last != u64::MAX && now.saturating_sub(last) < self.interval_ms {
                return false;
            }
            match self
                .last
                .compare_exchange_weak(last, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(current) => last = current,
            }
        }
    }
}

/// SplitMix64 — the standard 64-bit seed mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, for hashing scenario names into the seed mix.
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xCBF2_9CE4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgorithmKind, EnvModel, ScenarioGrid, TopologyFamily};

    fn small_campaign() -> Campaign {
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum, AlgorithmKind::Maximum])
            .topologies([TopologyFamily::Ring])
            .envs([
                EnvModel::Static,
                EnvModel::RandomChurn {
                    p_edge: 0.5,
                    p_agent: 0.9,
                },
            ])
            .sizes([6])
            .trials(3)
            .max_rounds(50_000)
            .expand();
        Campaign::new(scenarios).seed(7)
    }

    #[test]
    fn runs_every_trial_once_in_order() {
        let campaign = small_campaign();
        let collected = campaign.run_collect();
        assert_eq!(collected.records.len(), campaign.trial_count() as usize);
        // Scenario-major, trial-minor ordering.
        let expected: Vec<(String, u64)> = campaign
            .scenarios()
            .iter()
            .flat_map(|s| (0..s.trials).map(move |t| (s.name(), t)))
            .collect();
        let actual: Vec<(String, u64)> = collected
            .records
            .iter()
            .map(|r| (r.scenario.clone(), r.trial))
            .collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sequential = small_campaign().threads(1).run_collect();
        let parallel = small_campaign().threads(4).run_collect();
        assert_eq!(sequential.records, parallel.records);
        assert_eq!(sequential.summaries, parallel.summaries);
    }

    #[test]
    fn streaming_collecting_and_aggregate_only_runs_agree() {
        let campaign = small_campaign().threads(4);
        let collected = campaign.run_collect();
        let mut streamed = Vec::new();
        let stream_result = campaign.stream_to(&mut streamed).expect("stream to memory");
        let aggregate_only = campaign.run();

        // Streamed bytes == collected records serialized after the fact.
        let mut emitted = Vec::new();
        crate::emit::write_jsonl(&mut emitted, &collected.records).expect("emit");
        assert_eq!(streamed, emitted);

        // All three modes agree on the aggregation.
        assert_eq!(stream_result.summaries, collected.summaries);
        assert_eq!(aggregate_only.summaries, collected.summaries);
        assert_eq!(stream_result.trials, campaign.trial_count());
        assert_eq!(aggregate_only.trials, campaign.trial_count());
    }

    #[test]
    fn reorder_window_survives_many_small_trials() {
        // More trials than the reorder window for 8 workers: fast workers
        // must park and the released stream must still be in order.
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum])
            .topologies([TopologyFamily::Ring])
            .envs([EnvModel::Static])
            .sizes([4])
            .trials(500)
            .max_rounds(10_000)
            .expand();
        let mut parallel = Vec::new();
        Campaign::new(scenarios.clone())
            .seed(3)
            .threads(8)
            .stream_to(&mut parallel)
            .expect("stream");
        let mut sequential = Vec::new();
        Campaign::new(scenarios)
            .seed(3)
            .threads(1)
            .stream_to(&mut sequential)
            .expect("stream");
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.iter().filter(|&&b| b == b'\n').count(), 500);
    }

    #[test]
    fn sharded_runs_partition_the_campaign() {
        let campaign = small_campaign();
        let full = campaign.run_collect();
        let mut reassembled: Vec<Option<TrialRecord>> = vec![None; full.records.len()];
        for index in 0..3 {
            let shard = ShardSpec::new(index, 3).expect("spec");
            let part = small_campaign().shard(shard).run_collect();
            assert_eq!(
                part.records.len() as u64,
                shard.size(campaign.trial_count())
            );
            for (local, record) in part.records.into_iter().enumerate() {
                let global = shard.global_position(local as u64) as usize;
                assert!(reassembled[global].replace(record).is_none());
            }
        }
        let reassembled: Vec<TrialRecord> = reassembled
            .into_iter()
            .map(|r| r.expect("covered"))
            .collect();
        assert_eq!(reassembled, full.records);
    }

    #[test]
    fn stream_propagates_sink_errors() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = small_campaign()
            .threads(4)
            .stream_to(&mut FailingSink)
            .expect_err("sink errors must surface");
        assert_eq!(err.to_string(), "sink full");
    }

    #[test]
    fn campaign_seed_changes_trials() {
        let a = small_campaign().seed(1).run_collect();
        let b = small_campaign().seed(2).run_collect();
        assert_ne!(
            a.records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            b.records.iter().map(|r| r.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trial_seeds_are_distinct_across_scenarios_and_trials() {
        let campaign = small_campaign();
        let mut seeds = std::collections::BTreeSet::new();
        for scenario in campaign.scenarios() {
            for trial in 0..scenario.trials {
                assert!(seeds.insert(campaign.trial_seed(scenario, trial)));
            }
        }
    }

    #[test]
    fn progress_reaches_total() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let campaign = small_campaign().threads(2);
        let max_done = AtomicU64::new(0);
        let result = campaign.run_with_progress(|done, total| {
            assert!(done <= total);
            max_done.fetch_max(done, Ordering::Relaxed);
        });
        assert_eq!(max_done.load(Ordering::Relaxed), campaign.trial_count());
        assert_eq!(result.summaries.len(), campaign.scenarios().len());
        assert_eq!(result.trials, campaign.trial_count());
    }

    #[test]
    fn trace_stream_is_thread_count_invariant() {
        let campaign = small_campaign();
        let mut records1 = Vec::new();
        let mut trace1 = Vec::new();
        campaign
            .clone()
            .threads(1)
            .stream_with_trace(&mut records1, &mut trace1, |_, _| {})
            .expect("traced stream");
        let mut records4 = Vec::new();
        let mut trace4 = Vec::new();
        campaign
            .clone()
            .threads(4)
            .stream_with_trace(&mut records4, &mut trace4, |_, _| {})
            .expect("traced stream");
        assert_eq!(trace1, trace4, "trace bytes must not depend on threads");
        assert_eq!(records1, records4);

        // Tracing must not perturb the record stream itself.
        let mut plain = Vec::new();
        campaign.stream_to(&mut plain).expect("plain stream");
        assert_eq!(records1, plain);

        // One block per trial: trial-start and trial-end lines pair up.
        let text = String::from_utf8(trace1).expect("utf8 trace");
        let starts = text
            .lines()
            .filter(|l| l.starts_with("{\"event\":\"trial-start\""))
            .count();
        let ends = text
            .lines()
            .filter(|l| l.starts_with("{\"event\":\"trial-end\""))
            .count();
        assert_eq!(starts as u64, campaign.trial_count());
        assert_eq!(ends as u64, campaign.trial_count());
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut observed = Vec::new();
        let result = small_campaign()
            .threads(4)
            .observe(Arc::clone(&registry))
            .stream_to(&mut observed)
            .expect("stream");
        let mut plain = Vec::new();
        small_campaign()
            .threads(4)
            .stream_to(&mut plain)
            .expect("stream");
        assert_eq!(observed, plain, "metrics must never perturb the bytes");

        let snapshot = registry.snapshot_json();
        assert!(snapshot.contains("\"campaign/trials\""));
        assert!(snapshot.contains("\"pipeline/trial-run\""));
        let trials = registry.counter("campaign/trials");
        assert_eq!(trials.get(), result.trials);
    }

    #[test]
    fn progress_report_always_emits_final_line() {
        // An hour-long interval: nothing but the first and final updates
        // may pass, and the final one passes exactly once.
        let throttle = ProgressThrottle::every(Duration::from_secs(3600));
        assert!(throttle.report(1, 3), "first update always passes");
        assert!(!throttle.report(2, 3), "throttled inside the interval");
        assert!(throttle.report(3, 3), "final update must not be throttled");
        assert!(!throttle.report(3, 3), "final update passes only once");
        assert!(!throttle.report(2, 3), "stale updates never pass");
    }

    #[test]
    fn progress_throttle_admits_one_update_per_interval() {
        let throttle = ProgressThrottle::every(Duration::from_secs(3600));
        assert!(throttle.ready(), "first update always passes");
        for _ in 0..1000 {
            assert!(!throttle.ready(), "within the interval nothing passes");
        }
        let instant = ProgressThrottle::every(Duration::from_millis(1));
        assert!(instant.ready());
        std::thread::sleep(Duration::from_millis(5));
        assert!(instant.ready(), "after the interval the next call passes");
    }
}
