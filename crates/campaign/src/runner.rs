//! The parallel campaign runner.
//!
//! Determinism is the design constraint: a campaign's output must be
//! byte-identical for a given `(scenarios, campaign seed)` pair no matter
//! how many worker threads run it.  Three mechanisms provide this:
//!
//! 1. every trial's seed is *derived* (SplitMix64 over the campaign seed,
//!    the scenario name and the trial index), never drawn from a shared
//!    RNG;
//! 2. workers claim trials from an atomic counter but write results into
//!    the trial's own pre-allocated slot, so completion order is
//!    irrelevant;
//! 3. aggregation and emission happen after the barrier, in trial order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::aggregate::{Aggregator, ScenarioSummary};
use crate::scenario::Scenario;
use crate::trial::{run_trial, TrialRecord};

/// Configuration of a campaign run.
#[derive(Clone, Debug, Default)]
pub struct CampaignConfig {
    /// The master seed every per-trial seed is derived from.
    pub seed: u64,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
}

/// A set of scenarios plus run configuration — the executable form of an
/// experiment campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
    config: CampaignConfig,
}

/// Everything a finished campaign produced: per-trial records in
/// deterministic (scenario-major, trial-minor) order plus the closed
/// aggregation.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// One record per trial, in scenario-major order.
    pub records: Vec<TrialRecord>,
    /// Per-scenario summaries, sorted by scenario name.
    pub summaries: Vec<ScenarioSummary>,
}

impl Campaign {
    /// Creates a campaign over `scenarios` with default configuration.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Campaign {
            scenarios,
            config: CampaignConfig::default(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// The scenarios of this campaign.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Total number of trials the campaign will run.
    pub fn trial_count(&self) -> u64 {
        self.scenarios.iter().map(|s| s.trials).sum()
    }

    /// The seed trial `trial` of `scenario` will run with.
    ///
    /// Mixes the campaign seed, a hash of the scenario name and the trial
    /// index through SplitMix64, so every trial in the campaign gets an
    /// independent, schedule-free seed.
    pub fn trial_seed(&self, scenario: &Scenario, trial: u64) -> u64 {
        self.seed_for(fnv1a(scenario.name().as_bytes()), trial)
    }

    fn seed_for(&self, scenario_hash: u64, trial: u64) -> u64 {
        splitmix64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(scenario_hash)
                .wrapping_add(splitmix64(trial)),
        )
    }

    /// Runs every trial of every scenario, in parallel, and returns the
    /// deterministically ordered results.
    pub fn run(&self) -> CampaignResult {
        self.run_with_progress(|_, _| {})
    }

    /// Like [`Campaign::run`], with a callback `(done, total)` invoked after
    /// every finished trial (from worker threads; keep it cheap).
    pub fn run_with_progress(&self, progress: impl Fn(u64, u64) + Sync) -> CampaignResult {
        // The flat, deterministic job list: scenario-major, trial-minor.
        let jobs: Vec<(usize, u64, u64)> = self
            .scenarios
            .iter()
            .enumerate()
            .flat_map(|(idx, scenario)| {
                // Hash the scenario name once per scenario, not per trial.
                let scenario_hash = fnv1a(scenario.name().as_bytes());
                (0..scenario.trials)
                    .map(move |trial| (idx, trial, self.seed_for(scenario_hash, trial)))
            })
            .collect();
        let total = jobs.len() as u64;

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        }
        .min(jobs.len().max(1));

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<TrialRecord>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(scenario_idx, trial, seed)) = jobs.get(i) else {
                        break;
                    };
                    let record = run_trial(&self.scenarios[scenario_idx], trial, seed);
                    *slots[i].lock().expect("slot lock") = Some(record);
                    let finished = done.fetch_add(1, Ordering::Relaxed) as u64 + 1;
                    progress(finished, total);
                });
            }
        });

        let records: Vec<TrialRecord> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every claimed job writes its slot")
            })
            .collect();

        let mut aggregator = Aggregator::new();
        for record in &records {
            aggregator.observe(record);
        }
        CampaignResult {
            summaries: aggregator.summaries(),
            records,
        }
    }
}

/// SplitMix64 — the standard 64-bit seed mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, for hashing scenario names into the seed mix.
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xCBF2_9CE4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgorithmKind, EnvModel, ScenarioGrid, TopologyFamily};

    fn small_campaign() -> Campaign {
        let scenarios = ScenarioGrid::new()
            .algorithms([AlgorithmKind::Minimum, AlgorithmKind::Maximum])
            .topologies([TopologyFamily::Ring])
            .envs([
                EnvModel::Static,
                EnvModel::RandomChurn {
                    p_edge: 0.5,
                    p_agent: 0.9,
                },
            ])
            .sizes([6])
            .trials(3)
            .max_rounds(50_000)
            .expand();
        Campaign::new(scenarios).seed(7)
    }

    #[test]
    fn runs_every_trial_once_in_order() {
        let campaign = small_campaign();
        let result = campaign.run();
        assert_eq!(result.records.len(), campaign.trial_count() as usize);
        // Scenario-major, trial-minor ordering.
        let expected: Vec<(String, u64)> = campaign
            .scenarios()
            .iter()
            .flat_map(|s| (0..s.trials).map(move |t| (s.name(), t)))
            .collect();
        let actual: Vec<(String, u64)> = result
            .records
            .iter()
            .map(|r| (r.scenario.clone(), r.trial))
            .collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sequential = small_campaign().threads(1).run();
        let parallel = small_campaign().threads(4).run();
        assert_eq!(sequential.records, parallel.records);
        assert_eq!(sequential.summaries, parallel.summaries);
    }

    #[test]
    fn campaign_seed_changes_trials() {
        let a = small_campaign().seed(1).run();
        let b = small_campaign().seed(2).run();
        assert_ne!(
            a.records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            b.records.iter().map(|r| r.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trial_seeds_are_distinct_across_scenarios_and_trials() {
        let campaign = small_campaign();
        let mut seeds = std::collections::BTreeSet::new();
        for scenario in campaign.scenarios() {
            for trial in 0..scenario.trials {
                assert!(seeds.insert(campaign.trial_seed(scenario, trial)));
            }
        }
    }

    #[test]
    fn progress_reaches_total() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let campaign = small_campaign().threads(2);
        let max_done = AtomicU64::new(0);
        let result = campaign.run_with_progress(|done, total| {
            assert!(done <= total);
            max_done.fetch_max(done, Ordering::Relaxed);
        });
        assert_eq!(max_done.load(Ordering::Relaxed), campaign.trial_count());
        assert_eq!(result.summaries.len(), campaign.scenarios().len());
    }
}
