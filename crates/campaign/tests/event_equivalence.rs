//! Cross-runtime equivalence: on cells where the event-driven runtime must
//! agree with the round-based one — static environments, cooldown-free
//! synchronous semantics — the emitted records are identical except for the
//! mode coordinate and the event-runtime's own columns.  This is the Rust
//! face of the CI `event-equivalence` gate (which `cmp`s the normalised
//! JSONL bytes the same way).

use selfsim_campaign::{
    merge_shards, Campaign, EnvModel, ExecutionMode, Registry, ScenarioGrid, ShardSpec,
    TopologyFamily, TrialRecord,
};

/// A grid over the cells the equivalence claim covers: both agreeing
/// algorithm shapes (value-adopting and position-permuting), two topology
/// families, a static environment, no cooldown.
fn grid(mode: ExecutionMode) -> Campaign {
    let registry = Registry::builtin();
    let algorithms = ["minimum", "sum", "sorting"]
        .iter()
        .map(|name| registry.get(name).expect("builtin algorithm"))
        .collect::<Vec<_>>();
    let scenarios = ScenarioGrid::new()
        .algorithms(algorithms)
        .topologies([TopologyFamily::Ring, TopologyFamily::Complete])
        .envs([EnvModel::Static])
        .modes([mode])
        .sizes([8])
        .trials(3)
        .max_rounds(20_000)
        .expand();
    Campaign::new(scenarios).seed(42).threads(2)
}

fn records(campaign: &Campaign) -> Vec<TrialRecord> {
    let mut bytes = Vec::new();
    campaign.stream_to(&mut bytes).expect("stream to memory");
    String::from_utf8(bytes)
        .expect("JSONL is UTF-8")
        .lines()
        .map(|line| TrialRecord::from_jsonl_line(line).expect("record parses"))
        .collect()
}

#[test]
fn event_records_equal_sync_records_after_mode_normalisation() {
    let sync = records(&grid(ExecutionMode::sync()));
    let event = records(&grid(ExecutionMode::event()));
    assert_eq!(sync.len(), event.len());
    assert!(!sync.is_empty());
    for (s, e) in sync.iter().zip(&event) {
        assert_eq!(e.mode, "event");
        assert_eq!(e.scenario, s.scenario.replace("/sync", "/event"));
        // The seed anchoring: the event cell drew the sync cell's stream.
        assert_eq!(e.seed, s.seed, "{}", s.scenario);
        assert!(e.events_processed > 0, "{}", e.scenario);
        assert!(e.peak_queue_depth > 0, "{}", e.scenario);
        let mut normalised = e.clone();
        normalised.scenario = s.scenario.clone();
        normalised.mode = s.mode.clone();
        normalised.events_processed = 0;
        normalised.peak_queue_depth = 0;
        assert_eq!(&normalised, s, "{}", s.scenario);
    }
}

#[test]
fn event_mode_streams_are_thread_and_shard_invariant() {
    let reference = {
        let mut bytes = Vec::new();
        grid(ExecutionMode::event())
            .threads(1)
            .stream_to(&mut bytes)
            .expect("stream to memory");
        bytes
    };
    for threads in [2, 4] {
        let mut bytes = Vec::new();
        grid(ExecutionMode::event())
            .threads(threads)
            .stream_to(&mut bytes)
            .expect("stream to memory");
        assert_eq!(bytes, reference, "threads={threads}");
    }
    let mut shards: Vec<Vec<u8>> = Vec::new();
    for index in 0..3 {
        let mut bytes = Vec::new();
        grid(ExecutionMode::event())
            .shard(ShardSpec::new(index, 3).expect("valid shard"))
            .stream_to(&mut bytes)
            .expect("stream to memory");
        shards.push(bytes);
    }
    let mut merged = Vec::new();
    let mut readers: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
    merge_shards(&mut readers, |line| {
        merged.extend_from_slice(line);
        Ok(())
    })
    .expect("shards merge");
    assert_eq!(merged, reference);
}

#[test]
fn a_hundred_thousand_agent_complete_cell_is_sweepable() {
    let registry = Registry::builtin();
    let scenarios = ScenarioGrid::new()
        .algorithms([registry.get("minimum").expect("builtin algorithm")])
        .topologies([TopologyFamily::Complete])
        .envs([EnvModel::Static])
        .modes([ExecutionMode::event()])
        .sizes([100_000])
        .trials(1)
        .max_rounds(100)
        .expand();
    let collected = Campaign::new(scenarios).seed(7).threads(1).run_collect();
    let record = collected.records.first().expect("one record");
    assert_eq!(record.agents, 100_000);
    assert_eq!(record.scenario, "minimum/complete/static/n=100000/event");
    assert!(record.converged, "one round suffices on a complete graph");
    assert_eq!(record.rounds_to_convergence, Some(1));
    assert!(record.events_processed > 0);
}
