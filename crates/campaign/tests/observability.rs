//! Integration contracts of the observability layer:
//!
//! * traced campaigns are deterministic — the event stream is
//!   byte-identical across thread counts, and the block-wise merge of
//!   sharded trace streams reconstructs the unsharded bytes exactly;
//! * `messages_requeued` is a first-class record column — structurally
//!   zero under `valid-at-delivery`/`valid-at-send` (and absent from the
//!   serialized line, keeping requeue-free cells byte-stable), non-zero
//!   under `any-overlap` in a fragmenting environment;
//! * every emitted trace line round-trips through the event
//!   deserializer, so the stream is replayable, not just greppable.

use std::io::BufReader;

use selfsim_campaign::{
    merge_shards, merge_trace_shards, AlgorithmRef, Campaign, DeliveryRule, EnvModel,
    ExecutionMode, Registry, ScenarioGrid, ShardSpec, TopologyFamily,
};
use selfsim_trace::TraceEvent;
use serde::Deserialize;

/// A grid crossing the sync simulator, the async simulator (all three
/// delivery rules) and both baselines over a fragmenting environment —
/// every event-emitting code path.
fn traced_campaign() -> Campaign {
    let registry = Registry::builtin();
    let algorithms: Vec<AlgorithmRef> = ["minimum", "snapshot", "flooding"]
        .iter()
        .map(|name| registry.get(name).expect("builtin algorithm"))
        .collect();
    let scenarios = ScenarioGrid::new()
        .algorithms(algorithms)
        .topologies([TopologyFamily::Ring])
        .envs([
            EnvModel::Static,
            EnvModel::PeriodicPartition {
                blocks: 2,
                period: 8,
            },
        ])
        .modes([
            ExecutionMode::sync(),
            ExecutionMode::asynchronous(),
            ExecutionMode::asynchronous_with(DeliveryRule::AnyOverlap { grace: 4 }),
        ])
        .sizes([6])
        .trials(1)
        // A tight tick budget: non-converging async cells would otherwise
        // emit tens of thousands of per-tick events each, and this test
        // cares about stream structure, not convergence.
        .max_rounds(1_500)
        .expand();
    Campaign::new(scenarios).seed(1234)
}

fn stream_traced(campaign: Campaign) -> (Vec<u8>, Vec<u8>) {
    let mut records = Vec::new();
    let mut trace = Vec::new();
    campaign
        .stream_with_trace(&mut records, &mut trace, |_, _| {})
        .expect("traced stream to memory");
    (records, trace)
}

#[test]
fn trace_stream_is_identical_across_threads_and_shard_merges() {
    let (records1, trace1) = stream_traced(traced_campaign().threads(1));
    let (records4, trace4) = stream_traced(traced_campaign().threads(4));
    assert_eq!(records1, records4, "record bytes depend on thread count");
    assert_eq!(trace1, trace4, "trace bytes depend on thread count");

    // Run the same campaign as two stride shards and merge both streams.
    let mut record_shards = Vec::new();
    let mut trace_shards = Vec::new();
    for index in 0..2 {
        let shard = ShardSpec::new(index, 2).expect("shard spec");
        let (records, trace) = stream_traced(traced_campaign().threads(2).shard(shard));
        record_shards.push(records);
        trace_shards.push(trace);
    }

    let mut merged_records = Vec::new();
    let mut readers: Vec<BufReader<&[u8]>> = record_shards
        .iter()
        .map(|bytes| BufReader::new(bytes.as_slice()))
        .collect();
    merge_shards(&mut readers, |line| {
        merged_records.extend_from_slice(line);
        Ok(())
    })
    .expect("record merge");
    assert_eq!(merged_records, records1, "sharded record merge diverged");

    let mut merged_trace = Vec::new();
    let mut readers: Vec<BufReader<&[u8]>> = trace_shards
        .iter()
        .map(|bytes| BufReader::new(bytes.as_slice()))
        .collect();
    let blocks = merge_trace_shards(&mut readers, |line| {
        merged_trace.extend_from_slice(line);
        Ok(())
    })
    .expect("trace merge");
    assert_eq!(merged_trace, trace1, "sharded trace merge diverged");
    assert_eq!(
        blocks,
        traced_campaign().trial_count(),
        "one block per trial"
    );
}

#[test]
fn every_trace_line_round_trips_through_the_event_deserializer() {
    let (_, trace) = stream_traced(traced_campaign().threads(2));
    let text = String::from_utf8(trace).expect("trace is utf8");
    let mut lines = 0usize;
    let mut in_block = false;
    for line in text.lines() {
        let value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"));
        let event = TraceEvent::from_value(&value)
            .unwrap_or_else(|e| panic!("unknown trace event: {}\n{line}", e.0));
        // Blocks are well-formed: start opens, end closes, nothing leaks
        // outside a block.
        match event {
            TraceEvent::TrialStart { .. } => {
                assert!(!in_block, "nested trial-start");
                in_block = true;
            }
            TraceEvent::TrialEnd { .. } => {
                assert!(in_block, "trial-end without trial-start");
                in_block = false;
            }
            _ => assert!(in_block, "event outside a trial block: {line}"),
        }
        lines += 1;
    }
    assert!(!in_block, "trace ends mid-block");
    assert!(lines > 0, "trace stream is empty");
}

#[test]
fn requeues_are_counted_under_any_overlap_and_zero_otherwise() {
    let registry = Registry::builtin();
    let scenarios = ScenarioGrid::new()
        .algorithms([registry.get("minimum").expect("builtin")])
        .topologies([TopologyFamily::Ring])
        .envs([EnvModel::PeriodicPartition {
            blocks: 2,
            period: 8,
        }])
        .modes([
            ExecutionMode::asynchronous(),
            ExecutionMode::asynchronous_with(DeliveryRule::ValidAtSend),
            ExecutionMode::asynchronous_with(DeliveryRule::AnyOverlap { grace: 6 }),
        ])
        .sizes([8])
        .trials(4)
        .max_rounds(20_000)
        .expand();
    let collected = Campaign::new(scenarios).seed(7).run_collect();

    let mut any_overlap_requeues = 0usize;
    for record in &collected.records {
        if record.mode.contains("any-overlap") {
            any_overlap_requeues += record.messages_requeued;
        } else {
            assert_eq!(
                record.messages_requeued, 0,
                "{}: requeues must be structurally zero under {}",
                record.scenario, record.mode
            );
            // And the column stays *absent* from requeue-free lines, so
            // pre-observability streams remain byte-identical.
            let line = record.to_jsonl_line().expect("serialize");
            assert!(
                !String::from_utf8(line)
                    .expect("utf8")
                    .contains("messages_requeued"),
                "requeue-free record must omit the messages_requeued field"
            );
        }
    }
    assert!(
        any_overlap_requeues > 0,
        "any-overlap over a periodic partition must requeue at least once"
    );

    // The aggregated summary exposes the same column.
    let overlap_summary = collected
        .summaries
        .iter()
        .find(|s| s.mode.contains("any-overlap"))
        .expect("any-overlap cell summarised");
    assert!(overlap_summary.messages_requeued.mean > 0.0);
}
