//! Flat CSR (compressed sparse row) adjacency for a [`Topology`].
//!
//! The connectivity hot path (incremental group maintenance, see
//! [`GroupIndex`](crate::GroupIndex)) addresses edges by a dense integer id
//! and walks neighbourhoods through two flat arrays instead of chasing
//! `BTreeMap`/`BTreeSet` nodes.  A [`Csr`] is built once per topology (cached
//! behind the topology's `OnceLock` and shared via `Arc`), so repeated
//! delta applications pay only for the *change*, never for rebuilding the
//! adjacency.
//!
//! Symbolic complete topologies keep their closed forms everywhere else in
//! this crate; a CSR is only ever built when a caller genuinely needs
//! per-edge addressing (the same boundary at which the old code materialised
//! the clique into an `EnvState`).

use crate::topology::{at, at_mut};
use crate::{Edge, Topology};

/// Flat adjacency of a topology: `xadj`/`adj` row pointers plus a parallel
/// array mapping each adjacency entry to its dense edge id.
///
/// Edge ids are assigned in ascending [`Edge`] order (the iteration order of
/// the topology's sorted edge set), so `edges[id]` recovers the edge and a
/// binary search recovers the id.
#[derive(Debug)]
pub struct Csr {
    n: usize,
    /// Row pointers, length `n + 1`.
    xadj: Vec<u32>,
    /// Neighbour agent indices; each undirected edge appears twice.
    adj: Vec<u32>,
    /// Dense edge id of each adjacency entry, parallel to `adj`.
    adj_eid: Vec<u32>,
    /// Edge id → edge, sorted ascending.
    edges: Vec<Edge>,
}

impl Csr {
    /// Builds the CSR adjacency of `topology`.  A symbolic complete topology
    /// is materialised first — callers that can stay symbolic should not
    /// build a CSR at all.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.agent_count();
        let edges: Vec<Edge> = topology.edges().iter().copied().collect();
        let mut xadj = vec![0u32; n + 1];
        for e in &edges {
            *at_mut(&mut xadj, e.lo().index() + 1) += 1;
            *at_mut(&mut xadj, e.hi().index() + 1) += 1;
        }
        for i in 1..=n {
            *at_mut(&mut xadj, i) += at(&xadj, i - 1);
        }
        let total = at(&xadj, n) as usize;
        let mut cursor: Vec<u32> = xadj.iter().copied().take(n).collect();
        let mut adj = vec![0u32; total];
        let mut adj_eid = vec![0u32; total];
        for (eid, e) in edges.iter().enumerate() {
            let (lo, hi) = (e.lo().index(), e.hi().index());
            for (src, dst) in [(lo, hi), (hi, lo)] {
                let c = at_mut(&mut cursor, src);
                *at_mut(&mut adj, *c as usize) = dst as u32;
                *at_mut(&mut adj_eid, *c as usize) = eid as u32;
                *c += 1;
            }
        }
        Csr {
            n,
            xadj,
            adj,
            adj_eid,
            edges,
        }
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge with dense id `id`.
    pub fn edge(&self, id: u32) -> Edge {
        at(&self.edges, id as usize)
    }

    /// All edges in dense-id (ascending) order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The dense id of `edge`, or `None` if it is not in the topology.
    pub fn edge_id(&self, edge: &Edge) -> Option<u32> {
        self.edges.binary_search(edge).ok().map(|i| i as u32)
    }

    /// Degree of agent `a` in the topology.
    pub fn degree(&self, a: usize) -> usize {
        (at(&self.xadj, a + 1) - at(&self.xadj, a)) as usize
    }

    /// Iterates the neighbours of agent `a` as `(neighbour index, edge id)`
    /// pairs.
    pub fn neighbors(&self, a: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = at(&self.xadj, a) as usize;
        let hi = at(&self.xadj, a + 1) as usize;
        let nbrs = self.adj.get(lo..hi).expect("CSR row in range");
        let eids = self.adj_eid.get(lo..hi).expect("CSR row in range");
        nbrs.iter().copied().zip(eids.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgentId;

    #[test]
    fn csr_matches_topology_adjacency() {
        let topo = Topology::from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let csr = Csr::new(&topo);
        assert_eq!(csr.agent_count(), 5);
        assert_eq!(csr.edge_count(), 4);
        for a in 0..5 {
            let mut nbrs: Vec<AgentId> =
                csr.neighbors(a).map(|(b, _)| AgentId(b as usize)).collect();
            nbrs.sort();
            assert_eq!(nbrs, topo.neighbors(AgentId(a)), "agent {a}");
        }
        // Edge ids round-trip and the eid annotation agrees with `edge()`.
        for (eid, e) in csr.edges().iter().enumerate() {
            assert_eq!(csr.edge_id(e), Some(eid as u32));
            assert_eq!(csr.edge(eid as u32), *e);
        }
        for (b, eid) in csr.neighbors(0) {
            let e = csr.edge(eid);
            assert!(e.touches(AgentId(0)));
            assert!(e.touches(AgentId(b as usize)));
        }
        assert_eq!(
            csr.edge_id(&Edge::new(AgentId(2), AgentId(3))),
            None,
            "absent edge has no id"
        );
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(2), 1);
    }

    #[test]
    fn csr_of_complete_topology_materialises() {
        let csr = Csr::new(&Topology::complete(4));
        assert_eq!(csr.edge_count(), 6);
        assert_eq!(csr.degree(0), 3);
    }
}
