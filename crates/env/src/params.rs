//! The shared `name(k=v,k2=v2)` label grammar.
//!
//! Every parameterised dimension of a campaign grid — environment models,
//! topology families, execution modes, delivery rules — emits its cell
//! identity as a label of this shape (`churn(e=0.5,a=0.9)`,
//! `random(p=0.15)`, `async(i=0.5,l=3,d=0,dv=any-overlap(g=4))`).  This
//! module is the one parser for that grammar, so the *round-trip law*
//! (`parse(label(x)) == x`) holds by construction wherever a label lands —
//! a JSONL record's `environment` column can be fed straight back to
//! `--envs` to re-run exactly that cell.
//!
//! The grammar:
//!
//! ```text
//! label  := name | name "(" pairs ")"
//! pairs  := pair ("," pair)*
//! pair   := key "=" value        // value may itself be a label
//! ```
//!
//! Values are split on commas at parenthesis depth zero, so nested labels
//! (`dv=any-overlap(g=4)`) parse as one value.  [`Params`] hands the pairs
//! to a consumer with *named-field* errors — unknown keys, duplicate keys,
//! unparseable numbers and out-of-range probabilities all name the
//! offending parameter, in the [`AsyncConfig::validate`] style.
//!
//! [`AsyncConfig::validate`]: https://docs.rs/selfsim-runtime

use std::fmt::Display;
use std::str::FromStr;

/// The parsed parameter list of one label: `(key, value)` pairs in source
/// order, consumed by the `take_*` methods and closed out by
/// [`Params::finish`], which rejects whatever was not consumed (unknown
/// keys).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Params {
    /// The label's name part, kept for error messages.
    context: String,
    pairs: Vec<(String, String)>,
}

/// Splits a label into its name and its [`Params`].
///
/// A bare `name` yields empty params; `name(...)` must close its
/// parenthesis and contain `key=value` pairs.  Duplicate keys are rejected
/// here, once, for every consumer.
///
/// ```
/// use selfsim_env::params::parse_label;
///
/// let (name, params) = parse_label("churn(e=0.5,a=0.9)").expect("well-formed label");
/// assert_eq!(name, "churn");
/// assert!(!params.is_empty());
/// let (name, params) = parse_label("static").expect("well-formed label");
/// assert_eq!(name, "static");
/// assert!(params.is_empty());
/// ```
pub fn parse_label(label: &str) -> Result<(&str, Params), String> {
    let label = label.trim();
    let Some(open) = label.find('(') else {
        if label.contains(')') {
            return Err(format!("malformed label `{label}`: `)` without `(`"));
        }
        if label.is_empty() {
            return Err("empty label".into());
        }
        return Ok((label, Params::bare(label)));
    };
    let name = &label[..open];
    if name.is_empty() {
        return Err(format!(
            "malformed label `{label}`: missing name before `(`"
        ));
    }
    let Some(inner) = label[open + 1..].strip_suffix(')') else {
        return Err(format!("malformed label `{label}`: missing closing `)`"));
    };
    let mut params = Params::bare(name);
    for pair in split_top_level(inner) {
        let pair = pair.trim();
        if pair.is_empty() {
            return Err(format!("malformed label `{label}`: empty parameter"));
        }
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!(
                "malformed label `{label}`: parameter `{pair}` is not `key=value`"
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() || value.is_empty() {
            return Err(format!(
                "malformed label `{label}`: parameter `{pair}` is not `key=value`"
            ));
        }
        if params.pairs.iter().any(|(k, _)| k == key) {
            return Err(format!(
                "malformed label `{label}`: duplicate parameter `{key}`"
            ));
        }
        params.pairs.push((key.to_string(), value.to_string()));
    }
    Ok((name, params))
}

/// Splits `s` on commas at parenthesis depth zero, so a value that is
/// itself a parameterised label (`dv=any-overlap(g=4)`) stays whole —
/// also what comma-separated *lists of labels* must split with
/// (`churn(e=0.3,a=0.8),static` is two labels, not three):
///
/// ```
/// use selfsim_env::params::split_top_level;
///
/// assert_eq!(
///     split_top_level("churn(e=0.3,a=0.8),static"),
///     vec!["churn(e=0.3,a=0.8)", "static"],
/// );
/// ```
pub fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s.is_empty() || start > 0 {
        out.push(&s[start..]);
    }
    out
}

impl Params {
    /// Empty params under the given context name (used in error messages).
    pub fn bare(context: &str) -> Self {
        Params {
            context: context.to_string(),
            pairs: Vec::new(),
        }
    }

    /// `true` when no parameters were given (a bare label).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Takes the raw string value of `key`, if present.
    pub fn take_str(&mut self, key: &str) -> Option<String> {
        let index = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(index).1)
    }

    /// Takes and parses the value of `key` as a `T`, naming the parameter
    /// on a parse failure.  Absent keys yield `Ok(None)` so callers keep
    /// their defaults.
    pub fn take<T: FromStr>(&mut self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: Display,
    {
        let Some(value) = self.take_str(key) else {
            return Ok(None);
        };
        value.parse::<T>().map(Some).map_err(|e| {
            format!(
                "`{}`: parameter `{key}` has malformed value `{value}`: {e}",
                self.context
            )
        })
    }

    /// Like [`Params::take`] for a probability: the value must parse as a
    /// float *and* lie in `[0, 1]`, with the field named either way.
    pub fn take_probability(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.take::<f64>(key)? {
            None => Ok(None),
            Some(p) if (0.0..=1.0).contains(&p) => Ok(Some(p)),
            Some(p) => Err(format!(
                "`{}`: parameter `{key}` must be a probability in [0, 1], got {p}",
                self.context
            )),
        }
    }

    /// Like [`Params::take`] for a positive integer (zero rejected with
    /// the field named).
    pub fn take_positive(&mut self, key: &str) -> Result<Option<usize>, String> {
        match self.take::<usize>(key)? {
            Some(0) => Err(format!(
                "`{}`: parameter `{key}` must be at least 1",
                self.context
            )),
            other => Ok(other),
        }
    }

    /// Closes out consumption: errors if any parameter was not taken,
    /// naming the unknown keys and the keys the consumer understands.
    pub fn finish(self, known: &[&str]) -> Result<(), String> {
        if self.pairs.is_empty() {
            return Ok(());
        }
        let unknown: Vec<&str> = self.pairs.iter().map(|(k, _)| k.as_str()).collect();
        Err(format!(
            "`{}`: unknown parameter{} {} (expected {})",
            self.context,
            if unknown.len() > 1 { "s" } else { "" },
            unknown.join(", "),
            if known.is_empty() {
                "no parameters".to_string()
            } else {
                known.join(", ")
            },
        ))
    }
}

/// Validates that `value` is a probability, naming `field` on failure —
/// the construction-time counterpart of [`Params::take_probability`],
/// shared by the environment constructors.
pub fn validate_probability(field: &str, value: f64) -> Result<f64, String> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(format!(
            "{field} must be a probability in [0, 1], got {value}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_labels_have_no_params() {
        let (name, params) = parse_label("static").expect("bare label parses");
        assert_eq!(name, "static");
        assert!(params.is_empty());
        params.finish(&[]).expect("no params to reject");
    }

    #[test]
    fn parameterised_labels_split_into_pairs() {
        let (name, mut params) = parse_label("churn(e=0.5,a=0.9)").expect("well-formed label");
        assert_eq!(name, "churn");
        assert_eq!(
            params.take_probability("e").expect("0.5 is a probability"),
            Some(0.5)
        );
        assert_eq!(
            params.take_probability("a").expect("0.9 is a probability"),
            Some(0.9)
        );
        params.finish(&["e", "a"]).expect("both keys were taken");
    }

    #[test]
    fn nested_labels_stay_whole() {
        let (name, mut params) =
            parse_label("async(i=0.5,l=3,d=0,dv=any-overlap(g=4))").expect("well-formed label");
        assert_eq!(name, "async");
        assert_eq!(params.take::<f64>("i").expect("0.5 is an f64"), Some(0.5));
        assert_eq!(params.take::<usize>("l").expect("3 is a usize"), Some(3));
        assert_eq!(params.take::<f64>("d").expect("0 is an f64"), Some(0.0));
        assert_eq!(params.take_str("dv"), Some("any-overlap(g=4)".into()));
        params
            .finish(&["i", "l", "d", "dv"])
            .expect("all keys were taken");
    }

    #[test]
    fn malformed_labels_are_rejected_with_the_shape_named() {
        for (label, needle) in [
            ("churn(e=0.5", "missing closing"),
            ("churn(e)", "not `key=value`"),
            ("churn(=0.5)", "not `key=value`"),
            ("churn(e=)", "not `key=value`"),
            ("(e=1)", "missing name"),
            ("churn)", "`)` without `(`"),
            ("churn(e=1,e=2)", "duplicate parameter `e`"),
            ("churn(,)", "empty parameter"),
            ("", "empty label"),
        ] {
            let err = parse_label(label).unwrap_err();
            assert!(err.contains(needle), "{label}: {err}");
        }
    }

    #[test]
    fn take_names_the_field_on_bad_values() {
        let (_, mut params) =
            parse_label("churn(e=banana)").expect("the label itself is well-formed");
        let err = params.take_probability("e").unwrap_err();
        assert!(err.contains("`churn`"), "{err}");
        assert!(err.contains("`e`"), "{err}");
        assert!(err.contains("banana"), "{err}");

        let (_, mut params) = parse_label("churn(e=1.5)").expect("the label itself is well-formed");
        let err = params.take_probability("e").unwrap_err();
        assert!(err.contains("probability in [0, 1]"), "{err}");
        assert!(err.contains("1.5"), "{err}");

        let (_, mut params) =
            parse_label("partition(b=0)").expect("the label itself is well-formed");
        let err = params.take_positive("b").unwrap_err();
        assert!(err.contains("`b` must be at least 1"), "{err}");
    }

    #[test]
    fn finish_rejects_unknown_keys_and_lists_the_known_ones() {
        let (_, mut params) = parse_label("churn(e=0.5,q=1)").expect("well-formed label");
        let _ = params.take_probability("e").expect("0.5 is a probability");
        let err = params.finish(&["e", "a"]).unwrap_err();
        assert!(err.contains("unknown parameter q"), "{err}");
        assert!(err.contains("expected e, a"), "{err}");
    }

    #[test]
    fn validate_probability_names_the_field() {
        assert_eq!(validate_probability("p_edge", 0.5), Ok(0.5));
        let err = validate_probability("p_edge", -0.1).unwrap_err();
        assert!(err.contains("p_edge"), "{err}");
        assert!(err.contains("-0.1"), "{err}");
    }

    #[test]
    fn float_display_round_trips_through_the_grammar() {
        // Rust's shortest-round-trip float formatting is what makes the
        // label round-trip law hold for probability parameters.
        for p in [0.0, 0.1, 0.3, 1.0, 0.123_456_789, f64::MIN_POSITIVE] {
            let label = format!("churn(e={p})");
            let (_, mut params) = parse_label(&label).expect("formatted label parses");
            assert_eq!(
                params.take::<f64>("e").expect("round-trip f64"),
                Some(p),
                "{label}"
            );
        }
    }
}
