//! Environment processes: generators of environment-state sequences.
//!
//! The paper places *no* constraints on individual environment transitions;
//! only the fairness assumption `□◇Q` restricts infinite behaviours.  Each
//! implementation below is one point in that design space, from a fully
//! benign static network to a minimally fair adversary.  All of them are
//! deterministic given the caller-supplied RNG, so simulations are
//! reproducible.

use std::collections::BTreeSet;

use rand::Rng;

use crate::{AgentId, Edge, EnvState, Topology};

/// An incremental connectivity update: the edges and agents whose enabled
/// status flipped since the previous environment state.
///
/// Produced by [`Environment::step_delta`] and consumed by
/// [`EnvState::apply_changes`]; the lists are disjoint (an edge is either
/// up or down, never both) and may be in any order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnvChanges {
    /// Edges that became available.
    pub edges_up: Vec<Edge>,
    /// Edges that became unavailable.
    pub edges_down: Vec<Edge>,
    /// Agents that became enabled.
    pub agents_up: Vec<AgentId>,
    /// Agents that became disabled.
    pub agents_down: Vec<AgentId>,
}

impl EnvChanges {
    /// `true` when no edge or agent flipped.
    pub fn is_empty(&self) -> bool {
        self.edges_up.is_empty()
            && self.edges_down.is_empty()
            && self.agents_up.is_empty()
            && self.agents_down.is_empty()
    }
}

/// One environment transition expressed incrementally, for consumers (the
/// event-driven runtime) that maintain connectivity state across rounds
/// instead of rescanning a full [`EnvState`] every tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvDelta {
    /// Connectivity is identical to the previous step.
    Unchanged,
    /// Every topology edge is available and every agent enabled — the
    /// benign state, expressed without materialising the edge set (which
    /// matters for symbolic cliques).
    AllEnabled,
    /// The listed edges/agents flipped relative to the previous step.
    Changes(EnvChanges),
    /// A full rescan: the complete next state, with no relation to the
    /// previous one.  This is the universal fallback.
    Full(EnvState),
}

/// An environment process: at every system step it produces the next
/// environment state `G`.
///
/// Implementations may use the supplied RNG (probabilistic churn) or ignore
/// it (deterministic schedules such as the adversary).  The topology is the
/// set of edges that can ever be enabled; the environment never enables an
/// edge outside it.
pub trait Environment {
    /// The underlying communication graph.
    fn topology(&self) -> &Topology;

    /// Produces the environment state for the next step.
    fn step(&mut self, rng: &mut dyn rand::RngCore) -> EnvState;

    /// Produces the next transition as an [`EnvDelta`] relative to the
    /// state this method last produced (the first call is absolute).
    ///
    /// **Contract:** a run must use either `step` or `step_delta`
    /// exclusively, and the two must consume *identical* RNG streams and
    /// describe identical state sequences — folding the deltas with
    /// [`EnvState::apply_changes`] reproduces `step`'s states byte for
    /// byte.  That equivalence is what lets the event-driven runtime match
    /// the synchronous runtime's records exactly, and the
    /// `delta_equivalence` proptests pin it for every builtin.
    ///
    /// The default implementation falls back to a full rescan, so existing
    /// `Environment` impls are delta-capable for free; environments whose
    /// transitions are naturally sparse (Markov links, periodic
    /// partitions) override it with genuinely incremental updates.
    fn step_delta(&mut self, rng: &mut dyn rand::RngCore) -> EnvDelta {
        EnvDelta::Full(self.step(rng))
    }

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "environment"
    }
}

/// A benign, static environment: every topology edge is always available and
/// every agent is always enabled.
///
/// Under this environment a self-similar algorithm behaves like a classical
/// distributed algorithm on a fixed network; it is the "efficient when
/// conditions permit" end of the paper's spectrum.
#[derive(Clone, Debug)]
pub struct StaticEnv {
    topology: Topology,
}

impl StaticEnv {
    /// Creates a static environment over `topology`.
    pub fn new(topology: Topology) -> Self {
        StaticEnv { topology }
    }
}

impl Environment for StaticEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) -> EnvState {
        EnvState::fully_enabled(&self.topology)
    }

    fn step_delta(&mut self, _rng: &mut dyn rand::RngCore) -> EnvDelta {
        // Symbolic, like `step` (which consumes no RNG either): the benign
        // state never needs the edge set expanded.
        EnvDelta::AllEnabled
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Independent random churn: at each step every topology edge is available
/// with probability `p_edge` and every agent is enabled with probability
/// `p_agent`, independently of everything else.
///
/// With any `p_edge, p_agent > 0` every fairness predicate `Q_e` holds
/// infinitely often with probability 1, so assumption (2) is satisfied
/// almost surely.
#[derive(Clone, Debug)]
pub struct RandomChurnEnv {
    topology: Topology,
    p_edge: f64,
    p_agent: f64,
    // Incremental tracking for `step_delta`: enabled flags aligned with the
    // sorted edge / ascending agent orders (the orders both `step` and
    // `step_delta` draw in).  Filled when the first delta primes the base
    // state.
    cur_edges: Vec<bool>,
    cur_agents: Vec<bool>,
    delta_primed: bool,
}

impl RandomChurnEnv {
    /// Creates a churn environment.
    ///
    /// # Panics
    ///
    /// Panics with the [`RandomChurnEnv::validated`] message when either
    /// probability is outside `[0, 1]` (they used to be silently clamped,
    /// which made `churn(e=1.7,…)` report a cell that never ran).  Callers
    /// handling untrusted input (the CLI, the environment registry)
    /// validate first.
    pub fn new(topology: Topology, p_edge: f64, p_agent: f64) -> Self {
        Self::validated(topology, p_edge, p_agent)
            .unwrap_or_else(|message| panic!("RandomChurnEnv: {message}"))
    }

    /// Creates a churn environment, naming the offending field when a
    /// probability is out of range.
    pub fn validated(topology: Topology, p_edge: f64, p_agent: f64) -> Result<Self, String> {
        Ok(RandomChurnEnv {
            topology,
            p_edge: crate::validate_probability("p_edge", p_edge)?,
            p_agent: crate::validate_probability("p_agent", p_agent)?,
            cur_edges: Vec::new(),
            cur_agents: Vec::new(),
            delta_primed: false,
        })
    }

    /// The per-step probability that an edge is available.
    pub fn edge_probability(&self) -> f64 {
        self.p_edge
    }

    /// The per-step probability that an agent is enabled.
    pub fn agent_probability(&self) -> f64 {
        self.p_agent
    }
}

impl Environment for RandomChurnEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) -> EnvState {
        let edges: Vec<Edge> = self
            .topology
            .edges()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(self.p_edge))
            .collect();
        let agents: Vec<AgentId> = self
            .topology
            .agents()
            .filter(|_| rng.gen_bool(self.p_agent))
            .collect();
        EnvState::new(self.topology.agent_count(), edges, agents)
    }

    fn step_delta(&mut self, rng: &mut dyn rand::RngCore) -> EnvDelta {
        if !self.delta_primed {
            self.delta_primed = true;
            let state = self.step(rng);
            self.cur_edges = self
                .topology
                .edges()
                .iter()
                .map(|e| state.enabled_edges().contains(e))
                .collect();
            self.cur_agents = self
                .topology
                .agents()
                .map(|a| state.enabled_agents().contains(&a))
                .collect();
            return EnvDelta::Full(state);
        }
        // Exactly one Bernoulli per edge (sorted order) then one per agent
        // (ascending order) — the same stream `step` consumes — recording
        // only the flips.  Churn is memoryless, so each draw *is* the next
        // enabled flag; the trackers exist purely to diff against.
        let mut changes = EnvChanges::default();
        for (cur, e) in self.cur_edges.iter_mut().zip(self.topology.edges().iter()) {
            let up = rng.gen_bool(self.p_edge);
            if up != *cur {
                *cur = up;
                if up {
                    changes.edges_up.push(*e);
                } else {
                    changes.edges_down.push(*e);
                }
            }
        }
        for (i, cur) in self.cur_agents.iter_mut().enumerate() {
            let up = rng.gen_bool(self.p_agent);
            if up != *cur {
                *cur = up;
                if up {
                    changes.agents_up.push(AgentId(i));
                } else {
                    changes.agents_down.push(AgentId(i));
                }
            }
        }
        if changes.is_empty() {
            EnvDelta::Unchanged
        } else {
            EnvDelta::Changes(changes)
        }
    }

    fn name(&self) -> &'static str {
        "random-churn"
    }
}

/// Markov on/off links: each edge is an independent two-state Markov chain
/// (`down → up` with probability `p_up`, `up → down` with probability
/// `p_down`).  Models wireless links with correlated-in-time outages, which
/// independent churn does not capture.
#[derive(Clone, Debug)]
pub struct MarkovLinkEnv {
    topology: Topology,
    p_up: f64,
    p_down: f64,
    up: BTreeSet<Edge>,
    // `step_delta` emits its first transition absolutely (deltas need a
    // base state); true once that base has been produced.
    delta_primed: bool,
}

impl MarkovLinkEnv {
    /// Creates a Markov link environment with all links initially up.
    ///
    /// # Panics
    ///
    /// Panics with the [`MarkovLinkEnv::validated`] message when either
    /// probability is outside `[0, 1]`.
    pub fn new(topology: Topology, p_up: f64, p_down: f64) -> Self {
        Self::validated(topology, p_up, p_down)
            .unwrap_or_else(|message| panic!("MarkovLinkEnv: {message}"))
    }

    /// Creates a Markov link environment, naming the offending field when
    /// a probability is out of range.
    pub fn validated(topology: Topology, p_up: f64, p_down: f64) -> Result<Self, String> {
        let up = topology.edges().clone();
        Ok(MarkovLinkEnv {
            topology,
            p_up: crate::validate_probability("p_up", p_up)?,
            p_down: crate::validate_probability("p_down", p_down)?,
            up,
            delta_primed: false,
        })
    }

    /// Creates a Markov link environment with all links initially down.
    pub fn new_all_down(topology: Topology, p_up: f64, p_down: f64) -> Self {
        MarkovLinkEnv {
            up: BTreeSet::new(),
            ..Self::new(topology, p_up, p_down)
        }
    }
}

impl Environment for MarkovLinkEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) -> EnvState {
        let mut next_up = BTreeSet::new();
        for e in self.topology.edges() {
            let currently_up = self.up.contains(e);
            let up_next = if currently_up {
                !rng.gen_bool(self.p_down)
            } else {
                rng.gen_bool(self.p_up)
            };
            if up_next {
                next_up.insert(*e);
            }
        }
        self.up = next_up;
        EnvState::new(
            self.topology.agent_count(),
            self.up.iter().copied(),
            self.topology.agents(),
        )
    }

    fn step_delta(&mut self, rng: &mut dyn rand::RngCore) -> EnvDelta {
        if !self.delta_primed {
            self.delta_primed = true;
            return EnvDelta::Full(self.step(rng));
        }
        // Exactly one Bernoulli draw per topology edge, in edge order —
        // the same stream `step` consumes — recording only the flips.
        let mut went_up = Vec::new();
        let mut went_down = Vec::new();
        for e in self.topology.edges() {
            let currently_up = self.up.contains(e);
            let up_next = if currently_up {
                !rng.gen_bool(self.p_down)
            } else {
                rng.gen_bool(self.p_up)
            };
            if up_next != currently_up {
                if up_next {
                    went_up.push(*e);
                } else {
                    went_down.push(*e);
                }
            }
        }
        for e in &went_up {
            self.up.insert(*e);
        }
        for e in &went_down {
            self.up.remove(e);
        }
        if went_up.is_empty() && went_down.is_empty() {
            EnvDelta::Unchanged
        } else {
            EnvDelta::Changes(EnvChanges {
                edges_up: went_up,
                edges_down: went_down,
                ..EnvChanges::default()
            })
        }
    }

    fn name(&self) -> &'static str {
        "markov-links"
    }
}

/// Periodic partitions: the agent set is split into `blocks` contiguous
/// blocks; during a partitioned phase only intra-block topology edges are
/// available.  Every `period` steps one *merge* step occurs in which all
/// topology edges are available, which is what makes every `Q_e` recur.
///
/// Models a network that is split most of the time (e.g. teams out of radio
/// range) with occasional global connectivity.
#[derive(Clone, Debug)]
pub struct PeriodicPartitionEnv {
    topology: Topology,
    period: usize,
    tick: usize,
    // The two phase states and the cross-block edges that flip at every
    // phase boundary are pure functions of (topology, blocks), so they are
    // computed once at construction (setup, not simulation time); `step`
    // serves O(1) clones of the `Arc`-backed states from then on.
    cross: Vec<Edge>,
    partitioned: EnvState,
    merged: EnvState,
}

impl PeriodicPartitionEnv {
    /// Creates a periodic-partition environment.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or `period` is zero.
    pub fn new(topology: Topology, blocks: usize, period: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(period > 0, "period must be positive");
        let n = topology.agent_count();
        let block_size = n.div_ceil(blocks).max(1);
        let block_of = |agent: AgentId| agent.index() / block_size;
        let cross: Vec<Edge> = topology
            .edges()
            .iter()
            .copied()
            .filter(|e| block_of(e.lo()) != block_of(e.hi()))
            .collect();
        let partitioned = EnvState::new(
            n,
            topology
                .edges()
                .iter()
                .copied()
                .filter(|e| block_of(e.lo()) == block_of(e.hi())),
            topology.agents(),
        );
        let merged = EnvState::fully_enabled(&topology);
        PeriodicPartitionEnv {
            topology,
            period,
            tick: 0,
            cross,
            partitioned,
            merged,
        }
    }
}

impl Environment for PeriodicPartitionEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) -> EnvState {
        let merge_step = self.tick % self.period == self.period - 1;
        self.tick += 1;
        if merge_step {
            self.merged.clone()
        } else {
            self.partitioned.clone()
        }
    }

    fn step_delta(&mut self, rng: &mut dyn rand::RngCore) -> EnvDelta {
        // The state is a pure function of the phase (partitioned vs
        // merged); within a phase nothing changes, and a phase boundary
        // flips exactly the cross-block edges.  Neither `step` nor this
        // method consumes RNG, so the streams stay equal.
        let prev_merge = self.tick > 0 && (self.tick - 1) % self.period == self.period - 1;
        let next_merge = self.tick % self.period == self.period - 1;
        if self.tick == 0 {
            // Deltas need an absolute base.
            return EnvDelta::Full(self.step(rng));
        }
        if prev_merge == next_merge {
            self.tick += 1;
            return EnvDelta::Unchanged;
        }
        self.tick += 1;
        if self.cross.is_empty() {
            // One block: "partitioned" and "merged" are the same state.
            return EnvDelta::Unchanged;
        }
        let mut changes = EnvChanges::default();
        if next_merge {
            changes.edges_up = self.cross.clone();
        } else {
            changes.edges_down = self.cross.clone();
        }
        EnvDelta::Changes(changes)
    }

    fn name(&self) -> &'static str {
        "periodic-partition"
    }
}

/// Crash/restart faults: each agent is an independent two-state Markov chain
/// (`down → up` with probability `p_restart`, `up → down` with probability
/// `p_crash`).  All topology edges between two *up* agents are available.
///
/// A crashed agent is *disabled* in the paper's sense: it takes no steps and
/// its state is preserved until it restarts (battery exhaustion and
/// recharge, in the paper's motivating scenario).
#[derive(Clone, Debug)]
pub struct CrashRestartEnv {
    topology: Topology,
    p_crash: f64,
    p_restart: f64,
    up: BTreeSet<AgentId>,
}

impl CrashRestartEnv {
    /// Creates a crash/restart environment with all agents initially up.
    ///
    /// # Panics
    ///
    /// Panics with the [`CrashRestartEnv::validated`] message when either
    /// probability is outside `[0, 1]`.
    pub fn new(topology: Topology, p_crash: f64, p_restart: f64) -> Self {
        Self::validated(topology, p_crash, p_restart)
            .unwrap_or_else(|message| panic!("CrashRestartEnv: {message}"))
    }

    /// Creates a crash/restart environment, naming the offending field
    /// when a probability is out of range.
    pub fn validated(topology: Topology, p_crash: f64, p_restart: f64) -> Result<Self, String> {
        let up = topology.agents().collect();
        Ok(CrashRestartEnv {
            topology,
            p_crash: crate::validate_probability("p_crash", p_crash)?,
            p_restart: crate::validate_probability("p_restart", p_restart)?,
            up,
        })
    }

    /// The set of currently running agents.
    pub fn up_agents(&self) -> &BTreeSet<AgentId> {
        &self.up
    }
}

impl Environment for CrashRestartEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) -> EnvState {
        let mut next_up = BTreeSet::new();
        for a in self.topology.agents() {
            let currently_up = self.up.contains(&a);
            let up_next = if currently_up {
                !rng.gen_bool(self.p_crash)
            } else {
                rng.gen_bool(self.p_restart)
            };
            if up_next {
                next_up.insert(a);
            }
        }
        self.up = next_up;
        let edges: Vec<Edge> = self
            .topology
            .edges()
            .iter()
            .copied()
            .filter(|e| self.up.contains(&e.lo()) && self.up.contains(&e.hi()))
            .collect();
        EnvState::new(self.topology.agent_count(), edges, self.up.iter().copied())
    }

    fn name(&self) -> &'static str {
        "crash-restart"
    }
}

/// A minimally fair adversary: it keeps the system as disconnected as it can
/// while still satisfying `□◇Q_e` for every topology edge.
///
/// Concretely it cycles through the topology edges and, every
/// `silence + 1` steps, enables exactly one edge (and only its two
/// endpoints); in the intervening `silence` steps nothing is enabled at all.
/// This is the slowest environment against which the paper's algorithms must
/// still converge, and is the worst case used in the adaptivity experiments.
#[derive(Clone, Debug)]
pub struct AdversarialEnv {
    topology: Topology,
    edge_order: Vec<Edge>,
    silence: usize,
    tick: usize,
}

impl AdversarialEnv {
    /// Creates an adversary over `topology` that stays silent for `silence`
    /// steps between consecutive single-edge activations.
    pub fn new(topology: Topology, silence: usize) -> Self {
        let edge_order: Vec<Edge> = topology.edges().iter().copied().collect();
        AdversarialEnv {
            topology,
            edge_order,
            silence,
            tick: 0,
        }
    }
}

impl Environment for AdversarialEnv {
    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn step(&mut self, _rng: &mut dyn rand::RngCore) -> EnvState {
        let n = self.topology.agent_count();
        let cycle = self.silence + 1;
        let tick = self.tick;
        self.tick += 1;
        if self.edge_order.is_empty() || !tick.is_multiple_of(cycle) {
            return EnvState::fully_disabled(n);
        }
        let which = (tick / cycle) % self.edge_order.len();
        let edge = self.edge_order[which];
        EnvState::new(n, [edge], [edge.lo(), edge.hi()])
    }

    fn name(&self) -> &'static str {
        "adversarial"
    }
}

/// The conjunction of two environments over the same topology: an edge or
/// agent is enabled only when both components enable it.
///
/// Useful to combine orthogonal failure modes, e.g. link churn *and* agent
/// crashes.  Note that the composition may violate a fairness assumption
/// that each component satisfies individually; the experiment harness always
/// re-checks `□◇Q` on the generated trace.
pub struct ComposedEnv<E1, E2> {
    first: E1,
    second: E2,
}

impl<E1: Environment, E2: Environment> ComposedEnv<E1, E2> {
    /// Composes two environments.
    ///
    /// # Panics
    ///
    /// Panics if the two environments disagree on the number of agents.
    pub fn new(first: E1, second: E2) -> Self {
        assert_eq!(
            first.topology().agent_count(),
            second.topology().agent_count(),
            "composed environments must have the same agent count"
        );
        ComposedEnv { first, second }
    }
}

impl<E1: Environment, E2: Environment> Environment for ComposedEnv<E1, E2> {
    fn topology(&self) -> &Topology {
        self.first.topology()
    }

    fn step(&mut self, rng: &mut dyn rand::RngCore) -> EnvState {
        let a = self.first.step(rng);
        let b = self.second.step(rng);
        a.intersect(&b)
    }

    fn name(&self) -> &'static str {
        "composed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn static_env_is_always_fully_enabled() {
        let mut env = StaticEnv::new(Topology::ring(5));
        let mut r = rng();
        for _ in 0..10 {
            let s = env.step(&mut r);
            assert!(s.is_fully_connected());
            assert_eq!(s.enabled_edges().len(), 5);
        }
        assert_eq!(env.name(), "static");
    }

    #[test]
    fn zero_probability_churn_disables_everything() {
        let mut env = RandomChurnEnv::new(Topology::complete(4), 0.0, 0.0);
        let s = env.step(&mut rng());
        assert!(s.enabled_edges().is_empty());
        assert!(s.enabled_agents().is_empty());
    }

    #[test]
    fn full_probability_churn_enables_everything() {
        let mut env = RandomChurnEnv::new(Topology::complete(4), 1.0, 1.0);
        let s = env.step(&mut rng());
        assert_eq!(s.enabled_edges().len(), 6);
        assert_eq!(s.enabled_agents().len(), 4);
    }

    #[test]
    fn out_of_range_probabilities_are_rejected_with_the_field_named() {
        // Construction used to silently clamp (churn(e=7) quietly became
        // e=1 — a cell label that lied about what ran); now the offending
        // field is named at construction.
        let err = RandomChurnEnv::validated(Topology::line(3), 7.0, 0.5).unwrap_err();
        assert!(err.contains("p_edge"), "{err}");
        assert!(err.contains("7"), "{err}");
        let err = RandomChurnEnv::validated(Topology::line(3), 0.5, -2.0).unwrap_err();
        assert!(err.contains("p_agent"), "{err}");
        let err = MarkovLinkEnv::validated(Topology::line(3), 1.5, 0.5).unwrap_err();
        assert!(err.contains("p_up"), "{err}");
        let err = CrashRestartEnv::validated(Topology::line(3), 0.5, 2.0).unwrap_err();
        assert!(err.contains("p_restart"), "{err}");
        // Boundary values remain valid.
        assert!(RandomChurnEnv::validated(Topology::line(3), 0.0, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "p_edge must be a probability")]
    fn churn_new_panics_on_out_of_range_probability() {
        let _ = RandomChurnEnv::new(Topology::line(3), 7.0, 0.5);
    }

    #[test]
    fn churn_eventually_enables_every_edge() {
        let topo = Topology::line(5);
        let mut env = RandomChurnEnv::new(topo.clone(), 0.3, 1.0);
        let mut r = rng();
        let mut seen: BTreeSet<Edge> = BTreeSet::new();
        for _ in 0..200 {
            let s = env.step(&mut r);
            seen.extend(s.enabled_edges().iter().copied());
        }
        assert_eq!(&seen, topo.edges());
    }

    #[test]
    fn markov_links_start_up_and_stay_up_with_zero_down_probability() {
        let mut env = MarkovLinkEnv::new(Topology::ring(4), 0.5, 0.0);
        let mut r = rng();
        for _ in 0..5 {
            let s = env.step(&mut r);
            assert_eq!(s.enabled_edges().len(), 4);
        }
    }

    #[test]
    fn markov_links_all_down_never_recover_with_zero_up_probability() {
        let mut env = MarkovLinkEnv::new_all_down(Topology::ring(4), 0.0, 0.3);
        let mut r = rng();
        for _ in 0..5 {
            let s = env.step(&mut r);
            assert!(s.enabled_edges().is_empty());
        }
    }

    #[test]
    fn periodic_partition_merges_every_period() {
        let topo = Topology::complete(6);
        let mut env = PeriodicPartitionEnv::new(topo, 2, 4);
        let mut r = rng();
        let mut merged_steps = Vec::new();
        for step in 0..8 {
            let s = env.step(&mut r);
            if s.is_fully_connected() {
                merged_steps.push(step);
            } else {
                // During partitioned phases there are exactly two groups.
                assert_eq!(s.groups().len(), 2);
            }
        }
        assert_eq!(merged_steps, vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn periodic_partition_rejects_zero_period() {
        let _ = PeriodicPartitionEnv::new(Topology::line(2), 1, 0);
    }

    #[test]
    fn crash_restart_disables_crashed_agents() {
        let mut env = CrashRestartEnv::new(Topology::complete(5), 1.0, 0.0);
        let mut r = rng();
        let s = env.step(&mut r);
        // Everyone crashes immediately and never restarts.
        assert!(s.enabled_agents().is_empty());
        assert!(env.up_agents().is_empty());
        let s2 = env.step(&mut r);
        assert!(s2.enabled_agents().is_empty());
    }

    #[test]
    fn crash_free_environment_keeps_all_agents_up() {
        let mut env = CrashRestartEnv::new(Topology::complete(5), 0.0, 1.0);
        let s = env.step(&mut rng());
        assert_eq!(s.enabled_agents().len(), 5);
        assert!(s.is_fully_connected());
    }

    #[test]
    fn adversary_enables_one_edge_per_cycle() {
        let topo = Topology::line(4); // edges 0-1, 1-2, 2-3
        let mut env = AdversarialEnv::new(topo.clone(), 2);
        let mut r = rng();
        let mut active_edges = Vec::new();
        for _ in 0..9 {
            let s = env.step(&mut r);
            assert!(s.enabled_edges().len() <= 1);
            if let Some(e) = s.enabled_edges().iter().next() {
                // Only the endpoints of the active edge are enabled.
                assert_eq!(s.enabled_agents().len(), 2);
                active_edges.push(*e);
            } else {
                assert!(s.enabled_agents().is_empty());
            }
        }
        // Over 9 steps with silence 2 (cycle length 3) we see 3 activations,
        // one per topology edge, in order.
        assert_eq!(active_edges.len(), 3);
        let expected: Vec<Edge> = topo.edges().iter().copied().collect();
        assert_eq!(active_edges, expected);
    }

    #[test]
    fn adversary_over_edgeless_topology_is_always_silent() {
        let mut env = AdversarialEnv::new(Topology::empty(3), 0);
        let s = env.step(&mut rng());
        assert!(s.enabled_edges().is_empty());
    }

    #[test]
    fn composed_env_intersects_components() {
        let topo = Topology::complete(4);
        let churn = RandomChurnEnv::new(topo.clone(), 1.0, 1.0);
        let crash = CrashRestartEnv::new(topo.clone(), 1.0, 0.0); // everyone down
        let mut env = ComposedEnv::new(churn, crash);
        let s = env.step(&mut rng());
        assert!(s.enabled_agents().is_empty());
        assert_eq!(env.name(), "composed");
        assert_eq!(env.topology().agent_count(), 4);
    }

    #[test]
    #[should_panic(expected = "same agent count")]
    fn composed_env_rejects_mismatched_sizes() {
        let a = StaticEnv::new(Topology::line(3));
        let b = StaticEnv::new(Topology::line(4));
        let _ = ComposedEnv::new(a, b);
    }

    // Folds one delta into the tracked state the way a delta consumer
    // (the event-driven runtime) does.
    fn apply_delta(current: &mut Option<EnvState>, delta: EnvDelta, topo: &Topology) {
        match delta {
            EnvDelta::Unchanged => {
                assert!(current.is_some(), "Unchanged before any base state");
            }
            EnvDelta::AllEnabled => *current = Some(EnvState::fully_enabled(topo)),
            EnvDelta::Full(s) => *current = Some(s),
            EnvDelta::Changes(c) => current
                .as_mut()
                .expect("Changes before any base state")
                .apply_changes(&c),
        }
    }

    #[test]
    fn static_delta_is_symbolically_all_enabled() {
        let mut env = StaticEnv::new(Topology::ring(5));
        let mut r = rng();
        for _ in 0..3 {
            assert_eq!(env.step_delta(&mut r), EnvDelta::AllEnabled);
        }
    }

    #[test]
    fn markov_deltas_match_full_rescans() {
        let topo = Topology::ring(8);
        let mut by_step = MarkovLinkEnv::new(topo.clone(), 0.4, 0.4);
        let mut by_delta = by_step.clone();
        let (mut r1, mut r2) = (rng(), rng());
        let mut current: Option<EnvState> = None;
        let mut saw_changes = false;
        for _ in 0..30 {
            let expected = by_step.step(&mut r1);
            let delta = by_delta.step_delta(&mut r2);
            saw_changes |= matches!(delta, EnvDelta::Changes(_));
            apply_delta(&mut current, delta, &topo);
            assert_eq!(current.as_ref(), Some(&expected));
        }
        assert!(saw_changes, "p=0.4 churn over 30 rounds must flip an edge");
    }

    #[test]
    fn partition_deltas_are_unchanged_within_phases() {
        let topo = Topology::complete(6);
        let mut by_step = PeriodicPartitionEnv::new(topo.clone(), 2, 4);
        let mut by_delta = PeriodicPartitionEnv::new(topo.clone(), 2, 4);
        let (mut r1, mut r2) = (rng(), rng());
        let mut current: Option<EnvState> = None;
        let mut unchanged = 0;
        for _ in 0..12 {
            let expected = by_step.step(&mut r1);
            let delta = by_delta.step_delta(&mut r2);
            if delta == EnvDelta::Unchanged {
                unchanged += 1;
            }
            apply_delta(&mut current, delta, &topo);
            assert_eq!(current.as_ref(), Some(&expected));
        }
        // 12 rounds at period 4: only the merge rounds and the returns to
        // partition force a rescan; the rest are free.
        assert_eq!(unchanged, 6);
    }

    #[test]
    fn default_step_delta_falls_back_to_full_rescan() {
        let topo = Topology::complete(5);
        let mut by_step = CrashRestartEnv::new(topo.clone(), 0.3, 0.5);
        let mut by_delta = by_step.clone();
        let (mut r1, mut r2) = (rng(), rng());
        for _ in 0..10 {
            let expected = by_step.step(&mut r1);
            assert_eq!(by_delta.step_delta(&mut r2), EnvDelta::Full(expected));
        }
    }
}
