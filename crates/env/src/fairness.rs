//! Fairness assumptions `Q` on the environment and their trace-level checker.
//!
//! The only constraint designers may place on the environment is a set `Q`
//! of predicates on environment states, each of which must hold infinitely
//! often: `∀Q ∈ Q : □◇Q` (assumption (2) of the paper).  All of the paper's
//! examples instantiate `Q` as `Q_E = { Q_e | e ∈ E }` for a graph `E`,
//! where `Q_e` reads "edge `e` exists and is available for communication".
//!
//! [`FairnessSpec`] represents such a `Q_E` and can check, using the
//! finite-trace `□◇` semantics of `selfsim-temporal`, whether a recorded
//! sequence of environment states satisfied every `Q_e`.

use std::collections::BTreeSet;

use selfsim_temporal::{Formula, Trace, Verdict};

use crate::topology::EdgeSet;
use crate::{AgentId, Edge, EnvState, Topology};

/// A fairness specification `Q_E`: one recurrence predicate per edge of a
/// graph `E`, plus (optionally) per-agent enabledness predicates.
///
/// An edge predicate `Q_e` is *satisfied* by an environment state when the
/// edge is available **and** both its endpoints are enabled — that is the
/// reading under which the endpoints can actually take a collaborative step,
/// which is what the paper's escape arguments need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FairnessSpec {
    agent_count: usize,
    // Shared representation with `Topology`: a clique spec stays symbolic,
    // so `FairnessSpec::complete(100000)` is O(1) like the topology it
    // mirrors.
    edges: EdgeSet,
    require_agents_enabled: bool,
}

impl FairnessSpec {
    /// The fairness set `Q_E` for every edge of `graph`.  The edge set is
    /// shared structurally, so this is cheap even for symbolic cliques.
    pub fn for_graph(graph: &Topology) -> Self {
        FairnessSpec {
            agent_count: graph.agent_count(),
            edges: graph.edge_set().clone(),
            require_agents_enabled: true,
        }
    }

    /// The fairness set for an explicit collection of edges over
    /// `agent_count` agents.
    pub fn for_edges(agent_count: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        FairnessSpec {
            agent_count,
            edges: EdgeSet::Explicit(std::sync::Arc::new(edges.into_iter().collect())),
            require_agents_enabled: true,
        }
    }

    /// The fairness set of the *sum* example (§4.2): every pair of agents
    /// must be able to communicate infinitely often (complete graph).
    pub fn complete(agent_count: usize) -> Self {
        Self::for_graph(&Topology::complete(agent_count))
    }

    /// The fairness set of the *sorting* example (§4.4): a line graph in
    /// index order.
    pub fn line(agent_count: usize) -> Self {
        Self::for_graph(&Topology::line(agent_count))
    }

    /// Relaxes the spec so that only edge availability (not endpoint
    /// enabledness) is required.  Useful for checking environments that
    /// never disable agents.
    pub fn edges_only(mut self) -> Self {
        self.require_agents_enabled = false;
        self
    }

    /// The number of agents this spec refers to.
    pub fn agent_count(&self) -> usize {
        self.agent_count
    }

    /// The edges whose availability must recur.  A symbolic clique is
    /// materialised (once) on first access; the structural helpers below
    /// ([`FairnessSpec::is_complete`], [`FairnessSpec::is_connected`],
    /// [`FairnessSpec::covered_agents`]) never expand it.
    pub fn edges(&self) -> &BTreeSet<Edge> {
        self.edges.materialized()
    }

    /// Returns `true` if the single predicate `Q_e` holds in `state`.
    pub fn edge_satisfied(&self, edge: Edge, state: &EnvState) -> bool {
        if self.require_agents_enabled {
            state.can_communicate(edge.lo(), edge.hi())
        } else {
            state.enabled_edges().contains(&edge)
        }
    }

    /// Returns `true` if *every* predicate of the spec holds simultaneously
    /// in `state` (a "merge" state in which the whole fairness graph is up).
    pub fn all_satisfied(&self, state: &EnvState) -> bool {
        self.edges
            .materialized()
            .iter()
            .all(|e| self.edge_satisfied(*e, state))
    }

    /// Checks `□◇Q_e` for every edge `e` of the spec over a recorded
    /// environment trace, with `tolerance` trailing states exempted (see
    /// [`Formula::always_eventually`]).
    ///
    /// Returns the edges whose recurrence was violated, with the verdict of
    /// the first violation; an empty vector means the trace satisfies the
    /// fairness assumption (2).
    pub fn check_trace(&self, trace: &Trace<EnvState>, tolerance: usize) -> Vec<(Edge, Verdict)> {
        let mut violations = Vec::new();
        for &edge in self.edges.materialized() {
            let spec = self.clone();
            let formula = Formula::always_eventually(
                Formula::atom(format!("Q_{edge}"), move |s: &EnvState| {
                    spec.edge_satisfied(edge, s)
                }),
                tolerance,
            );
            let verdict = formula.check(trace);
            if !verdict.is_holds() {
                violations.push((edge, verdict));
            }
        }
        violations
    }

    /// Convenience wrapper around [`FairnessSpec::check_trace`] that returns
    /// a boolean.
    pub fn trace_satisfies(&self, trace: &Trace<EnvState>, tolerance: usize) -> bool {
        self.check_trace(trace, tolerance).is_empty()
    }

    /// Returns, for each edge, the number of recorded states in which its
    /// predicate held — a quantitative view of how generous the environment
    /// was (used by the adaptivity experiments).
    pub fn satisfaction_counts(&self, trace: &Trace<EnvState>) -> Vec<(Edge, usize)> {
        self.edges
            .materialized()
            .iter()
            .map(|&e| {
                let count = trace.iter().filter(|s| self.edge_satisfied(e, s)).count();
                (e, count)
            })
            .collect()
    }

    /// Returns `true` if the fairness graph is connected over the agents it
    /// mentions plus all remaining agents as isolated vertices.
    ///
    /// The minimum/hull examples require a *connected* fairness graph; the
    /// sum example requires the complete graph.  This helper lets algorithm
    /// constructors validate the spec they are given.
    pub fn is_connected(&self) -> bool {
        if let EdgeSet::Complete { n, .. } = &self.edges {
            // The clique connects its members; any agent beyond it is an
            // isolated vertex.
            return *n == self.agent_count || self.agent_count <= 1;
        }
        let mut topo = Topology::empty(self.agent_count);
        for e in self.edges.materialized() {
            topo.add_edge(e.lo(), e.hi());
        }
        topo.is_connected()
    }

    /// Returns `true` if the fairness graph is the complete graph on all
    /// agents.
    pub fn is_complete(&self) -> bool {
        let n = self.agent_count;
        self.edges.len() == n * n.saturating_sub(1) / 2
    }

    /// The set of agents mentioned by at least one fairness edge.
    pub fn covered_agents(&self) -> BTreeSet<AgentId> {
        match &self.edges {
            EdgeSet::Explicit(edges) => {
                let mut agents = BTreeSet::new();
                for e in edges.iter() {
                    agents.insert(e.lo());
                    agents.insert(e.hi());
                }
                agents
            }
            // A clique on fewer than two agents has no edges, hence covers
            // nobody.
            EdgeSet::Complete { n: 0 | 1, .. } => BTreeSet::new(),
            EdgeSet::Complete { n, .. } => (0..*n).map(AgentId).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Environment, RandomChurnEnv, StaticEnv};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn record<E: Environment>(env: &mut E, steps: usize, seed: u64) -> Trace<EnvState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new();
        for _ in 0..steps {
            trace.push(env.step(&mut rng));
        }
        trace
    }

    #[test]
    fn static_environment_satisfies_its_fairness_spec() {
        let topo = Topology::ring(6);
        let spec = FairnessSpec::for_graph(&topo);
        let mut env = StaticEnv::new(topo);
        let trace = record(&mut env, 20, 1);
        assert!(spec.trace_satisfies(&trace, 0));
        assert!(spec.check_trace(&trace, 0).is_empty());
    }

    #[test]
    fn dead_environment_violates_fairness() {
        let topo = Topology::ring(4);
        let spec = FairnessSpec::for_graph(&topo);
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let trace = record(&mut env, 20, 2);
        let violations = spec.check_trace(&trace, 0);
        assert_eq!(violations.len(), 4); // every edge starves
        assert!(!spec.trace_satisfies(&trace, 0));
    }

    #[test]
    fn churny_environment_satisfies_fairness_with_tolerance() {
        let topo = Topology::line(5);
        let spec = FairnessSpec::for_graph(&topo);
        let mut env = RandomChurnEnv::new(topo, 0.4, 1.0);
        let trace = record(&mut env, 300, 3);
        // With a tolerance window at the end the recurrence should hold with
        // overwhelming probability for this seed.
        assert!(spec.trace_satisfies(&trace, 30));
    }

    #[test]
    fn edge_satisfied_requires_enabled_endpoints_by_default() {
        let topo = Topology::line(3);
        let spec = FairnessSpec::for_graph(&topo);
        let edge = Edge::new(AgentId(0), AgentId(1));
        let edge_up_agent_down = EnvState::new(3, [edge], [AgentId(0)]);
        assert!(!spec.edge_satisfied(edge, &edge_up_agent_down));
        let relaxed = spec.clone().edges_only();
        assert!(relaxed.edge_satisfied(edge, &edge_up_agent_down));
    }

    #[test]
    fn all_satisfied_detects_merge_states() {
        let topo = Topology::complete(3);
        let spec = FairnessSpec::for_graph(&topo);
        assert!(spec.all_satisfied(&EnvState::fully_enabled(&topo)));
        assert!(!spec.all_satisfied(&EnvState::fully_disabled(3)));
    }

    #[test]
    fn connectivity_and_completeness_helpers() {
        assert!(FairnessSpec::complete(5).is_complete());
        assert!(FairnessSpec::complete(5).is_connected());
        assert!(FairnessSpec::line(5).is_connected());
        assert!(!FairnessSpec::line(5).is_complete());
        let sparse = FairnessSpec::for_edges(4, [Edge::new(AgentId(0), AgentId(1))]);
        assert!(!sparse.is_connected());
        assert_eq!(
            sparse.covered_agents().into_iter().collect::<Vec<_>>(),
            vec![AgentId(0), AgentId(1)]
        );
    }

    #[test]
    fn satisfaction_counts_count_states() {
        let topo = Topology::line(3);
        let spec = FairnessSpec::for_graph(&topo);
        let e01 = Edge::new(AgentId(0), AgentId(1));
        let e12 = Edge::new(AgentId(1), AgentId(2));
        let trace = Trace::from_states(vec![
            EnvState::new(3, [e01], (0..3).map(AgentId)),
            EnvState::new(3, [e01, e12], (0..3).map(AgentId)),
            EnvState::fully_disabled(3),
        ]);
        let counts = spec.satisfaction_counts(&trace);
        assert_eq!(counts, vec![(e01, 2), (e12, 1)]);
    }

    #[test]
    fn symbolic_complete_spec_is_cheap_and_equal_to_explicit() {
        // No call below may expand the 100k-agent clique.
        let spec = FairnessSpec::complete(100_000);
        assert!(spec.is_complete());
        assert!(spec.is_connected());
        assert_eq!(spec.covered_agents().len(), 100_000);
        // Semantic equality across representations at a checkable size.
        let small = FairnessSpec::complete(5);
        let explicit = FairnessSpec::for_edges(
            5,
            (0..5).flat_map(|i| ((i + 1)..5).map(move |j| Edge::new(AgentId(i), AgentId(j)))),
        );
        assert_eq!(small, explicit);
        assert_eq!(small.edges(), explicit.edges());
    }

    #[test]
    fn single_agent_spec_is_trivially_connected_and_complete() {
        let spec = FairnessSpec::for_graph(&Topology::empty(1));
        assert!(spec.is_connected());
        assert!(spec.is_complete());
        assert!(spec.trace_satisfies(&Trace::from_states(vec![EnvState::fully_disabled(1)]), 0));
    }
}
