//! Agents, communication edges and the underlying topology graph.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// Identifier of an agent (process) in the fixed agent set `A`.
///
/// The paper keeps agent identities out of the *algorithms* (self-similar
/// computations are identity-agnostic) but the *infrastructure* — topology,
/// environment, simulators — still needs to address individual agents.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AgentId(pub usize);

impl AgentId {
    /// The numeric index of the agent.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An undirected communication edge between two distinct agents.
///
/// Edges are stored in normalised form (smaller endpoint first) so that
/// `Edge::new(a, b) == Edge::new(b, a)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    lo: AgentId,
    hi: AgentId,
}

impl Edge {
    /// Creates the (normalised) edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; self-loops carry no communication meaning in the
    /// model (an agent can always "communicate" with itself).
    pub fn new(a: AgentId, b: AgentId) -> Self {
        assert_ne!(a, b, "self-loop edges are not allowed");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The endpoint with the smaller id.
    pub fn lo(&self) -> AgentId {
        self.lo
    }

    /// The endpoint with the larger id.
    pub fn hi(&self) -> AgentId {
        self.hi
    }

    /// Both endpoints, smaller id first.
    pub fn endpoints(&self) -> (AgentId, AgentId) {
        (self.lo, self.hi)
    }

    /// Returns `true` if `agent` is one of the endpoints.
    pub fn touches(&self, agent: AgentId) -> bool {
        self.lo == agent || self.hi == agent
    }

    /// Given one endpoint, returns the other; `None` if `agent` is not an
    /// endpoint.
    pub fn other(&self, agent: AgentId) -> Option<AgentId> {
        if agent == self.lo {
            Some(self.hi)
        } else if agent == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}—{}", self.lo, self.hi)
    }
}

/// Edge storage shared by [`Topology`] and
/// [`FairnessSpec`](crate::FairnessSpec): either an explicit sorted set, or
/// the complete graph on `n` agents held *symbolically* so that
/// `complete(100000)` costs O(1) instead of materialising ~5·10⁹ edges.
///
/// All queries (`len`, `contains`, neighbours, components) have closed
/// forms for the complete case; [`EdgeSet::materialized`] lazily expands
/// the set once for the few callers that genuinely need every edge
/// (serialization, per-edge environment churn), and caches the expansion.
///
/// Equality is *semantic* — a symbolic complete graph equals the explicit
/// set of the same edges — so representation changes never change cell
/// identity.
#[derive(Debug)]
pub(crate) enum EdgeSet {
    /// An explicit edge set, shared copy-on-write so that cloning a
    /// topology (and deriving environment states from it) is O(1).
    Explicit(Arc<BTreeSet<Edge>>),
    /// The complete graph on agents `0..n`, expanded on demand.
    Complete {
        /// Number of agents the clique spans.
        n: usize,
        /// Lazily materialised edge set (for `edges()`/serialization).
        cache: OnceLock<BTreeSet<Edge>>,
    },
}

impl EdgeSet {
    fn complete_len(n: usize) -> usize {
        n * n.saturating_sub(1) / 2
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EdgeSet::Explicit(edges) => edges.len(),
            EdgeSet::Complete { n, .. } => EdgeSet::complete_len(*n),
        }
    }

    pub(crate) fn contains(&self, edge: &Edge) -> bool {
        match self {
            EdgeSet::Explicit(edges) => edges.contains(edge),
            // Edges are normalised (lo < hi), so `hi < n` implies both
            // endpoints are in the clique.
            EdgeSet::Complete { n, .. } => edge.hi().index() < *n,
        }
    }

    /// The explicit edge set, expanding (and caching) a symbolic clique.
    pub(crate) fn materialized(&self) -> &BTreeSet<Edge> {
        match self {
            EdgeSet::Explicit(edges) => edges.as_ref(),
            EdgeSet::Complete { n, cache } => cache.get_or_init(|| {
                let mut edges = BTreeSet::new();
                for i in 0..*n {
                    for j in (i + 1)..*n {
                        edges.insert(Edge::new(AgentId(i), AgentId(j)));
                    }
                }
                edges
            }),
        }
    }

    /// The edge set as a shareable `Arc` (materialising a clique), for
    /// consumers that want to alias rather than copy the set.
    pub(crate) fn shared(&self) -> Arc<BTreeSet<Edge>> {
        match self {
            EdgeSet::Explicit(edges) => Arc::clone(edges),
            complete @ EdgeSet::Complete { .. } => Arc::new(complete.materialized().clone()),
        }
    }
}

impl Clone for EdgeSet {
    fn clone(&self) -> Self {
        match self {
            // O(1): the set is copy-on-write (see `Topology::add_edge`).
            EdgeSet::Explicit(edges) => EdgeSet::Explicit(Arc::clone(edges)),
            // The cache is per-instance scratch; clones start cold.
            EdgeSet::Complete { n, .. } => EdgeSet::Complete {
                n: *n,
                cache: OnceLock::new(),
            },
        }
    }
}

impl PartialEq for EdgeSet {
    fn eq(&self, other: &Self) -> bool {
        // A set of C(n,2) distinct normalised edges with every endpoint
        // below n *is* the clique on n, so count + range check is exact.
        let matches_complete = |edges: &BTreeSet<Edge>, n: usize| {
            edges.len() == EdgeSet::complete_len(n) && edges.iter().all(|e| e.hi().index() < n)
        };
        match (self, other) {
            (EdgeSet::Explicit(a), EdgeSet::Explicit(b)) => a == b,
            (EdgeSet::Complete { n: a, .. }, EdgeSet::Complete { n: b, .. }) => {
                EdgeSet::complete_len(*a) == EdgeSet::complete_len(*b)
            }
            (EdgeSet::Explicit(edges), EdgeSet::Complete { n, .. })
            | (EdgeSet::Complete { n, .. }, EdgeSet::Explicit(edges)) => {
                matches_complete(edges, *n)
            }
        }
    }
}

impl Eq for EdgeSet {}

/// The communication graph `(A, E)`: a fixed set of `n` agents
/// (`AgentId(0) .. AgentId(n-1)`) and a set of undirected edges.
///
/// The topology is the *potential* connectivity; at any instant the
/// environment enables some subset of its edges (see
/// [`EnvState`](crate::EnvState)).  The fairness sets `Q_E` of the paper's
/// examples are defined over topology edges.
///
/// Complete graphs are held symbolically (see [`EdgeSet`]), so
/// [`Topology::complete`] is O(1) and clique queries never expand the edge
/// set; only [`Topology::edges`] does, lazily.
///
/// The flat CSR adjacency ([`Csr`](crate::Csr)) is likewise built lazily —
/// at most once per topology — and shared via `Arc` with every consumer
/// (see [`Topology::csr`]).
pub struct Topology {
    n: usize,
    edges: EdgeSet,
    /// Lazily built flat adjacency; per-instance scratch like the clique
    /// cache, so it participates in neither equality nor cloning.
    csr: OnceLock<std::sync::Arc<crate::csr::Csr>>,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        // A clone has the identical agent and edge sets, so an already
        // built CSR stays valid — share it instead of rebuilding (any
        // later mutation invalidates it on both sides independently,
        // because `add_edge` replaces rather than edits the Arc).
        let csr = OnceLock::new();
        if let Some(built) = self.csr.get() {
            let _ = csr.set(Arc::clone(built));
        }
        Topology {
            n: self.n,
            edges: self.edges.clone(),
            csr,
        }
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for Topology {}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("n", &self.n)
            .field("edges", &self.edges)
            .finish()
    }
}

// Hand-written serde keeping the exact `{ "n": …, "edges": [...] }` wire
// shape the old derive produced, so records and golden files are unchanged;
// serializing a symbolic clique materialises it.
impl Serialize for Topology {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".into(), self.n.to_value()),
            ("edges".into(), self.edges.materialized().to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| serde::Error(format!("Topology missing field `{name}`")))
        };
        Ok(Topology {
            n: usize::from_value(field("n")?)?,
            edges: EdgeSet::Explicit(Arc::new(BTreeSet::from_value(field("edges")?)?)),
            csr: OnceLock::new(),
        })
    }
}

impl Topology {
    /// Creates a topology with `n` agents and no edges.
    pub fn empty(n: usize) -> Self {
        Topology {
            n,
            edges: EdgeSet::Explicit(Arc::new(BTreeSet::new())),
            csr: OnceLock::new(),
        }
    }

    /// Creates a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut topo = Topology::empty(n);
        for (a, b) in edges {
            topo.add_edge(AgentId(a), AgentId(b));
        }
        topo
    }

    /// The complete graph on `n` agents (every pair may communicate).
    ///
    /// This is the fairness graph required by the *sum* example (§4.2).
    /// The clique is held symbolically — construction is O(1) and clique
    /// queries have closed forms — so `complete(100000)` is a sweepable
    /// cell rather than a 5-billion-edge allocation.
    pub fn complete(n: usize) -> Self {
        Topology {
            n,
            edges: EdgeSet::Complete {
                n,
                cache: OnceLock::new(),
            },
            csr: OnceLock::new(),
        }
    }

    /// The line (path) graph `0 — 1 — … — n-1`.
    ///
    /// This is the fairness graph used by the *sorting* example (§4.4):
    /// each agent need only communicate with its index neighbours.
    pub fn line(n: usize) -> Self {
        let mut topo = Topology::empty(n);
        for i in 1..n {
            topo.add_edge(AgentId(i - 1), AgentId(i));
        }
        topo
    }

    /// The ring (cycle) graph on `n` agents.
    pub fn ring(n: usize) -> Self {
        let mut topo = Topology::line(n);
        if n > 2 {
            topo.add_edge(AgentId(n - 1), AgentId(0));
        }
        topo
    }

    /// The star graph with agent 0 at the centre.
    pub fn star(n: usize) -> Self {
        let mut topo = Topology::empty(n);
        for i in 1..n {
            topo.add_edge(AgentId(0), AgentId(i));
        }
        topo
    }

    /// A `rows × cols` grid graph.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut topo = Topology::empty(n);
        let id = |r: usize, c: usize| AgentId(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    topo.add_edge(id(r, c), id(r, c + 1));
                }
                if r + 1 < rows {
                    topo.add_edge(id(r, c), id(r + 1, c));
                }
            }
        }
        topo
    }

    /// An Erdős–Rényi `G(n, p)` random graph, re-sampled until connected
    /// (so it can serve as a fairness graph for the consensus examples).
    pub fn random_connected(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        assert!(n > 0, "need at least one agent");
        loop {
            let mut topo = Topology::empty(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        topo.add_edge(AgentId(i), AgentId(j));
                    }
                }
            }
            if topo.is_connected() {
                return topo;
            }
            // Guarantee termination for tiny p by falling back to a ring
            // after an unlucky streak is unlikely but possible; add one
            // random spanning structure instead of looping forever.
            if p < 2.0 * (n as f64).ln() / (n as f64) {
                for i in 1..n {
                    let j = rng.gen_range(0..i);
                    topo.add_edge(AgentId(i), AgentId(j));
                }
                return topo;
            }
        }
    }

    /// A sparse Erdős–Rényi-style `G(n, p)` graph with expected degree
    /// `expected_degree`, patched to be connected, built in `O(n + m)` time.
    ///
    /// [`Topology::random_connected`] draws one Bernoulli per pair — all
    /// `C(n, 2)` of them — which is unusable beyond ~10⁴ agents.  This
    /// constructor geometrically skips through each agent's candidate
    /// neighbour row (one `f64` draw per *present* edge plus one per row),
    /// then deterministically chains any leftover components together by a
    /// min-member-to-min-member edge, consuming no further randomness.  The
    /// result is a connected sparse graph suitable for 10⁵–10⁶-agent
    /// benchmark cells.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `expected_degree` is negative or non-finite.
    pub fn random_connected_sparse(n: usize, expected_degree: f64, rng: &mut impl Rng) -> Self {
        assert!(n > 0, "need at least one agent");
        assert!(
            expected_degree.is_finite() && expected_degree >= 0.0,
            "expected_degree must be finite and non-negative"
        );
        let mut topo = Topology::empty(n);
        let p = if n > 1 {
            (expected_degree / (n as f64 - 1.0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if p >= 1.0 {
            // Degenerate dense request: every pair is present.
            for i in 0..n {
                for j in (i + 1)..n {
                    topo.add_edge(AgentId(i), AgentId(j));
                }
            }
            return topo;
        }
        if p > 0.0 {
            let ln_q = (1.0 - p).ln();
            for i in 0..n.saturating_sub(1) {
                let mut j = i;
                loop {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    // Geometric skip: number of absent candidates before the
                    // next present edge.  `u == 0` maps to an infinite skip,
                    // i.e. no further edge in this row.
                    let skip = if u > 0.0 {
                        (u.ln() / ln_q).floor()
                    } else {
                        f64::INFINITY
                    };
                    if !skip.is_finite() || skip >= (n - j) as f64 {
                        break;
                    }
                    j += 1 + skip as usize;
                    if j >= n {
                        break;
                    }
                    topo.add_edge(AgentId(i), AgentId(j));
                }
            }
        }
        // Deterministic connectivity patch: chain each component's smallest
        // member to the previous component's smallest member.
        let comps = topo.components();
        let mins: Vec<AgentId> = comps.iter().filter_map(|c| c.first().copied()).collect();
        for pair in mins.windows(2) {
            if let [a, b] = pair {
                topo.add_edge(*a, *b);
            }
        }
        topo
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.n
    }

    /// Iterates over all agent ids.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        (0..self.n).map(AgentId)
    }

    /// The edge set.  A symbolic complete graph is materialised (once) on
    /// first access; prefer the closed-form queries ([`Topology::has_edge`],
    /// [`Topology::edge_count`], [`Topology::components`]) on huge cliques.
    pub fn edges(&self) -> &BTreeSet<Edge> {
        self.edges.materialized()
    }

    /// The internal edge representation, shared with
    /// [`FairnessSpec`](crate::FairnessSpec) so clique specs stay symbolic.
    pub(crate) fn edge_set(&self) -> &EdgeSet {
        &self.edges
    }

    /// The edge set as a shareable `Arc` (materialising a clique), so
    /// derived structures ([`EnvState::fully_enabled`](crate::EnvState))
    /// can alias it instead of copying a million edges.
    pub(crate) fn shared_edges(&self) -> Arc<BTreeSet<Edge>> {
        self.edges.shared()
    }

    /// Number of edges (closed form for symbolic cliques).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The flat CSR adjacency of this topology, built at most once and
    /// shared via `Arc` (so consumers can hold it across mutable borrows of
    /// the environment that owns the topology).
    ///
    /// A symbolic clique is materialised by the build — callers that can
    /// stay symbolic (e.g. the event runtime's fully-enabled fast path)
    /// should not ask for a CSR.
    pub fn csr(&self) -> std::sync::Arc<crate::csr::Csr> {
        self.csr
            .get_or_init(|| std::sync::Arc::new(crate::csr::Csr::new(self)))
            .clone()
    }

    /// Adds an (undirected) edge.  A symbolic clique is expanded first —
    /// mutation forfeits the compact representation.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, a: AgentId, b: AgentId) {
        assert!(
            a.0 < self.n && b.0 < self.n,
            "edge endpoint out of range: {a}, {b} with n = {}",
            self.n
        );
        // Mutation invalidates the cached flat adjacency.
        self.csr.take();
        if let EdgeSet::Complete { .. } = self.edges {
            self.edges = EdgeSet::Explicit(self.edges.shared());
        }
        match &mut self.edges {
            EdgeSet::Explicit(edges) => {
                // Copy-on-write: clones sharing this set are unaffected.
                Arc::make_mut(edges).insert(Edge::new(a, b));
            }
            EdgeSet::Complete { .. } => unreachable!("clique expanded above"),
        }
    }

    /// Returns `true` if the edge `{a, b}` is in the topology.
    pub fn has_edge(&self, a: AgentId, b: AgentId) -> bool {
        // The clique's closed form needs the explicit range check the
        // set-containment path got for free.
        a != b && a.0 < self.n && b.0 < self.n && self.edges.contains(&Edge::new(a, b))
    }

    /// The neighbours of `agent` in the topology, in ascending id order.
    pub fn neighbors(&self, agent: AgentId) -> Vec<AgentId> {
        match &self.edges {
            EdgeSet::Explicit(edges) => edges.iter().filter_map(|e| e.other(agent)).collect(),
            EdgeSet::Complete { n, .. } => {
                if agent.0 >= *n {
                    return Vec::new();
                }
                (0..*n).map(AgentId).filter(|&a| a != agent).collect()
            }
        }
    }

    /// Returns `true` if the graph is connected (or has at most one agent).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// The connected components of the topology.
    pub fn components(&self) -> Vec<Vec<AgentId>> {
        match &self.edges {
            EdgeSet::Explicit(edges) => connected_components(self.n, edges, |_| true),
            EdgeSet::Complete { n, .. } => {
                // Agents inside the clique form one component; agents
                // beyond it (possible only via deserialized data) would be
                // isolated, but `complete(n)` always has `n == self.n`.
                let clique: Vec<AgentId> = (0..*n.min(&self.n)).map(AgentId).collect();
                let mut components = Vec::new();
                if !clique.is_empty() {
                    components.push(clique);
                }
                for i in *n..self.n {
                    components.push(vec![AgentId(i)]);
                }
                components
            }
        }
    }
}

/// Computes the connected components of the subgraph of the `n`-agent graph
/// with edge set `edges`, restricted to the agents accepted by `include`.
///
/// Agents excluded by `include` do not appear in any component.
///
/// This is the flat-core formulation: a `Vec`-backed CSR adjacency built in
/// two passes, then an ascending component-labelling sweep.  Because labels
/// are assigned in ascending order of each component's smallest member, and
/// members are emitted by one final ascending pass over all agents, every
/// component comes out sorted and components are ordered by their minimum —
/// byte-identical to the old `BTreeMap`-adjacency BFS, at a fraction of the
/// cost.
pub(crate) fn connected_components(
    n: usize,
    edges: &BTreeSet<Edge>,
    include: impl Fn(AgentId) -> bool,
) -> Vec<Vec<AgentId>> {
    const NONE: u32 = u32::MAX;
    // Pass 1: collect the live (both-endpoints-included) edges once, so the
    // `include` closure runs a single time per endpoint.
    let live: Vec<(u32, u32)> = edges
        .iter()
        .map(|e| e.endpoints())
        .filter(|&(a, b)| include(a) && include(b))
        .map(|(a, b)| (a.index() as u32, b.index() as u32))
        .collect();
    // Pass 2: CSR adjacency — degree count, prefix sum, fill.
    let mut xadj = vec![0u32; n + 1];
    for &(a, b) in &live {
        *at_mut(&mut xadj, a as usize + 1) += 1;
        *at_mut(&mut xadj, b as usize + 1) += 1;
    }
    for i in 1..=n {
        *at_mut(&mut xadj, i) += at(&xadj, i - 1);
    }
    let mut cursor: Vec<u32> = xadj.iter().copied().take(n).collect();
    let mut adj = vec![0u32; at(&xadj, n) as usize];
    for &(a, b) in &live {
        let ca = at_mut(&mut cursor, a as usize);
        *at_mut(&mut adj, *ca as usize) = b;
        *ca += 1;
        let cb = at_mut(&mut cursor, b as usize);
        *at_mut(&mut adj, *cb as usize) = a;
        *cb += 1;
    }
    // Pass 3: label components, scanning start agents in ascending order so
    // label k's component has the k-th smallest minimum member.
    let mut comp = vec![NONE; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut sizes: Vec<u32> = Vec::new();
    for i in 0..n {
        if at(&comp, i) != NONE || !include(AgentId(i)) {
            continue;
        }
        let label = sizes.len() as u32;
        let mut size = 0u32;
        *at_mut(&mut comp, i) = label;
        stack.push(i as u32);
        while let Some(a) = stack.pop() {
            size += 1;
            let lo = at(&xadj, a as usize) as usize;
            let hi = at(&xadj, a as usize + 1) as usize;
            for t in lo..hi {
                let b = at(&adj, t) as usize;
                if at(&comp, b) == NONE {
                    *at_mut(&mut comp, b) = label;
                    stack.push(b as u32);
                }
            }
        }
        sizes.push(size);
    }
    // Pass 4: emit members ascending — components arrive pre-sorted.
    let mut components: Vec<Vec<AgentId>> = sizes
        .iter()
        .map(|&s| Vec::with_capacity(s as usize))
        .collect();
    for (i, &label) in comp.iter().enumerate() {
        if label != NONE {
            at_mut(&mut components, label as usize).push(AgentId(i));
        }
    }
    components
}

/// Checked slice read used throughout the flat connectivity core: identical
/// codegen to `v[i]` but without raw indexing (detlint's panic budget counts
/// `[idx]` in library code).
#[inline]
pub(crate) fn at<T: Copy>(v: &[T], i: usize) -> T {
    *v.get(i).expect("flat-core index in range")
}

/// Checked mutable slice access; see [`at`].
#[inline]
pub(crate) fn at_mut<T>(v: &mut [T], i: usize) -> &mut T {
    v.get_mut(i).expect("flat-core index in range")
}

/// Checked shared slice access for non-`Copy` elements; see [`at`].
#[inline]
pub(crate) fn at_ref<T>(v: &[T], i: usize) -> &T {
    v.get(i).expect("flat-core index in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edge_is_normalised_and_symmetric() {
        let e1 = Edge::new(AgentId(3), AgentId(1));
        let e2 = Edge::new(AgentId(1), AgentId(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.lo(), AgentId(1));
        assert_eq!(e1.hi(), AgentId(3));
        assert_eq!(e1.other(AgentId(1)), Some(AgentId(3)));
        assert_eq!(e1.other(AgentId(3)), Some(AgentId(1)));
        assert_eq!(e1.other(AgentId(7)), None);
        assert!(e1.touches(AgentId(1)));
        assert!(!e1.touches(AgentId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_edges_panic() {
        let _ = Edge::new(AgentId(2), AgentId(2));
    }

    #[test]
    fn complete_graph_edge_count() {
        let t = Topology::complete(5);
        assert_eq!(t.agent_count(), 5);
        assert_eq!(t.edge_count(), 10);
        assert!(t.is_connected());
        assert!(t.has_edge(AgentId(0), AgentId(4)));
    }

    #[test]
    fn line_graph_structure() {
        let t = Topology::line(4);
        assert_eq!(t.edge_count(), 3);
        assert!(t.has_edge(AgentId(0), AgentId(1)));
        assert!(!t.has_edge(AgentId(0), AgentId(2)));
        assert!(t.is_connected());
        assert_eq!(t.neighbors(AgentId(1)), vec![AgentId(0), AgentId(2)]);
        assert_eq!(t.neighbors(AgentId(0)), vec![AgentId(1)]);
    }

    #[test]
    fn ring_graph_structure() {
        let t = Topology::ring(5);
        assert_eq!(t.edge_count(), 5);
        assert!(t.has_edge(AgentId(4), AgentId(0)));
        let tiny = Topology::ring(2);
        assert_eq!(tiny.edge_count(), 1);
    }

    #[test]
    fn star_graph_structure() {
        let t = Topology::star(5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.neighbors(AgentId(0)).len(), 4);
        assert_eq!(t.neighbors(AgentId(3)), vec![AgentId(0)]);
    }

    #[test]
    fn grid_graph_structure() {
        let t = Topology::grid(2, 3);
        assert_eq!(t.agent_count(), 6);
        // 2 rows × 2 horizontal edges + 3 vertical edges
        assert_eq!(t.edge_count(), 2 * 2 + 3);
        assert!(t.is_connected());
    }

    #[test]
    fn empty_graph_components_are_singletons() {
        let t = Topology::empty(3);
        assert!(!t.is_connected());
        let comps = t.components();
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let t = Topology::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let comps = t.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![AgentId(0), AgentId(1), AgentId(2)]);
        assert_eq!(comps[1], vec![AgentId(3), AgentId(4)]);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &p in &[0.05, 0.3, 0.9] {
            let t = Topology::random_connected(12, p, &mut rng);
            assert!(t.is_connected(), "p = {p}");
        }
    }

    #[test]
    fn random_connected_sparse_is_connected_and_sparse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for &(n, deg) in &[(1usize, 4.0), (2, 1.0), (50, 4.0), (400, 6.0)] {
            let t = Topology::random_connected_sparse(n, deg, &mut rng);
            assert!(t.is_connected(), "n = {n}, deg = {deg}");
            // Sparse: nowhere near the C(n,2) clique for the larger sizes.
            if n >= 50 {
                assert!(t.edge_count() < n * 8, "n = {n}: {} edges", t.edge_count());
                assert!(t.edge_count() >= n - 1);
            }
        }
        // Determinism given a seed.
        let a =
            Topology::random_connected_sparse(64, 5.0, &mut rand::rngs::StdRng::seed_from_u64(3));
        let b =
            Topology::random_connected_sparse(64, 5.0, &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        // Degenerate dense request collapses to the clique.
        let dense =
            Topology::random_connected_sparse(6, 10.0, &mut rand::rngs::StdRng::seed_from_u64(1));
        assert_eq!(dense, Topology::complete(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut t = Topology::empty(2);
        t.add_edge(AgentId(0), AgentId(5));
    }

    #[test]
    fn single_agent_topology_is_connected() {
        let t = Topology::empty(1);
        assert!(t.is_connected());
        assert_eq!(t.components(), vec![vec![AgentId(0)]]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AgentId(3).to_string(), "a3");
        assert_eq!(Edge::new(AgentId(1), AgentId(0)).to_string(), "a0—a1");
    }

    #[test]
    fn symbolic_complete_matches_explicit_clique() {
        let symbolic = Topology::complete(6);
        let mut explicit = Topology::empty(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                explicit.add_edge(AgentId(i), AgentId(j));
            }
        }
        assert_eq!(symbolic, explicit);
        assert_eq!(explicit, symbolic);
        assert_eq!(symbolic.edges(), explicit.edges());
        assert_eq!(
            symbolic.neighbors(AgentId(2)),
            explicit.neighbors(AgentId(2))
        );
        assert_eq!(symbolic.components(), explicit.components());
        assert_eq!(symbolic.clone(), symbolic);
        assert_ne!(symbolic, Topology::ring(6));
    }

    #[test]
    fn huge_complete_graph_is_cheap_without_materialising() {
        // 100k agents ⇒ ~5·10⁹ edges if expanded; every query below must
        // use the closed forms.
        let t = Topology::complete(100_000);
        assert_eq!(t.edge_count(), 100_000 * 99_999 / 2);
        assert!(t.has_edge(AgentId(0), AgentId(99_999)));
        assert!(!t.has_edge(AgentId(0), AgentId(0)));
        assert!(!t.has_edge(AgentId(0), AgentId(100_000)));
        assert!(t.is_connected());
        assert_eq!(t.components().len(), 1);
        assert_eq!(t.neighbors(AgentId(5)).len(), 99_999);
        assert!(t.neighbors(AgentId(100_000)).is_empty());
        let _ = t.clone(); // clones stay symbolic (and cheap)
    }

    #[test]
    fn complete_graph_mutation_expands_the_clique() {
        let mut t = Topology::complete(3);
        t.add_edge(AgentId(0), AgentId(1)); // already present
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t, Topology::complete(3));
    }

    #[test]
    fn topology_wire_shape_is_representation_independent() {
        let symbolic = Topology::complete(3);
        let explicit = Topology::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(symbolic.to_value(), explicit.to_value());
        let back = Topology::from_value(&symbolic.to_value()).expect("round-trips");
        assert_eq!(back, symbolic);
        assert!(Topology::from_value(&Value::Null).is_err());
    }
}
