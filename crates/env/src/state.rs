//! Instantaneous environment states and the agent grouping they induce.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize, Value};

use crate::topology::connected_components;
use crate::{AgentId, Edge, EnvChanges, Topology};

/// One state `G` of the environment: which edges are currently available
/// for communication and which agents are currently enabled.
///
/// An [`EnvState`] induces a partition of the agents into *groups*: the
/// connected components of the enabled subgraph restricted to enabled
/// agents.  Each group can execute one collaborative step of the group
/// transition relation `R`; disabled agents are frozen (they take no step
/// and keep their state), which realises the paper's reflexivity requirement
/// for them.
///
/// The enabled sets are held behind `Arc` and mutated copy-on-write, so
/// cloning a state — which environments and traces do per round — is O(1)
/// and never forces a million-entry set copy.  Equality still compares the
/// set *contents* (with a pointer-identity fast path).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnvState {
    agent_count: usize,
    enabled_edges: Arc<BTreeSet<Edge>>,
    enabled_agents: Arc<BTreeSet<AgentId>>,
}

// Hand-written serde keeping the exact wire shape the old by-value derive
// produced, so records and golden traces are unchanged by the `Arc`-backed
// representation.
impl Serialize for EnvState {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("agent_count".into(), self.agent_count.to_value()),
            ("enabled_edges".into(), self.enabled_edges.to_value()),
            ("enabled_agents".into(), self.enabled_agents.to_value()),
        ])
    }
}

impl Deserialize for EnvState {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| serde::Error(format!("EnvState missing field `{name}`")))
        };
        Ok(EnvState {
            agent_count: usize::from_value(field("agent_count")?)?,
            enabled_edges: Arc::new(BTreeSet::from_value(field("enabled_edges")?)?),
            enabled_agents: Arc::new(BTreeSet::from_value(field("enabled_agents")?)?),
        })
    }
}

impl EnvState {
    /// Creates an environment state for `agent_count` agents with the given
    /// enabled edges and enabled agents.
    ///
    /// Edges whose endpoints are out of range are rejected with a panic, as
    /// are enabled agents out of range.
    pub fn new(
        agent_count: usize,
        enabled_edges: impl IntoIterator<Item = Edge>,
        enabled_agents: impl IntoIterator<Item = AgentId>,
    ) -> Self {
        let enabled_edges: BTreeSet<Edge> = enabled_edges.into_iter().collect();
        let enabled_agents: BTreeSet<AgentId> = enabled_agents.into_iter().collect();
        for e in &enabled_edges {
            assert!(
                e.hi().index() < agent_count,
                "edge {e} out of range for {agent_count} agents"
            );
        }
        for a in &enabled_agents {
            assert!(
                a.index() < agent_count,
                "agent {a} out of range for {agent_count} agents"
            );
        }
        EnvState {
            agent_count,
            enabled_edges: Arc::new(enabled_edges),
            enabled_agents: Arc::new(enabled_agents),
        }
    }

    /// A fully benign state: every edge of `topology` is available and every
    /// agent is enabled.  The edge set is aliased from the topology (not
    /// copied); the state is exactly equal to one built by hand.
    pub fn fully_enabled(topology: &Topology) -> Self {
        EnvState {
            agent_count: topology.agent_count(),
            enabled_edges: topology.shared_edges(),
            enabled_agents: Arc::new(topology.agents().collect()),
        }
    }

    /// A fully adversarial state: no edges, no enabled agents — nothing can
    /// happen.  (The paper: without assumptions, "the environment can
    /// permanently disable all agents".)
    pub fn fully_disabled(agent_count: usize) -> Self {
        EnvState::new(agent_count, [], [])
    }

    /// Number of agents in the system (enabled or not).
    pub fn agent_count(&self) -> usize {
        self.agent_count
    }

    /// The set of currently available (enabled) edges.
    pub fn enabled_edges(&self) -> &BTreeSet<Edge> {
        &self.enabled_edges
    }

    /// The set of currently enabled agents.
    pub fn enabled_agents(&self) -> &BTreeSet<AgentId> {
        &self.enabled_agents
    }

    /// Returns `true` if `agent` is enabled in this state.
    pub fn is_agent_enabled(&self, agent: AgentId) -> bool {
        self.enabled_agents.contains(&agent)
    }

    /// Returns `true` if the edge `{a, b}` is available *and* both endpoints
    /// are enabled, i.e. the two agents can actually collaborate now.
    pub fn can_communicate(&self, a: AgentId, b: AgentId) -> bool {
        a != b
            && self.is_agent_enabled(a)
            && self.is_agent_enabled(b)
            && self.enabled_edges.contains(&Edge::new(a, b))
    }

    /// Returns `true` if `other` induces the same agent partition as `self`:
    /// identical enabled-edge and enabled-agent sets.  This is the
    /// memoisation fingerprint simulators use to reuse [`EnvState::groups`]
    /// across consecutive rounds — connected components only change when the
    /// enabled sets change, and set equality is far cheaper than a
    /// union-find recomputation.
    pub fn same_connectivity(&self, other: &EnvState) -> bool {
        // The enabled sets plus the agent count are the whole state, so the
        // derived equality is exactly the connectivity fingerprint; aliased
        // sets short-circuit without a content comparison.
        self.agent_count == other.agent_count
            && (Arc::ptr_eq(&self.enabled_edges, &other.enabled_edges)
                || self.enabled_edges == other.enabled_edges)
            && (Arc::ptr_eq(&self.enabled_agents, &other.enabled_agents)
                || self.enabled_agents == other.enabled_agents)
    }

    /// The partition `π` induced by this environment state: connected
    /// components of the enabled subgraph restricted to enabled agents.
    ///
    /// Every enabled agent appears in exactly one group (isolated enabled
    /// agents form singleton groups); disabled agents appear in no group.
    /// Groups are returned sorted by their smallest member.
    pub fn groups(&self) -> Vec<Vec<AgentId>> {
        connected_components(self.agent_count, &self.enabled_edges, |a| {
            self.enabled_agents.contains(&a)
        })
    }

    /// Groups of size at least two — the only ones that can perform a
    /// non-trivial collaborative state change in the paper's examples
    /// (singleton groups can only take the reflexive step).
    pub fn collaborative_groups(&self) -> Vec<Vec<AgentId>> {
        self.groups().into_iter().filter(|g| g.len() >= 2).collect()
    }

    /// Returns `true` if every enabled agent is in a single group covering
    /// all agents of the system (i.e. the whole system can collaborate).
    pub fn is_fully_connected(&self) -> bool {
        // One rescan, not two: compute the partition once and inspect it.
        let groups = self.groups();
        match groups.first() {
            Some(g) => groups.len() == 1 && g.len() == self.agent_count,
            None => false,
        }
    }

    /// Applies an incremental connectivity update in place: downed edges
    /// and agents are removed, upped ones inserted.  The result must equal
    /// the state a full rescan would have produced — that is the
    /// [`Environment::step_delta`](crate::Environment::step_delta)
    /// contract, and the delta-equivalence proptests enforce it for every
    /// builtin environment.
    ///
    /// # Panics
    ///
    /// Panics if an upped edge or agent is out of range (the same guard as
    /// [`EnvState::new`]).
    pub fn apply_changes(&mut self, changes: &EnvChanges) {
        if !changes.edges_down.is_empty() || !changes.edges_up.is_empty() {
            let edges = Arc::make_mut(&mut self.enabled_edges);
            for e in &changes.edges_down {
                edges.remove(e);
            }
            for e in &changes.edges_up {
                assert!(
                    e.hi().index() < self.agent_count,
                    "edge {e} out of range for {} agents",
                    self.agent_count
                );
                edges.insert(*e);
            }
        }
        if !changes.agents_down.is_empty() || !changes.agents_up.is_empty() {
            let agents = Arc::make_mut(&mut self.enabled_agents);
            for a in &changes.agents_down {
                agents.remove(a);
            }
            for a in &changes.agents_up {
                assert!(
                    a.index() < self.agent_count,
                    "agent {a} out of range for {} agents",
                    self.agent_count
                );
                agents.insert(*a);
            }
        }
    }

    /// Intersection of two states over the same agent set: an edge or agent
    /// is enabled only if it is enabled in both.  Used to compose
    /// environments (e.g. link churn ∧ crash faults).
    pub fn intersect(&self, other: &EnvState) -> EnvState {
        assert_eq!(
            self.agent_count, other.agent_count,
            "cannot intersect states over different agent sets"
        );
        EnvState {
            agent_count: self.agent_count,
            enabled_edges: Arc::new(
                self.enabled_edges
                    .intersection(&other.enabled_edges)
                    .copied()
                    .collect(),
            ),
            enabled_agents: Arc::new(
                self.enabled_agents
                    .intersection(&other.enabled_agents)
                    .copied()
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo4() -> Topology {
        Topology::line(4)
    }

    #[test]
    fn fully_enabled_state_has_one_group() {
        let s = EnvState::fully_enabled(&topo4());
        assert!(s.is_fully_connected());
        assert_eq!(s.groups().len(), 1);
        assert_eq!(s.groups()[0].len(), 4);
        assert!(s.can_communicate(AgentId(0), AgentId(1)));
        assert!(!s.can_communicate(AgentId(0), AgentId(2))); // no direct edge
    }

    #[test]
    fn fully_disabled_state_has_no_groups() {
        let s = EnvState::fully_disabled(4);
        assert!(s.groups().is_empty());
        assert!(s.collaborative_groups().is_empty());
        assert!(!s.is_fully_connected());
        assert!(!s.can_communicate(AgentId(0), AgentId(1)));
    }

    #[test]
    fn disabled_agent_is_excluded_from_groups() {
        let topo = topo4();
        let s = EnvState::new(
            4,
            topo.edges().iter().copied(),
            [AgentId(0), AgentId(1), AgentId(3)], // agent 2 disabled
        );
        let groups = s.groups();
        // 0-1 form a group; 3 is isolated because 2 is down.
        assert_eq!(groups, vec![vec![AgentId(0), AgentId(1)], vec![AgentId(3)]]);
        assert_eq!(s.collaborative_groups().len(), 1);
        assert!(!s.can_communicate(AgentId(1), AgentId(2)));
    }

    #[test]
    fn missing_edge_partitions_the_line() {
        let s = EnvState::new(
            4,
            [
                Edge::new(AgentId(0), AgentId(1)),
                Edge::new(AgentId(2), AgentId(3)),
            ],
            (0..4).map(AgentId),
        );
        let groups = s.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![AgentId(0), AgentId(1)]);
        assert_eq!(groups[1], vec![AgentId(2), AgentId(3)]);
    }

    #[test]
    fn isolated_enabled_agents_are_singleton_groups() {
        let s = EnvState::new(3, [], (0..3).map(AgentId));
        let groups = s.groups();
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
        assert!(s.collaborative_groups().is_empty());
    }

    #[test]
    fn same_connectivity_tracks_enabled_sets() {
        let topo = topo4();
        let a = EnvState::fully_enabled(&topo);
        let b = EnvState::fully_enabled(&topo);
        assert!(a.same_connectivity(&b));
        let c = EnvState::new(
            4,
            topo.edges().iter().copied(),
            [AgentId(0), AgentId(1), AgentId(3)],
        );
        assert!(!a.same_connectivity(&c));
        assert!(!a.same_connectivity(&EnvState::fully_disabled(5)));
    }

    #[test]
    fn intersect_is_pointwise_and() {
        let topo = topo4();
        let all = EnvState::fully_enabled(&topo);
        let only_edge01 =
            EnvState::new(4, [Edge::new(AgentId(0), AgentId(1))], (0..4).map(AgentId));
        let both = all.intersect(&only_edge01);
        assert_eq!(both.enabled_edges().len(), 1);
        assert_eq!(both.enabled_agents().len(), 4);

        let crash2 = EnvState::new(
            4,
            topo.edges().iter().copied(),
            [AgentId(0), AgentId(1), AgentId(3)],
        );
        let composed = only_edge01.intersect(&crash2);
        assert!(composed.can_communicate(AgentId(0), AgentId(1)));
        assert!(!composed.can_communicate(AgentId(2), AgentId(3)));
    }

    #[test]
    #[should_panic(expected = "different agent sets")]
    fn intersect_requires_same_agent_count() {
        let a = EnvState::fully_disabled(3);
        let b = EnvState::fully_disabled(4);
        let _ = a.intersect(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = EnvState::new(2, [Edge::new(AgentId(0), AgentId(5))], []);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_agent_rejected() {
        let _ = EnvState::new(2, [], [AgentId(2)]);
    }
}
