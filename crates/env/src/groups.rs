//! Incremental group maintenance over the flat CSR core.
//!
//! A [`GroupIndex`] tracks the partition of agents into groups — connected
//! components of the enabled subgraph restricted to enabled agents — under
//! a stream of [`EnvChanges`] deltas, at cost proportional to the *change*
//! rather than the graph:
//!
//! - **edge up** merges two groups by splicing their sorted member lists
//!   (a flat union-find-style merge keyed by smallest member);
//! - **edge down** runs a bidirectional BFS confined to the affected
//!   component, with epoch-stamped `visited: Vec<u32>` scratch instead of
//!   fresh `BTreeSet`s, and splits only if the endpoints really separated;
//! - **agent up/down** reduce to the two cases above plus a bounded
//!   re-label of the touched component;
//! - [`EnvDelta::Full`](crate::EnvDelta::Full) falls back to one flat full
//!   rescan ([`GroupIndex::reset_from_state`]).
//!
//! Groups are always exposed sorted internally and ordered by smallest
//! member — exactly the order [`EnvState::groups`] produces — so records
//! derived from either path are byte-identical.

use std::sync::Arc;

use crate::csr::Csr;
use crate::topology::{at, at_mut, at_ref};
use crate::{AgentId, Edge, EnvChanges, EnvState, Topology};

const NONE: u32 = u32::MAX;

/// Incrementally maintained agent partition (see module docs).
#[derive(Debug)]
pub struct GroupIndex {
    csr: Arc<Csr>,
    /// Enablement bitmask indexed by dense CSR edge id.
    edge_enabled: Vec<bool>,
    /// Enablement bitmask indexed by agent index.
    agent_enabled: Vec<bool>,
    enabled_edge_count: usize,
    enabled_agent_count: usize,
    /// Enabled edges whose endpoints are both enabled (the edges a group
    /// step can actually use).
    usable_edge_count: usize,
    /// Agent index → slot id of its group (`NONE` for disabled agents).
    comp_of: Vec<u32>,
    /// Slot id → sorted member list; empty slots are on the free list.
    slots: Vec<Vec<AgentId>>,
    free: Vec<u32>,
    /// Slot ids ordered by smallest member — the public group order.
    order: Vec<u32>,
    /// Epoch-stamped BFS scratch (no per-delta allocation).
    visited: Vec<u32>,
    epoch: u32,
    queue_a: Vec<u32>,
    queue_b: Vec<u32>,
}

impl GroupIndex {
    /// Creates an index over `topology` with *nothing* enabled.
    ///
    /// Building the index materialises the topology's CSR adjacency (and
    /// thus a symbolic clique); callers that can stay symbolic should not
    /// construct one.
    pub fn new(topology: &Topology) -> Self {
        let csr = topology.csr();
        let n = csr.agent_count();
        let m = csr.edge_count();
        GroupIndex {
            edge_enabled: vec![false; m],
            agent_enabled: vec![false; n],
            enabled_edge_count: 0,
            enabled_agent_count: 0,
            usable_edge_count: 0,
            comp_of: vec![NONE; n],
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            visited: vec![0; n],
            epoch: 0,
            queue_a: Vec::new(),
            queue_b: Vec::new(),
            csr,
        }
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agent_enabled.len()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.order.len()
    }

    /// The `i`-th group in ascending-minimum order, sorted ascending.
    pub fn group(&self, i: usize) -> &[AgentId] {
        let slot: &Vec<AgentId> = at_ref(&self.slots, at(&self.order, i) as usize);
        slot
    }

    /// All groups, in the same order and encoding as
    /// [`EnvState::groups`].
    pub fn groups(&self) -> Vec<Vec<AgentId>> {
        self.order
            .iter()
            .map(|&s| at_ref(&self.slots, s as usize).clone())
            .collect()
    }

    /// Enabled edges whose two endpoints are both enabled.
    pub fn usable_edge_count(&self) -> usize {
        self.usable_edge_count
    }

    /// Reconstructs the equivalent [`EnvState`] (for trace recording and
    /// tests; not on the hot path).
    pub fn to_env_state(&self) -> EnvState {
        let edges = self
            .csr
            .edges()
            .iter()
            .zip(self.edge_enabled.iter())
            .filter(|(_, &on)| on)
            .map(|(e, _)| *e);
        let agents = self
            .agent_enabled
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| AgentId(i));
        EnvState::new(self.agent_count(), edges, agents)
    }

    /// Enables every edge and agent, then rescans.
    pub fn reset_all_enabled(&mut self) {
        self.edge_enabled.fill(true);
        self.agent_enabled.fill(true);
        self.enabled_edge_count = self.edge_enabled.len();
        self.enabled_agent_count = self.agent_enabled.len();
        self.usable_edge_count = self.enabled_edge_count;
        self.rebuild_groups();
    }

    /// Full-rescan fallback: adopts `state`'s enabled sets wholesale.
    ///
    /// Edges outside the topology are ignored — the [`Environment`]
    /// (crate::Environment) contract says they never occur.
    pub fn reset_from_state(&mut self, state: &EnvState) {
        self.edge_enabled.fill(false);
        self.agent_enabled.fill(false);
        self.enabled_edge_count = 0;
        self.enabled_agent_count = 0;
        // Two-pointer walk: both the state's edge set and the CSR edge list
        // iterate in ascending edge order.
        let mut ids = self.csr.edges().iter().enumerate();
        let mut cursor = ids.next();
        for e in state.enabled_edges() {
            while let Some((_, ce)) = cursor {
                if ce < e {
                    cursor = ids.next();
                } else {
                    break;
                }
            }
            if let Some((eid, ce)) = cursor {
                if ce == e {
                    *at_mut(&mut self.edge_enabled, eid) = true;
                    self.enabled_edge_count += 1;
                    cursor = ids.next();
                }
            }
        }
        for a in state.enabled_agents() {
            if a.index() < self.agent_enabled.len() {
                *at_mut(&mut self.agent_enabled, a.index()) = true;
                self.enabled_agent_count += 1;
            }
        }
        self.recount_usable();
        self.rebuild_groups();
    }

    /// Returns `true` if this index describes exactly the connectivity of
    /// `state` — the incremental analogue of
    /// [`EnvState::same_connectivity`].
    pub fn same_connectivity(&self, state: &EnvState) -> bool {
        if state.agent_count() != self.agent_count()
            || state.enabled_agents().len() != self.enabled_agent_count
            || state.enabled_edges().len() != self.enabled_edge_count
        {
            return false;
        }
        for a in state.enabled_agents() {
            if a.index() >= self.agent_enabled.len() || !at(&self.agent_enabled, a.index()) {
                return false;
            }
        }
        // Equal counts + every member present ⇒ equal sets.
        let mut ids = self.csr.edges().iter().enumerate();
        let mut cursor = ids.next();
        for e in state.enabled_edges() {
            loop {
                match cursor {
                    Some((eid, ce)) if ce == e => {
                        if !at(&self.edge_enabled, eid) {
                            return false;
                        }
                        cursor = ids.next();
                        break;
                    }
                    Some((_, ce)) if ce < e => cursor = ids.next(),
                    // The state enables an edge the topology lacks.
                    _ => return false,
                }
            }
        }
        true
    }

    /// Applies one incremental connectivity update, maintaining the group
    /// partition at cost proportional to the change.  Mirrors
    /// [`EnvState::apply_changes`]: downed edges/agents are removed, upped
    /// ones inserted, and redundant entries (downing a down edge, upping an
    /// up agent) are no-ops.
    pub fn apply_changes(&mut self, changes: &EnvChanges) {
        // A lone downed edge gets the bounded bidirectional probe; a batch
        // is resolved against the final masks with one re-label per affected
        // component, so k edges leaving one component cost one sweep, not k.
        match changes.edges_down.as_slice() {
            [] => {}
            [e] => self.edge_down(e),
            batch => self.edges_down_batch(batch),
        }
        for e in &changes.edges_up {
            self.edge_up(e);
        }
        for a in &changes.agents_down {
            self.agent_down(*a);
        }
        for a in &changes.agents_up {
            self.agent_up(*a);
        }
    }

    fn edge_up(&mut self, e: &Edge) {
        let Some(eid) = self.csr.edge_id(e) else {
            return; // outside the topology: unreachable by contract
        };
        if at(&self.edge_enabled, eid as usize) {
            return;
        }
        *at_mut(&mut self.edge_enabled, eid as usize) = true;
        self.enabled_edge_count += 1;
        let (a, b) = (e.lo().index(), e.hi().index());
        if at(&self.agent_enabled, a) && at(&self.agent_enabled, b) {
            self.usable_edge_count += 1;
            self.merge_slots(at(&self.comp_of, a), at(&self.comp_of, b));
        }
    }

    fn edge_down(&mut self, e: &Edge) {
        let Some(eid) = self.csr.edge_id(e) else {
            return;
        };
        if !at(&self.edge_enabled, eid as usize) {
            return;
        }
        *at_mut(&mut self.edge_enabled, eid as usize) = false;
        self.enabled_edge_count -= 1;
        let (a, b) = (e.lo().index(), e.hi().index());
        if at(&self.agent_enabled, a) && at(&self.agent_enabled, b) {
            self.usable_edge_count -= 1;
            self.resplit_after_edge_down(a as u32, b as u32);
        }
    }

    /// Batched form of [`Self::edge_down`]: flips every mask first, then
    /// re-labels each affected component once against the final masks.  The
    /// result is the same partition the one-at-a-time path reaches (both are
    /// the connected components of the final enabled subgraph, in
    /// ascending-min order) without paying one bidirectional BFS per edge.
    fn edges_down_batch(&mut self, edges: &[Edge]) {
        let mut affected: Vec<u32> = Vec::new();
        for e in edges {
            let Some(eid) = self.csr.edge_id(e) else {
                continue; // outside the topology: unreachable by contract
            };
            if !at(&self.edge_enabled, eid as usize) {
                continue;
            }
            *at_mut(&mut self.edge_enabled, eid as usize) = false;
            self.enabled_edge_count -= 1;
            let (a, b) = (e.lo().index(), e.hi().index());
            if at(&self.agent_enabled, a) && at(&self.agent_enabled, b) {
                self.usable_edge_count -= 1;
                // A usable edge joins two enabled agents, so both endpoints
                // sit in the same (pre-batch) component.
                affected.push(at(&self.comp_of, a));
            }
        }
        affected.sort_unstable();
        affected.dedup();
        for slot in affected {
            self.remove_from_order(slot);
            let members = std::mem::take(at_mut(&mut self.slots, slot as usize));
            self.free.push(slot);
            for &m in &members {
                *at_mut(&mut self.comp_of, m.index()) = NONE;
            }
            self.relabel_members(members.iter().copied());
        }
    }

    fn agent_up(&mut self, a: AgentId) {
        let i = a.index();
        if i >= self.agent_enabled.len() || at(&self.agent_enabled, i) {
            return;
        }
        *at_mut(&mut self.agent_enabled, i) = true;
        self.enabled_agent_count += 1;
        // New singleton group for `a`.
        let slot = self.alloc_slot(vec![a]);
        *at_mut(&mut self.comp_of, i) = slot;
        self.insert_into_order(slot);
        // Every usable incident edge now exists; merge across each.
        let incident: Vec<(u32, u32)> = self.csr.neighbors(i).collect();
        for (nbr, eid) in incident {
            if at(&self.edge_enabled, eid as usize) && at(&self.agent_enabled, nbr as usize) {
                self.usable_edge_count += 1;
                self.merge_slots(at(&self.comp_of, i), at(&self.comp_of, nbr as usize));
            }
        }
    }

    fn agent_down(&mut self, a: AgentId) {
        let i = a.index();
        if i >= self.agent_enabled.len() || !at(&self.agent_enabled, i) {
            return;
        }
        *at_mut(&mut self.agent_enabled, i) = false;
        self.enabled_agent_count -= 1;
        let incident: Vec<(u32, u32)> = self.csr.neighbors(i).collect();
        for (nbr, eid) in incident {
            if at(&self.edge_enabled, eid as usize) && at(&self.agent_enabled, nbr as usize) {
                self.usable_edge_count -= 1;
            }
        }
        let slot = at(&self.comp_of, i);
        *at_mut(&mut self.comp_of, i) = NONE;
        // Remove the old group from the order, drop `a` from its members,
        // and re-label what remains (it may fall apart into several groups).
        self.remove_from_order(slot);
        let members = std::mem::take(at_mut(&mut self.slots, slot as usize));
        self.free.push(slot);
        for &m in &members {
            *at_mut(&mut self.comp_of, m.index()) = NONE;
        }
        self.relabel_members(members.iter().copied().filter(|&m| m != a));
    }

    /// Re-labels a set of enabled agents whose old group assignment was
    /// cleared: BFS from each in ascending order (so new slots appear in
    /// ascending-min order), then rebuild the sorted member lists.
    fn relabel_members(&mut self, members: impl Iterator<Item = AgentId> + Clone) {
        let mut pieces: Vec<(u32, AgentId)> = Vec::new();
        for m in members.clone() {
            if at(&self.comp_of, m.index()) != NONE {
                continue;
            }
            let slot = self.alloc_slot(Vec::new());
            *at_mut(&mut self.comp_of, m.index()) = slot;
            self.queue_a.clear();
            self.queue_a.push(m.index() as u32);
            let mut head = 0;
            while head < self.queue_a.len() {
                let x = at(&self.queue_a, head);
                head += 1;
                for (nbr, eid) in self.csr.neighbors(x as usize) {
                    if at(&self.edge_enabled, eid as usize)
                        && at(&self.agent_enabled, nbr as usize)
                        && at(&self.comp_of, nbr as usize) == NONE
                    {
                        *at_mut(&mut self.comp_of, nbr as usize) = slot;
                        self.queue_a.push(nbr);
                    }
                }
            }
            // `m` is the smallest member of its piece (ascending scan over a
            // sorted member list).
            pieces.push((slot, m));
        }
        // Second pass in ascending member order keeps every list sorted.
        for m in members {
            let slot = at(&self.comp_of, m.index());
            at_mut(&mut self.slots, slot as usize).push(m);
        }
        // Order insertion last: `insert_into_order_with` inspects the other
        // ordered slots' minima, so every piece must be populated first.
        for (slot, min) in pieces {
            self.insert_into_order_with(slot, min);
        }
    }

    /// Merges the groups in slots `x` and `y` (no-op if equal).  The slot
    /// holding the smaller minimum keeps its id — and therefore its
    /// position in the order — while the other is freed.
    fn merge_slots(&mut self, x: u32, y: u32) {
        if x == y {
            return;
        }
        let (keep, gone) = if self.slot_min(x) < self.slot_min(y) {
            (x, y)
        } else {
            (y, x)
        };
        self.remove_from_order(gone);
        let gone_members = std::mem::take(at_mut(&mut self.slots, gone as usize));
        self.free.push(gone);
        for m in &gone_members {
            *at_mut(&mut self.comp_of, m.index()) = keep;
        }
        let keep_members = std::mem::take(at_mut(&mut self.slots, keep as usize));
        let mut merged = Vec::with_capacity(keep_members.len() + gone_members.len());
        let mut ka = keep_members.iter().copied().peekable();
        let mut ga = gone_members.iter().copied().peekable();
        loop {
            match (ka.peek(), ga.peek()) {
                (Some(&k), Some(&g)) => {
                    if k < g {
                        merged.push(k);
                        ka.next();
                    } else {
                        merged.push(g);
                        ga.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(ka.by_ref());
                }
                (None, Some(_)) => {
                    merged.extend(ga.by_ref());
                }
                (None, None) => break,
            }
        }
        *at_mut(&mut self.slots, keep as usize) = merged;
    }

    /// After disabling the usable edge `(a, b)`: decides connectivity with a
    /// bidirectional BFS confined to the affected component and splits it if
    /// the endpoints separated.
    fn resplit_after_edge_down(&mut self, a: u32, b: u32) {
        let slot = at(&self.comp_of, a as usize);
        debug_assert_eq!(slot, at(&self.comp_of, b as usize));
        if self.epoch >= u32::MAX - 2 {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let ea = self.epoch;
        self.epoch += 1;
        let eb = self.epoch;
        let mut qa = std::mem::take(&mut self.queue_a);
        let mut qb = std::mem::take(&mut self.queue_b);
        qa.clear();
        qb.clear();
        qa.push(a);
        *at_mut(&mut self.visited, a as usize) = ea;
        qb.push(b);
        *at_mut(&mut self.visited, b as usize) = eb;
        let (mut ha, mut hb) = (0usize, 0usize);
        // Lockstep expansion: the exhausted side is the (smaller) split-off
        // candidate; meeting the other side's stamp proves connectivity.
        let split_epoch = loop {
            match self.expand_one(&mut qa, &mut ha, ea, eb) {
                Expand::Connected => break None,
                Expand::Exhausted => break Some(ea),
                Expand::Progress => {}
            }
            match self.expand_one(&mut qb, &mut hb, eb, ea) {
                Expand::Connected => break None,
                Expand::Exhausted => break Some(eb),
                Expand::Progress => {}
            }
        };
        self.queue_a = qa;
        self.queue_b = qb;
        let Some(side) = split_epoch else {
            return; // still connected
        };
        // Partition the old sorted member list by the side stamp; both
        // halves stay sorted.  The half holding the old minimum keeps the
        // slot id (and its order position); the other becomes a new group.
        let old_members = std::mem::take(at_mut(&mut self.slots, slot as usize));
        let old_min = old_members.first().copied().expect("non-empty group");
        let mut in_side = Vec::new();
        let mut out_side = Vec::new();
        for &m in &old_members {
            if at(&self.visited, m.index()) == side {
                in_side.push(m);
            } else {
                out_side.push(m);
            }
        }
        let min_in_side = in_side.first().copied() == Some(old_min);
        let (keep_list, new_list) = if min_in_side {
            (in_side, out_side)
        } else {
            (out_side, in_side)
        };
        *at_mut(&mut self.slots, slot as usize) = keep_list;
        let new_slot = self.alloc_slot(Vec::new());
        for m in &new_list {
            *at_mut(&mut self.comp_of, m.index()) = new_slot;
        }
        *at_mut(&mut self.slots, new_slot as usize) = new_list;
        self.insert_into_order(new_slot);
    }

    /// Expands one node of one BFS side; see `resplit_after_edge_down`.
    fn expand_one(&mut self, q: &mut Vec<u32>, head: &mut usize, own: u32, other: u32) -> Expand {
        if *head == q.len() {
            return Expand::Exhausted;
        }
        let x = at(q, *head);
        *head += 1;
        for (nbr, eid) in self.csr.neighbors(x as usize) {
            if !at(&self.edge_enabled, eid as usize) || !at(&self.agent_enabled, nbr as usize) {
                continue;
            }
            let v = at(&self.visited, nbr as usize);
            if v == own {
                continue;
            }
            if v == other {
                return Expand::Connected;
            }
            *at_mut(&mut self.visited, nbr as usize) = own;
            q.push(nbr);
        }
        Expand::Progress
    }

    /// Full flat rescan of the group partition from the current bitmasks.
    fn rebuild_groups(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.order.clear();
        self.comp_of.fill(NONE);
        let n = self.agent_enabled.len();
        let mut queue = std::mem::take(&mut self.queue_a);
        for i in 0..n {
            if !at(&self.agent_enabled, i) || at(&self.comp_of, i) != NONE {
                continue;
            }
            let slot = self.slots.len() as u32;
            self.slots.push(Vec::new());
            self.order.push(slot);
            *at_mut(&mut self.comp_of, i) = slot;
            queue.clear();
            queue.push(i as u32);
            let mut head = 0;
            while head < queue.len() {
                let x = at(&queue, head);
                head += 1;
                for (nbr, eid) in self.csr.neighbors(x as usize) {
                    if at(&self.edge_enabled, eid as usize)
                        && at(&self.agent_enabled, nbr as usize)
                        && at(&self.comp_of, nbr as usize) == NONE
                    {
                        *at_mut(&mut self.comp_of, nbr as usize) = slot;
                        queue.push(nbr);
                    }
                }
            }
        }
        self.queue_a = queue;
        // Ascending emission pass: every member list comes out sorted, and
        // slot k (== order[k]) holds the k-th smallest minimum.
        for i in 0..n {
            let slot = at(&self.comp_of, i);
            if slot != NONE {
                at_mut(&mut self.slots, slot as usize).push(AgentId(i));
            }
        }
    }

    fn recount_usable(&mut self) {
        self.usable_edge_count = self
            .csr
            .edges()
            .iter()
            .zip(self.edge_enabled.iter())
            .filter(|(e, &on)| {
                on && at(&self.agent_enabled, e.lo().index())
                    && at(&self.agent_enabled, e.hi().index())
            })
            .count();
    }

    fn slot_min(&self, slot: u32) -> AgentId {
        at_ref(&self.slots, slot as usize)
            .first()
            .copied()
            .expect("group slots in the order are non-empty")
    }

    fn alloc_slot(&mut self, members: Vec<AgentId>) -> u32 {
        if let Some(slot) = self.free.pop() {
            *at_mut(&mut self.slots, slot as usize) = members;
            slot
        } else {
            self.slots.push(members);
            (self.slots.len() - 1) as u32
        }
    }

    fn insert_into_order(&mut self, slot: u32) {
        self.insert_into_order_with(slot, self.slot_min(slot));
    }

    fn insert_into_order_with(&mut self, slot: u32, min: AgentId) {
        let pos = self.order.partition_point(|&s| self.slot_min(s) < min);
        self.order.insert(pos, slot);
    }

    fn remove_from_order(&mut self, slot: u32) {
        let min = self.slot_min(slot);
        let pos = self.order.partition_point(|&s| self.slot_min(s) < min);
        debug_assert_eq!(self.order.get(pos).copied(), Some(slot));
        self.order.remove(pos);
    }
}

enum Expand {
    /// One node expanded without meeting the other side.
    Progress,
    /// This side's frontier is exhausted: it is a separate component.
    Exhausted,
    /// This side reached a node stamped by the other side: still connected.
    Connected,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn changes(
        edges_down: Vec<Edge>,
        edges_up: Vec<Edge>,
        agents_down: Vec<AgentId>,
        agents_up: Vec<AgentId>,
    ) -> EnvChanges {
        EnvChanges {
            edges_down,
            edges_up,
            agents_down,
            agents_up,
        }
    }

    fn edge(a: usize, b: usize) -> Edge {
        Edge::new(AgentId(a), AgentId(b))
    }

    #[test]
    fn tracks_groups_under_edge_and_agent_flips() {
        let topo = Topology::ring(6);
        let mut gi = GroupIndex::new(&topo);
        gi.reset_all_enabled();
        let mut state = EnvState::fully_enabled(&topo);
        assert_eq!(gi.groups(), state.groups());
        assert_eq!(gi.usable_edge_count(), 6);

        let steps = [
            changes(vec![edge(0, 1), edge(3, 4)], vec![], vec![], vec![]),
            changes(vec![], vec![], vec![AgentId(2)], vec![]),
            changes(vec![], vec![edge(0, 1)], vec![], vec![]),
            changes(vec![], vec![], vec![], vec![AgentId(2)]),
            changes(vec![edge(5, 0)], vec![edge(3, 4)], vec![AgentId(1)], vec![]),
            // Redundant flips are no-ops.
            changes(
                vec![edge(5, 0)],
                vec![edge(3, 4)],
                vec![AgentId(1)],
                vec![AgentId(0)],
            ),
        ];
        for (i, c) in steps.iter().enumerate() {
            state.apply_changes(c);
            gi.apply_changes(c);
            assert_eq!(gi.groups(), state.groups(), "step {i}");
            assert_eq!(gi.to_env_state(), state, "step {i}");
            let usable = state
                .enabled_edges()
                .iter()
                .filter(|e| state.can_communicate(e.lo(), e.hi()))
                .count();
            assert_eq!(gi.usable_edge_count(), usable, "step {i}");
        }
    }

    #[test]
    fn full_rescan_fallback_matches_state_groups() {
        let topo = Topology::from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (0, 6)]);
        let state = EnvState::new(
            7,
            [edge(0, 1), edge(2, 3), edge(4, 5)],
            [0, 1, 2, 3, 4, 5].map(AgentId),
        );
        let mut gi = GroupIndex::new(&topo);
        gi.reset_from_state(&state);
        assert_eq!(gi.groups(), state.groups());
        assert!(gi.same_connectivity(&state));
        assert!(!gi.same_connectivity(&EnvState::fully_enabled(&topo)));
        assert!(!gi.same_connectivity(&EnvState::fully_disabled(7)));
        assert_eq!(gi.to_env_state(), state);
    }

    #[test]
    fn split_keeps_ascending_min_order() {
        // Ring 0-1-2-3-0: dropping 1-2 and 3-0 splits {0,1} / {2,3}; the
        // slot with min 0 must stay first.
        let topo = Topology::ring(4);
        let mut gi = GroupIndex::new(&topo);
        gi.reset_all_enabled();
        gi.apply_changes(&changes(vec![edge(1, 2)], vec![], vec![], vec![]));
        assert_eq!(gi.group_count(), 1, "still a path");
        gi.apply_changes(&changes(vec![edge(3, 0)], vec![], vec![], vec![]));
        assert_eq!(gi.group_count(), 2);
        assert_eq!(gi.group(0), [AgentId(0), AgentId(1)]);
        assert_eq!(gi.group(1), [AgentId(2), AgentId(3)]);
    }

    #[test]
    fn agent_down_can_shatter_a_group() {
        let topo = Topology::star(5);
        let mut gi = GroupIndex::new(&topo);
        gi.reset_all_enabled();
        assert_eq!(gi.group_count(), 1);
        gi.apply_changes(&changes(vec![], vec![], vec![AgentId(0)], vec![]));
        assert_eq!(gi.group_count(), 4, "leaves become singletons");
        let mut state = EnvState::fully_enabled(&topo);
        state.apply_changes(&changes(vec![], vec![], vec![AgentId(0)], vec![]));
        assert_eq!(gi.groups(), state.groups());
        gi.apply_changes(&changes(vec![], vec![], vec![], vec![AgentId(0)]));
        assert_eq!(gi.group_count(), 1, "center restores the star");
    }
}
