//! Environment models for dynamic distributed systems.
//!
//! In the model of Chandy & Charpentier (ICDCS 2007) the *environment* is an
//! adversary-controlled component whose state determines which agents may
//! change state and which sets of agents may communicate.  Designers cannot
//! choose the environment; they can only assume a set `Q` of predicates on
//! environment states, each of which holds infinitely often (`□◇Q`).
//!
//! This crate provides the executable counterpart of that model:
//!
//! * [`Topology`] — the underlying communication graph `(A, E)` whose edges
//!   define the fairness predicates `Q_e` ("edge `e` exists and is available
//!   for communication");
//! * [`EnvState`] — one environment state: the set of currently available
//!   edges and the set of currently enabled agents, together with the
//!   grouping of agents into communicating groups (connected components) it
//!   induces — the partition `π` of the paper's transition relation;
//! * [`Environment`] — a trait for environment processes that produce a new
//!   [`EnvState`] at every system step, with implementations ranging from a
//!   benign static network to random churn, Markov on/off links, periodic
//!   partitions, crash/restart of agents, and a minimally-fair adversary;
//! * [`FairnessSpec`] — the set `Q_E` of per-edge fairness predicates and a
//!   checker that a recorded environment trace satisfied `□◇Q_e` for every
//!   edge.
//!
//! # Example
//!
//! ```
//! use selfsim_env::{Environment, RandomChurnEnv, Topology};
//! use rand::SeedableRng;
//!
//! let topo = Topology::ring(6);
//! let mut env = RandomChurnEnv::new(topo, 0.5, 0.9);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let state = env.step(&mut rng);
//! // Each group is a set of agents that can run a collaborative step now.
//! for group in state.groups() {
//!     assert!(!group.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod environment;
mod fairness;
mod groups;
pub mod params;
mod state;
mod topology;

pub use csr::Csr;
pub use environment::{
    AdversarialEnv, ComposedEnv, CrashRestartEnv, EnvChanges, EnvDelta, Environment, MarkovLinkEnv,
    PeriodicPartitionEnv, RandomChurnEnv, StaticEnv,
};
pub use fairness::FairnessSpec;
pub use groups::GroupIndex;
pub use params::{parse_label, split_top_level, validate_probability, Params};
pub use state::EnvState;
pub use topology::{AgentId, Edge, Topology};
