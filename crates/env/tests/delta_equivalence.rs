//! The `step_delta` contract, property-tested for every builtin
//! environment: an environment advanced through [`Environment::step_delta`]
//! with the deltas folded into an [`EnvState`] must traverse exactly the
//! state sequence (and consume exactly the RNG stream) that the same
//! environment advanced through [`Environment::step`] traverses.  This is
//! what entitles the event-driven runtime to apply connectivity updates
//! incrementally.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfsim_env::{
    AdversarialEnv, ComposedEnv, CrashRestartEnv, EnvDelta, EnvState, Environment, GroupIndex,
    MarkovLinkEnv, PeriodicPartitionEnv, RandomChurnEnv, StaticEnv, Topology,
};

fn topology(choice: u8, n: usize) -> Topology {
    match choice % 4 {
        0 => Topology::ring(n),
        1 => Topology::line(n),
        2 => Topology::complete(n),
        _ => Topology::star(n),
    }
}

/// Every builtin environment over `topo`, parameterised from the three
/// probability-ish knobs so the proptest cases sweep their behaviours
/// (always-changing, mostly-quiet, phase-switching, fallback-only).
fn builtin_envs(topo: &Topology, p: f64, q: f64, k: usize) -> Vec<Box<dyn Environment>> {
    vec![
        Box::new(StaticEnv::new(topo.clone())),
        Box::new(RandomChurnEnv::new(topo.clone(), p, q)),
        Box::new(MarkovLinkEnv::new(topo.clone(), p, q)),
        Box::new(PeriodicPartitionEnv::new(
            topo.clone(),
            1 + k % 3,
            1 + k % 5,
        )),
        Box::new(CrashRestartEnv::new(topo.clone(), p, q)),
        Box::new(AdversarialEnv::new(topo.clone(), k % 4)),
        Box::new(ComposedEnv::new(
            MarkovLinkEnv::new(topo.clone(), p, q),
            CrashRestartEnv::new(topo.clone(), q, p),
        )),
    ]
}

/// Folds one delta into the running state; `current` is `None` before the
/// first (absolute, per the contract) delta arrives.
fn fold(current: &mut Option<EnvState>, delta: EnvDelta, topo: &Topology) {
    match delta {
        EnvDelta::Unchanged => {
            assert!(
                current.is_some(),
                "contract violation: the first delta must be absolute"
            );
        }
        EnvDelta::AllEnabled => *current = Some(EnvState::fully_enabled(topo)),
        EnvDelta::Full(state) => *current = Some(state),
        EnvDelta::Changes(changes) => current
            .as_mut()
            .expect("contract violation: the first delta must be absolute")
            .apply_changes(&changes),
    }
}

proptest! {
    /// The core property: over random topologies, parameters and seeds,
    /// the folded delta stream equals the full-rescan stream round for
    /// round, for every builtin environment.
    #[test]
    fn folded_deltas_equal_full_rescans(
        seed in 0u64..500,
        choice in 0u8..8,
        n in 3usize..10,
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
        k in 0usize..10,
        rounds in 1usize..30,
    ) {
        let topo = topology(choice, n);
        let stepped = builtin_envs(&topo, p, q, k);
        let delta_stepped = builtin_envs(&topo, p, q, k);
        for (mut a, mut b) in stepped.into_iter().zip(delta_stepped) {
            let name = a.name();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut folded: Option<EnvState> = None;
            for round in 0..rounds {
                let full = a.step(&mut rng_a);
                fold(&mut folded, b.step_delta(&mut rng_b), &topo);
                let folded = folded.as_ref().expect("absolute after first delta");
                prop_assert!(
                    folded == &full,
                    "{} diverged at round {} (seed {})",
                    name,
                    round,
                    seed
                );
            }
            // Identical RNG streams: both copies must be at the same point.
            prop_assert!(
                rng_a.next_u64() == rng_b.next_u64(),
                "{} desynced its RNG stream",
                name
            );
        }
    }

    /// Incremental group maintenance equals a from-scratch BFS: a
    /// [`GroupIndex`] fed the delta stream of every builtin environment
    /// (merges on edge-up, bounded re-splits on edge-down, agent churn)
    /// reports exactly the groups — in exactly the ascending-min order —
    /// that a full rescan of the folded [`EnvState`] reports.
    #[test]
    fn group_index_equals_bfs_recompute_over_delta_streams(
        seed in 0u64..500,
        choice in 0u8..8,
        n in 3usize..10,
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
        k in 0usize..10,
        rounds in 1usize..30,
    ) {
        let topo = topology(choice, n);
        for mut env in builtin_envs(&topo, p, q, k) {
            let name = env.name();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut folded: Option<EnvState> = None;
            let mut index = GroupIndex::new(&topo);
            for round in 0..rounds {
                let delta = env.step_delta(&mut rng);
                // Mirror the event runtime's handling of each delta kind.
                match &delta {
                    EnvDelta::Unchanged => {}
                    EnvDelta::AllEnabled => index.reset_all_enabled(),
                    EnvDelta::Full(state) => index.reset_from_state(state),
                    EnvDelta::Changes(changes) => index.apply_changes(changes),
                }
                fold(&mut folded, delta, &topo);
                let folded = folded.as_ref().expect("absolute after first delta");
                prop_assert!(
                    index.groups() == folded.groups(),
                    "{} group index diverged from BFS at round {} (seed {}): {:?} vs {:?}",
                    name,
                    round,
                    seed,
                    index.groups(),
                    folded.groups()
                );
                prop_assert!(
                    index.same_connectivity(folded),
                    "{} same_connectivity disagreed at round {}",
                    name,
                    round
                );
                prop_assert!(
                    index.to_env_state() == *folded,
                    "{} to_env_state round-trip diverged at round {}",
                    name,
                    round
                );
            }
        }
    }
}
