//! The repeated-global-snapshot baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use selfsim_env::{AgentId, EnvState, Environment};
use selfsim_runtime::{validate_async_knobs, DeliveryDecision, DeliveryRule};
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::usable_edge_count;

/// A coordinator-based aggregator: agent 0 repeatedly attempts to take a
/// global snapshot of all values.  A snapshot attempt in a given round
/// succeeds only if the coordinator can reach every agent through currently
/// enabled edges and enabled agents (i.e. the whole system is in one group
/// containing everyone).
///
/// This models the "repeated global snapshots" strategy of §5 at the level
/// of abstraction of this reproduction: it is exactly as powerful as the
/// environment allows a centralised protocol to be, and it fails to make
/// *any* progress in rounds where the system is partitioned — which is the
/// behaviour the self-similar algorithms are designed to avoid.
pub struct SnapshotAggregator {
    values: Vec<i64>,
    max_rounds: usize,
}

impl SnapshotAggregator {
    /// Creates the baseline for the given initial values.
    pub fn new(values: Vec<i64>, max_rounds: usize) -> Self {
        SnapshotAggregator { values, max_rounds }
    }

    /// Runs the baseline under `environment`, aggregating with `fold`
    /// (e.g. `min`, `+`).  Returns the metrics and the aggregate (if a
    /// snapshot ever succeeded).
    pub fn run<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        self.run_observed(environment, seed, fold, &mut EventLog::disabled())
    }

    /// Like [`SnapshotAggregator::run`], emitting trace events into
    /// `events` (a disabled log costs one branch per would-be event).
    pub fn run_observed<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        mut fold: impl FnMut(i64, i64) -> i64,
        events: &mut EventLog,
    ) -> (RunMetrics, Option<i64>) {
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("snapshot-baseline", environment.name(), n);
        let coordinator = AgentId(0);
        let mut result = None;

        for round in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = round + 1;
            events.emit(|| TraceEvent::EnvTransition {
                tick: (round + 1) as u64,
                edges: usable_edge_count(&env_state),
            });
            // One request per agent per attempt, whether or not it succeeds —
            // the coordinator cannot know in advance that the system is
            // partitioned.
            metrics.messages += n.saturating_sub(1);
            let groups = env_state.groups();
            let coordinator_group = groups.iter().find(|g| g.contains(&coordinator));
            let all_reachable = coordinator_group.map(|g| g.len() == n).unwrap_or(false);
            metrics.group_steps += 1;
            events.emit(|| TraceEvent::GroupStep {
                tick: (round + 1) as u64,
                size: n,
                changed: all_reachable,
            });
            if all_reachable {
                metrics.effective_group_steps += 1;
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(round + 1);
                events.emit(|| TraceEvent::ConvergenceEntered {
                    tick: (round + 1) as u64,
                });
                break;
            }
        }
        (metrics, result)
    }

    /// Runs the baseline on the asynchronous message-passing model: every
    /// tick the coordinator launches, with probability `interaction_rate`, a
    /// snapshot attempt of one probe per remote agent.  Each probe is lost
    /// with probability `drop_rate` or delivered after a uniform
    /// `1..=max_latency` latency.  The snapshot's connectivity condition is
    /// full (multi-hop) reachability of every agent from the coordinator;
    /// the [`DeliveryRule`] decides *when* that condition must hold — at
    /// the probe's delivery tick (the historical `ValidAtDelivery`), at its
    /// send tick (`ValidAtSend`), or at any tick of the probe's grace
    /// window (`AnyOverlap`, re-queueing blocked probes).  An attempt
    /// succeeds when all of its probes succeed.
    ///
    /// (The parameter list deliberately mirrors `AsyncConfig`'s knobs so
    /// the campaign dispatch stays a positional passthrough.)
    // the knob list deliberately mirrors `AsyncConfig` so campaign dispatch
    // stays a positional passthrough; a config struct here would just move
    // the arity one call deeper
    #[allow(clippy::too_many_arguments)]
    pub fn run_async<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        interaction_rate: f64,
        max_latency: usize,
        drop_rate: f64,
        delivery: DeliveryRule,
        fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        self.run_async_observed(
            environment,
            seed,
            interaction_rate,
            max_latency,
            drop_rate,
            delivery,
            fold,
            &mut EventLog::disabled(),
        )
    }

    /// Like [`SnapshotAggregator::run_async`], emitting trace events into
    /// `events` (a disabled log costs one branch per would-be event).
    // the knob list deliberately mirrors `AsyncConfig` so campaign dispatch
    // stays a positional passthrough; a config struct here would just move
    // the arity one call deeper
    #[allow(clippy::too_many_arguments)]
    pub fn run_async_observed<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        interaction_rate: f64,
        max_latency: usize,
        drop_rate: f64,
        delivery: DeliveryRule,
        mut fold: impl FnMut(i64, i64) -> i64,
        events: &mut EventLog,
    ) -> (RunMetrics, Option<i64>) {
        struct Probe {
            deliver_at: usize,
            expires_at: usize,
            reachable_at_send: bool,
            attempt: usize,
            target: usize,
        }
        if let Err(message) = validate_async_knobs(interaction_rate, max_latency, drop_rate) {
            panic!("invalid async parameters: {message}");
        }
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("snapshot-baseline", environment.name(), n);
        let coordinator = AgentId(0);
        let reachable = |env_state: &EnvState| {
            env_state
                .groups()
                .iter()
                .find(|g| g.contains(&coordinator))
                .map(|g| g.len() == n)
                .unwrap_or(false)
        };
        let mut result = None;
        // outstanding probes / already-failed flag, per launched attempt.
        let mut attempts: Vec<(usize, bool)> = Vec::new();
        let mut pending: Vec<Probe> = Vec::new();

        'ticks: for tick in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = tick + 1;
            events.emit(|| TraceEvent::EnvTransition {
                tick: (tick + 1) as u64,
                edges: usable_edge_count(&env_state),
            });

            if rng.gen_bool(interaction_rate) && n > 1 {
                let attempt = attempts.len();
                attempts.push((n - 1, false));
                metrics.group_steps += 1;
                metrics.messages += n - 1;
                // Only `ValidAtSend` judges probes by send-time
                // reachability, so the component computation is skipped for
                // the other rules.
                let reachable_at_send =
                    delivery == DeliveryRule::ValidAtSend && reachable(&env_state);
                // One probe per remote agent, each with its own latency; a
                // single loss already kills the attempt, so the rest of a
                // dead attempt's probes are counted but never tracked.
                for target in 1..n {
                    if attempts[attempt].1 {
                        break;
                    }
                    if rng.gen_bool(drop_rate) {
                        metrics.messages_dropped += 1;
                        events.emit(|| TraceEvent::MessageDropped {
                            tick: tick as u64,
                            from: 0,
                            to: target,
                        });
                        attempts[attempt].1 = true; // probe lost: attempt dead
                        continue;
                    }
                    let latency = rng.gen_range(1..=max_latency);
                    let deliver_at = tick + latency;
                    events.emit(|| TraceEvent::MessageSent {
                        tick: tick as u64,
                        from: 0,
                        to: target,
                        deliver_at: deliver_at as u64,
                    });
                    pending.push(Probe {
                        deliver_at,
                        expires_at: delivery.expiry(deliver_at),
                        reachable_at_send,
                        attempt,
                        target,
                    });
                }
            }

            // In-place drain (order-preserving): no per-tick reallocation
            // of the undelivered queue.
            let due: Vec<Probe> = pending.extract_if(.., |p| p.deliver_at <= tick).collect();
            if due.iter().all(|p| attempts[p.attempt].1) {
                continue; // nothing live due: skip the component computation
            }
            // `ValidAtSend` never reads delivery-time reachability, so it
            // skips this component computation too.
            let all_reachable = delivery != DeliveryRule::ValidAtSend && reachable(&env_state);
            for probe in due {
                let (outstanding, failed) = &mut attempts[probe.attempt];
                if *failed {
                    continue;
                }
                match delivery.decide(
                    all_reachable,
                    probe.reachable_at_send,
                    tick,
                    probe.expires_at,
                ) {
                    DeliveryDecision::Discard => {
                        *failed = true;
                        events.emit(|| TraceEvent::MessageDiscarded {
                            tick: tick as u64,
                            from: 0,
                            to: probe.target,
                        });
                        continue;
                    }
                    DeliveryDecision::Requeue => {
                        metrics.messages_requeued += 1;
                        events.emit(|| TraceEvent::MessageRequeued {
                            tick: tick as u64,
                            from: 0,
                            to: probe.target,
                        });
                        pending.push(Probe {
                            deliver_at: tick + 1,
                            ..probe
                        });
                        continue;
                    }
                    DeliveryDecision::Deliver => {}
                }
                *outstanding -= 1;
                events.emit(|| TraceEvent::MessageDelivered {
                    tick: tick as u64,
                    from: 0,
                    to: probe.target,
                });
                if *outstanding == 0 && !*failed {
                    metrics.effective_group_steps += 1;
                    let aggregate = self
                        .values
                        .iter()
                        .copied()
                        .reduce(&mut fold)
                        .expect("at least one agent");
                    result = Some(aggregate);
                    metrics.rounds_to_convergence = Some(tick + 1);
                    events.emit(|| TraceEvent::ConvergenceEntered {
                        tick: (tick + 1) as u64,
                    });
                    break 'ticks;
                }
            }
        }
        (metrics, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_env::{AdversarialEnv, PeriodicPartitionEnv, StaticEnv, Topology};

    #[test]
    fn snapshot_succeeds_immediately_on_a_static_network() {
        let topo = Topology::complete(5);
        let mut env = StaticEnv::new(topo);
        let baseline = SnapshotAggregator::new(vec![9, 4, 7, 1, 5], 100);
        let (metrics, result) = baseline.run(&mut env, 1, i64::min);
        assert_eq!(result, Some(1));
        assert_eq!(metrics.rounds_to_convergence, Some(1));
        assert_eq!(metrics.messages, 4);
    }

    #[test]
    fn snapshot_waits_for_a_merge_round_under_partitions() {
        let topo = Topology::complete(6);
        let mut env = PeriodicPartitionEnv::new(topo, 2, 5);
        let baseline = SnapshotAggregator::new(vec![6, 5, 4, 3, 2, 1], 100);
        let (metrics, result) = baseline.run(&mut env, 2, i64::min);
        assert_eq!(result, Some(1));
        // The partition only merges every 5th round.
        assert_eq!(metrics.rounds_to_convergence, Some(5));
    }

    #[test]
    fn snapshot_never_succeeds_under_the_single_edge_adversary() {
        let topo = Topology::complete(4);
        let mut env = AdversarialEnv::new(topo, 0);
        let baseline = SnapshotAggregator::new(vec![4, 3, 2, 1], 200);
        let (metrics, result) = baseline.run(&mut env, 3, i64::min);
        // The adversary never enables more than one edge at a time, so a
        // global snapshot is impossible — yet the self-similar algorithm
        // converges under the same environment (see the runtime tests).
        assert_eq!(result, None);
        assert!(!metrics.converged());
        assert_eq!(metrics.rounds_executed, 200);
    }

    #[test]
    fn async_snapshot_succeeds_on_a_static_network() {
        let topo = Topology::complete(5);
        let mut env = StaticEnv::new(topo);
        let baseline = SnapshotAggregator::new(vec![9, 4, 7, 1, 5], 500);
        let (metrics, result) =
            baseline.run_async(&mut env, 1, 1.0, 2, 0.0, DeliveryRule::default(), i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
        assert!(metrics.messages >= 4);
        assert_eq!(metrics.messages_dropped, 0, "drop_rate 0 drops nothing");
    }

    #[test]
    fn async_snapshot_never_succeeds_under_the_single_edge_adversary() {
        // One edge at a time: full reachability never holds at *any* tick,
        // so every delivery rule agrees the snapshot is impossible.
        for rule in DeliveryRule::all() {
            let topo = Topology::complete(4);
            let mut env = AdversarialEnv::new(topo, 0);
            let baseline = SnapshotAggregator::new(vec![4, 3, 2, 1], 300);
            let (metrics, result) = baseline.run_async(&mut env, 3, 1.0, 2, 0.0, rule, i64::min);
            assert_eq!(result, None, "{}", rule.label());
            assert!(!metrics.converged(), "{}", rule.label());
            assert_eq!(metrics.rounds_executed, 300, "{}", rule.label());
        }
    }

    #[test]
    fn async_snapshot_is_seed_deterministic_under_every_rule() {
        for rule in DeliveryRule::all() {
            let run = || {
                let mut env = PeriodicPartitionEnv::new(Topology::complete(6), 2, 5);
                SnapshotAggregator::new(vec![6, 5, 4, 3, 2, 1], 500).run_async(
                    &mut env,
                    11,
                    0.7,
                    3,
                    0.1,
                    rule,
                    i64::min,
                )
            };
            let (a_metrics, a_result) = run();
            let (b_metrics, b_result) = run();
            assert_eq!(a_metrics, b_metrics, "{}", rule.label());
            assert_eq!(a_result, b_result, "{}", rule.label());
        }
    }

    #[test]
    fn send_time_and_window_rules_rescue_the_partitioned_snapshot() {
        // Merges are single ticks and probe latency is at least one tick,
        // so under the historical rule a probe sent at a merge tick is
        // always judged in a partitioned phase: the attempt dies.  Judging
        // at send time (or within a grace window spanning the period)
        // restores the snapshot.
        let run = |rule: DeliveryRule| {
            let mut env = PeriodicPartitionEnv::new(Topology::complete(6), 2, 8);
            SnapshotAggregator::new(vec![6, 5, 4, 3, 2, 1], 200).run_async(
                &mut env,
                2,
                1.0,
                3,
                0.0,
                rule,
                i64::min,
            )
        };
        let (stalled, none) = run(DeliveryRule::ValidAtDelivery);
        assert_eq!(none, None);
        assert!(!stalled.converged());
        for rule in [DeliveryRule::ValidAtSend, DeliveryRule::any_overlap()] {
            let (metrics, result) = run(rule);
            assert_eq!(result, Some(1), "{}", rule.label());
            assert!(metrics.converged(), "{}", rule.label());
        }
    }

    #[test]
    fn snapshot_computes_other_aggregates() {
        let topo = Topology::complete(3);
        let mut env = StaticEnv::new(topo);
        let baseline = SnapshotAggregator::new(vec![1, 2, 3], 10);
        let (_, sum) = baseline.run(&mut env, 4, |a, b| a + b);
        assert_eq!(sum, Some(6));
    }
}
