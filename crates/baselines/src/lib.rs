//! Baseline aggregation strategies the paper contrasts with (§5): repeated
//! global snapshots and flooding.
//!
//! The paper's related-work section argues that classical approaches —
//! "repeated global snapshots or group communication protocols" — work well
//! in static systems but are inefficient in dynamic ones, because they need
//! the *whole* system (or at least a coordinator-to-everyone path) to be up
//! at once, whereas a self-similar algorithm makes progress inside whatever
//! fragments the environment happens to connect.  These baselines make that
//! comparison quantitative (experiment E7):
//!
//! * [`SnapshotAggregator`] — a fixed coordinator repeatedly tries to read
//!   every agent's value; a round succeeds only when the coordinator can
//!   reach all agents in that round's environment state.
//! * [`FloodingAggregator`] — every agent re-broadcasts everything it knows
//!   to its currently-reachable neighbours; an agent terminates when it has
//!   heard from everyone.
//!
//! Both compute the same aggregate (parameterised by a fold function) so the
//! results can be cross-checked against the self-similar systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flooding;
mod snapshot;

pub use flooding::FloodingAggregator;
pub use snapshot::SnapshotAggregator;

/// Edges of `state` whose endpoints can actually communicate right now —
/// the connectivity digest recorded by `env-transition` trace events.
pub(crate) fn usable_edge_count(state: &selfsim_env::EnvState) -> usize {
    state
        .enabled_edges()
        .iter()
        .filter(|edge| state.can_communicate(edge.lo(), edge.hi()))
        .count()
}
