//! The flooding / full-information baseline.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use selfsim_env::Environment;
use selfsim_runtime::{validate_async_knobs, DeliveryDecision, DeliveryRule};
use selfsim_trace::{EventLog, RunMetrics, TraceEvent};

use crate::usable_edge_count;

/// A flooding aggregator: every agent keeps the set of `(agent, value)`
/// pairs it has heard of (initially just its own) and, every round,
/// re-broadcasts its whole knowledge to every neighbour it can currently
/// reach.  The run converges when *every* agent has heard from every other
/// agent, at which point each agent can compute the aggregate locally.
///
/// Flooding is robust to churn (knowledge spreads through whatever links
/// exist) but pays for it in message volume: each agent repeatedly sends its
/// entire knowledge set.  Experiment E7 compares its message cost against
/// the self-similar algorithms under identical environments.
pub struct FloodingAggregator {
    values: Vec<i64>,
    max_rounds: usize,
}

impl FloodingAggregator {
    /// Creates the baseline for the given initial values.
    pub fn new(values: Vec<i64>, max_rounds: usize) -> Self {
        FloodingAggregator { values, max_rounds }
    }

    /// Runs the baseline under `environment`, aggregating with `fold`.
    /// Returns the metrics and the aggregate (if every agent heard from
    /// everyone within the budget).
    pub fn run<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        self.run_observed(environment, seed, fold, &mut EventLog::disabled())
    }

    /// Like [`FloodingAggregator::run`], emitting trace events into
    /// `events` (a disabled log costs one branch per would-be event).
    pub fn run_observed<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        mut fold: impl FnMut(i64, i64) -> i64,
        events: &mut EventLog,
    ) -> (RunMetrics, Option<i64>) {
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("flooding-baseline", environment.name(), n);
        // knowledge[a] = set of agent indices whose value agent a knows.
        let mut knowledge: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut result = None;

        for round in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = round + 1;
            events.emit(|| TraceEvent::EnvTransition {
                tick: (round + 1) as u64,
                edges: usable_edge_count(&env_state),
            });
            let before = knowledge.clone();
            for edge in env_state.enabled_edges() {
                let (a, b) = (edge.lo().index(), edge.hi().index());
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                // Each endpoint sends its whole knowledge set to the other;
                // message cost is proportional to the entries sent.
                metrics.messages += before[a].len() + before[b].len();
                metrics.group_steps += 1;
                let merged: BTreeSet<usize> = before[a].union(&before[b]).copied().collect();
                let changed = merged != knowledge[a] || merged != knowledge[b];
                if changed {
                    metrics.effective_group_steps += 1;
                }
                events.emit(|| TraceEvent::GroupStep {
                    tick: (round + 1) as u64,
                    size: 2,
                    changed,
                });
                knowledge[a].extend(merged.iter().copied());
                knowledge[b].extend(merged.iter().copied());
            }
            if knowledge.iter().all(|k| k.len() == n) {
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(round + 1);
                events.emit(|| TraceEvent::ConvergenceEntered {
                    tick: (round + 1) as u64,
                });
                break;
            }
        }
        (metrics, result)
    }

    /// Runs the baseline on the asynchronous message-passing model: every
    /// tick, each currently-usable edge gossips with probability
    /// `interaction_rate` — both endpoints send a snapshot of their whole
    /// knowledge set, which is lost with probability `drop_rate` or arrives
    /// after a uniform `1..=max_latency` latency; the [`DeliveryRule`]
    /// decides what happens when the pair can no longer communicate at the
    /// due tick (the same rule the self-similar async runtime applies, so
    /// cross-runtime comparisons stay apples-to-apples).  The run converges
    /// when every agent has heard from every other agent.
    ///
    /// (The parameter list deliberately mirrors `AsyncConfig`'s knobs so
    /// the campaign dispatch stays a positional passthrough.)
    // the knob list deliberately mirrors `AsyncConfig` so campaign dispatch
    // stays a positional passthrough; a config struct here would just move
    // the arity one call deeper
    #[allow(clippy::too_many_arguments)]
    pub fn run_async<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        interaction_rate: f64,
        max_latency: usize,
        drop_rate: f64,
        delivery: DeliveryRule,
        fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        self.run_async_observed(
            environment,
            seed,
            interaction_rate,
            max_latency,
            drop_rate,
            delivery,
            fold,
            &mut EventLog::disabled(),
        )
    }

    /// Like [`FloodingAggregator::run_async`], emitting trace events into
    /// `events` (a disabled log costs one branch per would-be event).
    // the knob list deliberately mirrors `AsyncConfig` so campaign dispatch
    // stays a positional passthrough; a config struct here would just move
    // the arity one call deeper
    #[allow(clippy::too_many_arguments)]
    pub fn run_async_observed<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        interaction_rate: f64,
        max_latency: usize,
        drop_rate: f64,
        delivery: DeliveryRule,
        mut fold: impl FnMut(i64, i64) -> i64,
        events: &mut EventLog,
    ) -> (RunMetrics, Option<i64>) {
        struct Gossip {
            deliver_at: usize,
            expires_at: usize,
            from: usize,
            to: usize,
            payload: BTreeSet<usize>,
        }
        if let Err(message) = validate_async_knobs(interaction_rate, max_latency, drop_rate) {
            panic!("invalid async parameters: {message}");
        }
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("flooding-baseline", environment.name(), n);
        let mut knowledge: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut pending: Vec<Gossip> = Vec::new();
        let mut result = None;

        for tick in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = tick + 1;
            events.emit(|| TraceEvent::EnvTransition {
                tick: (tick + 1) as u64,
                edges: usable_edge_count(&env_state),
            });

            for edge in env_state.enabled_edges() {
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                if !rng.gen_bool(interaction_rate) {
                    continue;
                }
                for (from, to) in [
                    (edge.lo().index(), edge.hi().index()),
                    (edge.hi().index(), edge.lo().index()),
                ] {
                    // Message cost is in knowledge entries sent; drops are
                    // tracked in the same unit so the two stay comparable.
                    metrics.messages += knowledge[from].len();
                    if rng.gen_bool(drop_rate) {
                        metrics.messages_dropped += knowledge[from].len();
                        events.emit(|| TraceEvent::MessageDropped {
                            tick: tick as u64,
                            from,
                            to,
                        });
                        continue; // lost in flight
                    }
                    let latency = rng.gen_range(1..=max_latency);
                    let deliver_at = tick + latency;
                    events.emit(|| TraceEvent::MessageSent {
                        tick: tick as u64,
                        from,
                        to,
                        deliver_at: deliver_at as u64,
                    });
                    pending.push(Gossip {
                        deliver_at,
                        expires_at: delivery.expiry(deliver_at),
                        from,
                        to,
                        payload: knowledge[from].clone(),
                    });
                }
            }

            // In-place drain (order-preserving): no per-tick reallocation
            // of the undelivered queue.  Re-queued gossip moves to the back
            // of the queue, which is still seed-deterministic.
            let due: Vec<Gossip> = pending.extract_if(.., |g| g.deliver_at <= tick).collect();
            for gossip in due {
                use selfsim_env::AgentId;
                let usable_now =
                    env_state.can_communicate(AgentId(gossip.from), AgentId(gossip.to));
                // The edge was usable at send time by construction.
                match delivery.decide(usable_now, true, tick, gossip.expires_at) {
                    DeliveryDecision::Discard => {
                        events.emit(|| TraceEvent::MessageDiscarded {
                            tick: tick as u64,
                            from: gossip.from,
                            to: gossip.to,
                        });
                        continue;
                    }
                    DeliveryDecision::Requeue => {
                        metrics.messages_requeued += 1;
                        events.emit(|| TraceEvent::MessageRequeued {
                            tick: tick as u64,
                            from: gossip.from,
                            to: gossip.to,
                        });
                        pending.push(Gossip {
                            deliver_at: tick + 1,
                            ..gossip
                        });
                        continue;
                    }
                    DeliveryDecision::Deliver => {}
                }
                metrics.group_steps += 1;
                events.emit(|| TraceEvent::MessageDelivered {
                    tick: tick as u64,
                    from: gossip.from,
                    to: gossip.to,
                });
                let before = knowledge[gossip.to].len();
                knowledge[gossip.to].extend(gossip.payload.iter().copied());
                let changed = knowledge[gossip.to].len() > before;
                if changed {
                    metrics.effective_group_steps += 1;
                }
                events.emit(|| TraceEvent::GroupStep {
                    tick: (tick + 1) as u64,
                    size: 2,
                    changed,
                });
            }

            if knowledge.iter().all(|k| k.len() == n) {
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(tick + 1);
                events.emit(|| TraceEvent::ConvergenceEntered {
                    tick: (tick + 1) as u64,
                });
                break;
            }
        }
        (metrics, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_env::{AdversarialEnv, PeriodicPartitionEnv, RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn flooding_converges_in_diameter_rounds_on_a_static_line() {
        let topo = Topology::line(5);
        let mut env = StaticEnv::new(topo);
        let baseline = FloodingAggregator::new(vec![9, 4, 7, 1, 5], 100);
        let (metrics, result) = baseline.run(&mut env, 1, i64::min);
        assert_eq!(result, Some(1));
        // Knowledge spreads one hop per round: the line of 5 has diameter 4.
        assert_eq!(metrics.rounds_to_convergence, Some(4));
    }

    #[test]
    fn flooding_survives_churn() {
        let topo = Topology::ring(6);
        let mut env = RandomChurnEnv::new(topo, 0.4, 1.0);
        let baseline = FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 2_000);
        let (metrics, result) = baseline.run(&mut env, 7, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_converges_under_the_adversary_unlike_the_snapshot() {
        let topo = Topology::complete(4);
        let mut env = AdversarialEnv::new(topo, 0);
        let baseline = FloodingAggregator::new(vec![4, 3, 2, 1], 500);
        let (metrics, result) = baseline.run(&mut env, 3, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_messages_grow_with_knowledge_size() {
        let topo = Topology::complete(6);
        let mut env = StaticEnv::new(topo.clone());
        let flooding = FloodingAggregator::new(vec![1, 2, 3, 4, 5, 6], 100);
        let (metrics, _) = flooding.run(&mut env, 5, i64::min);
        // Full flooding on a complete graph: at least one entry per edge per
        // round, typically far more.
        assert!(metrics.messages > topo.edge_count());
    }

    #[test]
    fn async_flooding_converges_on_a_static_line() {
        let topo = Topology::line(5);
        let mut env = StaticEnv::new(topo);
        let baseline = FloodingAggregator::new(vec![9, 4, 7, 1, 5], 2_000);
        let (metrics, result) =
            baseline.run_async(&mut env, 1, 1.0, 1, 0.0, DeliveryRule::default(), i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
        assert_eq!(metrics.messages_dropped, 0, "drop_rate 0 drops nothing");
    }

    #[test]
    fn async_flooding_survives_drops_and_latency() {
        let topo = Topology::ring(6);
        let mut env = RandomChurnEnv::new(topo, 0.5, 1.0);
        let baseline = FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 20_000);
        let (metrics, result) =
            baseline.run_async(&mut env, 7, 0.5, 3, 0.3, DeliveryRule::default(), i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
        assert!(metrics.messages_dropped > 0);
        assert!(metrics.messages_dropped <= metrics.messages);
    }

    #[test]
    fn async_flooding_is_seed_deterministic_under_every_rule() {
        for rule in DeliveryRule::all() {
            let run = || {
                let mut env = RandomChurnEnv::new(Topology::ring(5), 0.6, 1.0);
                FloodingAggregator::new(vec![5, 4, 3, 2, 1], 10_000).run_async(
                    &mut env,
                    13,
                    0.5,
                    2,
                    0.2,
                    rule,
                    i64::min,
                )
            };
            let (a_metrics, a_result) = run();
            let (b_metrics, b_result) = run();
            assert_eq!(a_metrics, b_metrics, "{}", rule.label());
            assert_eq!(a_result, b_result, "{}", rule.label());
        }
    }

    #[test]
    fn delivery_rule_decides_the_periodic_partition_stall() {
        // Single-tick merges, latency 3: every cross-block gossip is due
        // in a partitioned phase.  The historical rule discards them all,
        // so knowledge never crosses blocks; valid-at-send and a
        // window-aware grace both restore convergence from the same seed.
        let run = |rule: DeliveryRule| {
            let mut env = PeriodicPartitionEnv::new(Topology::complete(6), 2, 8);
            FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 2_000).run_async(
                &mut env,
                3,
                0.5,
                3,
                0.0,
                rule,
                i64::min,
            )
        };
        let (stalled, no_result) = run(DeliveryRule::ValidAtDelivery);
        assert_eq!(no_result, None);
        assert!(!stalled.converged(), "short merge windows must stall");
        for rule in [DeliveryRule::ValidAtSend, DeliveryRule::any_overlap()] {
            let (metrics, result) = run(rule);
            assert_eq!(result, Some(1), "{}", rule.label());
            assert!(metrics.converged(), "{}", rule.label());
        }
    }

    #[test]
    fn impossible_environment_exhausts_budget() {
        let topo = Topology::line(3);
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let baseline = FloodingAggregator::new(vec![3, 2, 1], 50);
        let (metrics, result) = baseline.run(&mut env, 9, i64::min);
        assert_eq!(result, None);
        assert!(!metrics.converged());
        assert_eq!(metrics.rounds_executed, 50);
    }
}
