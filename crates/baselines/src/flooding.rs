//! The flooding / full-information baseline.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use selfsim_env::Environment;
use selfsim_trace::RunMetrics;

/// A flooding aggregator: every agent keeps the set of `(agent, value)`
/// pairs it has heard of (initially just its own) and, every round,
/// re-broadcasts its whole knowledge to every neighbour it can currently
/// reach.  The run converges when *every* agent has heard from every other
/// agent, at which point each agent can compute the aggregate locally.
///
/// Flooding is robust to churn (knowledge spreads through whatever links
/// exist) but pays for it in message volume: each agent repeatedly sends its
/// entire knowledge set.  Experiment E7 compares its message cost against
/// the self-similar algorithms under identical environments.
pub struct FloodingAggregator {
    values: Vec<i64>,
    max_rounds: usize,
}

impl FloodingAggregator {
    /// Creates the baseline for the given initial values.
    pub fn new(values: Vec<i64>, max_rounds: usize) -> Self {
        FloodingAggregator { values, max_rounds }
    }

    /// Runs the baseline under `environment`, aggregating with `fold`.
    /// Returns the metrics and the aggregate (if every agent heard from
    /// everyone within the budget).
    pub fn run<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        mut fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("flooding-baseline", environment.name(), n);
        // knowledge[a] = set of agent indices whose value agent a knows.
        let mut knowledge: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut result = None;

        for round in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = round + 1;
            let before = knowledge.clone();
            for edge in env_state.enabled_edges() {
                let (a, b) = (edge.lo().index(), edge.hi().index());
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                // Each endpoint sends its whole knowledge set to the other;
                // message cost is proportional to the entries sent.
                metrics.messages += before[a].len() + before[b].len();
                metrics.group_steps += 1;
                let merged: BTreeSet<usize> = before[a].union(&before[b]).copied().collect();
                if merged != knowledge[a] || merged != knowledge[b] {
                    metrics.effective_group_steps += 1;
                }
                knowledge[a].extend(merged.iter().copied());
                knowledge[b].extend(merged.iter().copied());
            }
            if knowledge.iter().all(|k| k.len() == n) {
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(round + 1);
                break;
            }
        }
        (metrics, result)
    }

    /// Runs the baseline on the asynchronous message-passing model: every
    /// tick, each currently-usable edge gossips with probability
    /// `interaction_rate` — both endpoints send a snapshot of their whole
    /// knowledge set, which is lost with probability `drop_rate` or arrives
    /// after a uniform `1..=max_latency` latency (and is then only accepted
    /// if the pair can still communicate).  The run converges when every
    /// agent has heard from every other agent.
    pub fn run_async<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        interaction_rate: f64,
        max_latency: usize,
        drop_rate: f64,
        mut fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        struct Gossip {
            deliver_at: usize,
            from: usize,
            to: usize,
            payload: BTreeSet<usize>,
        }
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("flooding-baseline", environment.name(), n);
        let mut knowledge: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut pending: Vec<Gossip> = Vec::new();
        let mut result = None;

        for tick in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = tick + 1;

            for edge in env_state.enabled_edges() {
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                if !rng.gen_bool(interaction_rate) {
                    continue;
                }
                for (from, to) in [
                    (edge.lo().index(), edge.hi().index()),
                    (edge.hi().index(), edge.lo().index()),
                ] {
                    metrics.messages += knowledge[from].len();
                    if rng.gen_bool(drop_rate) {
                        continue; // lost in flight
                    }
                    let latency = rng.gen_range(1..=max_latency.max(1));
                    pending.push(Gossip {
                        deliver_at: tick + latency,
                        from,
                        to,
                        payload: knowledge[from].clone(),
                    });
                }
            }

            // In-place drain (order-preserving): no per-tick reallocation
            // of the undelivered queue.
            let due: Vec<Gossip> = pending.extract_if(.., |g| g.deliver_at <= tick).collect();
            for gossip in due {
                use selfsim_env::AgentId;
                if !env_state.can_communicate(AgentId(gossip.from), AgentId(gossip.to)) {
                    continue;
                }
                metrics.group_steps += 1;
                let before = knowledge[gossip.to].len();
                knowledge[gossip.to].extend(gossip.payload.iter().copied());
                if knowledge[gossip.to].len() > before {
                    metrics.effective_group_steps += 1;
                }
            }

            if knowledge.iter().all(|k| k.len() == n) {
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(tick + 1);
                break;
            }
        }
        (metrics, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_env::{AdversarialEnv, RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn flooding_converges_in_diameter_rounds_on_a_static_line() {
        let topo = Topology::line(5);
        let mut env = StaticEnv::new(topo);
        let baseline = FloodingAggregator::new(vec![9, 4, 7, 1, 5], 100);
        let (metrics, result) = baseline.run(&mut env, 1, i64::min);
        assert_eq!(result, Some(1));
        // Knowledge spreads one hop per round: the line of 5 has diameter 4.
        assert_eq!(metrics.rounds_to_convergence, Some(4));
    }

    #[test]
    fn flooding_survives_churn() {
        let topo = Topology::ring(6);
        let mut env = RandomChurnEnv::new(topo, 0.4, 1.0);
        let baseline = FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 2_000);
        let (metrics, result) = baseline.run(&mut env, 7, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_converges_under_the_adversary_unlike_the_snapshot() {
        let topo = Topology::complete(4);
        let mut env = AdversarialEnv::new(topo, 0);
        let baseline = FloodingAggregator::new(vec![4, 3, 2, 1], 500);
        let (metrics, result) = baseline.run(&mut env, 3, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_messages_grow_with_knowledge_size() {
        let topo = Topology::complete(6);
        let mut env = StaticEnv::new(topo.clone());
        let flooding = FloodingAggregator::new(vec![1, 2, 3, 4, 5, 6], 100);
        let (metrics, _) = flooding.run(&mut env, 5, i64::min);
        // Full flooding on a complete graph: at least one entry per edge per
        // round, typically far more.
        assert!(metrics.messages > topo.edge_count());
    }

    #[test]
    fn async_flooding_converges_on_a_static_line() {
        let topo = Topology::line(5);
        let mut env = StaticEnv::new(topo);
        let baseline = FloodingAggregator::new(vec![9, 4, 7, 1, 5], 2_000);
        let (metrics, result) = baseline.run_async(&mut env, 1, 1.0, 1, 0.0, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn async_flooding_survives_drops_and_latency() {
        let topo = Topology::ring(6);
        let mut env = RandomChurnEnv::new(topo, 0.5, 1.0);
        let baseline = FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 20_000);
        let (metrics, result) = baseline.run_async(&mut env, 7, 0.5, 3, 0.3, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn async_flooding_is_seed_deterministic() {
        let run = || {
            let mut env = RandomChurnEnv::new(Topology::ring(5), 0.6, 1.0);
            FloodingAggregator::new(vec![5, 4, 3, 2, 1], 10_000).run_async(
                &mut env,
                13,
                0.5,
                2,
                0.2,
                i64::min,
            )
        };
        let (a_metrics, a_result) = run();
        let (b_metrics, b_result) = run();
        assert_eq!(a_metrics, b_metrics);
        assert_eq!(a_result, b_result);
    }

    #[test]
    fn impossible_environment_exhausts_budget() {
        let topo = Topology::line(3);
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let baseline = FloodingAggregator::new(vec![3, 2, 1], 50);
        let (metrics, result) = baseline.run(&mut env, 9, i64::min);
        assert_eq!(result, None);
        assert!(!metrics.converged());
        assert_eq!(metrics.rounds_executed, 50);
    }
}
