//! The flooding / full-information baseline.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use selfsim_env::Environment;
use selfsim_trace::RunMetrics;

/// A flooding aggregator: every agent keeps the set of `(agent, value)`
/// pairs it has heard of (initially just its own) and, every round,
/// re-broadcasts its whole knowledge to every neighbour it can currently
/// reach.  The run converges when *every* agent has heard from every other
/// agent, at which point each agent can compute the aggregate locally.
///
/// Flooding is robust to churn (knowledge spreads through whatever links
/// exist) but pays for it in message volume: each agent repeatedly sends its
/// entire knowledge set.  Experiment E7 compares its message cost against
/// the self-similar algorithms under identical environments.
pub struct FloodingAggregator {
    values: Vec<i64>,
    max_rounds: usize,
}

impl FloodingAggregator {
    /// Creates the baseline for the given initial values.
    pub fn new(values: Vec<i64>, max_rounds: usize) -> Self {
        FloodingAggregator { values, max_rounds }
    }

    /// Runs the baseline under `environment`, aggregating with `fold`.
    /// Returns the metrics and the aggregate (if every agent heard from
    /// everyone within the budget).
    pub fn run<E: Environment + ?Sized>(
        &self,
        environment: &mut E,
        seed: u64,
        mut fold: impl FnMut(i64, i64) -> i64,
    ) -> (RunMetrics, Option<i64>) {
        let n = self.values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = RunMetrics::new("flooding-baseline", environment.name(), n);
        // knowledge[a] = set of agent indices whose value agent a knows.
        let mut knowledge: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut result = None;

        for round in 0..self.max_rounds {
            let env_state = environment.step(&mut rng);
            metrics.rounds_executed = round + 1;
            let before = knowledge.clone();
            for edge in env_state.enabled_edges() {
                let (a, b) = (edge.lo().index(), edge.hi().index());
                if !env_state.can_communicate(edge.lo(), edge.hi()) {
                    continue;
                }
                // Each endpoint sends its whole knowledge set to the other;
                // message cost is proportional to the entries sent.
                metrics.messages += before[a].len() + before[b].len();
                metrics.group_steps += 1;
                let merged: BTreeSet<usize> = before[a].union(&before[b]).copied().collect();
                if merged != knowledge[a] || merged != knowledge[b] {
                    metrics.effective_group_steps += 1;
                }
                knowledge[a].extend(merged.iter().copied());
                knowledge[b].extend(merged.iter().copied());
            }
            if knowledge.iter().all(|k| k.len() == n) {
                let aggregate = self
                    .values
                    .iter()
                    .copied()
                    .reduce(&mut fold)
                    .expect("at least one agent");
                result = Some(aggregate);
                metrics.rounds_to_convergence = Some(round + 1);
                break;
            }
        }
        (metrics, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_env::{AdversarialEnv, RandomChurnEnv, StaticEnv, Topology};

    #[test]
    fn flooding_converges_in_diameter_rounds_on_a_static_line() {
        let topo = Topology::line(5);
        let mut env = StaticEnv::new(topo);
        let baseline = FloodingAggregator::new(vec![9, 4, 7, 1, 5], 100);
        let (metrics, result) = baseline.run(&mut env, 1, i64::min);
        assert_eq!(result, Some(1));
        // Knowledge spreads one hop per round: the line of 5 has diameter 4.
        assert_eq!(metrics.rounds_to_convergence, Some(4));
    }

    #[test]
    fn flooding_survives_churn() {
        let topo = Topology::ring(6);
        let mut env = RandomChurnEnv::new(topo, 0.4, 1.0);
        let baseline = FloodingAggregator::new(vec![6, 5, 4, 3, 2, 1], 2_000);
        let (metrics, result) = baseline.run(&mut env, 7, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_converges_under_the_adversary_unlike_the_snapshot() {
        let topo = Topology::complete(4);
        let mut env = AdversarialEnv::new(topo, 0);
        let baseline = FloodingAggregator::new(vec![4, 3, 2, 1], 500);
        let (metrics, result) = baseline.run(&mut env, 3, i64::min);
        assert_eq!(result, Some(1));
        assert!(metrics.converged());
    }

    #[test]
    fn flooding_messages_grow_with_knowledge_size() {
        let topo = Topology::complete(6);
        let mut env = StaticEnv::new(topo.clone());
        let flooding = FloodingAggregator::new(vec![1, 2, 3, 4, 5, 6], 100);
        let (metrics, _) = flooding.run(&mut env, 5, i64::min);
        // Full flooding on a complete graph: at least one entry per edge per
        // round, typically far more.
        assert!(metrics.messages > topo.edge_count());
    }

    #[test]
    fn impossible_environment_exhausts_budget() {
        let topo = Topology::line(3);
        let mut env = RandomChurnEnv::new(topo, 0.0, 0.0);
        let baseline = FloodingAggregator::new(vec![3, 2, 1], 50);
        let (metrics, result) = baseline.run(&mut env, 9, i64::min);
        assert_eq!(result, None);
        assert!(!metrics.converged());
        assert_eq!(metrics.rounds_executed, 50);
    }
}
