//! Extension — distributed OR and AND (detection / agreement primitives).
//!
//! The smallest possible instances of the methodology: one bit per agent.
//! Distributed OR ("has anyone detected the event?") replaces every bit by
//! the disjunction of the group; distributed AND is its dual.  Both are
//! defined by a commutative associative operator, hence super-idempotent,
//! and both use the obvious counting objective in summation form.

use selfsim_core::{
    ConsensusFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: one bit.
pub type State = bool;

/// The distributed-OR function: every agent adopts the disjunction.
pub fn or_function() -> impl selfsim_core::DistributedFunction<State> {
    ConsensusFunction::new("or", |s: &Multiset<State>| s.iter().any(|b| *b))
}

/// The distributed-AND function: every agent adopts the conjunction.
pub fn and_function() -> impl selfsim_core::DistributedFunction<State> {
    ConsensusFunction::new("and", |s: &Multiset<State>| s.iter().all(|b| *b))
}

/// Objective for OR: the number of agents still holding `false`…
/// …unless nobody holds `true`, in which case the state is already the
/// target and the objective is uniformly zero anyway by conservation.
pub fn or_objective() -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("false-count", |b: &State| if *b { 0.0 } else { 1.0 })
}

/// Objective for AND: the number of agents still holding `true`.
pub fn and_objective() -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("true-count", |b: &State| if *b { 1.0 } else { 0.0 })
}

/// The OR group step: every member adopts the group disjunction.
pub fn or_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "adopt-or",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let any = states.iter().any(|b| *b);
            vec![any; states.len()]
        },
    )
}

/// The AND group step: every member adopts the group conjunction.
pub fn and_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "adopt-and",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let all = states.iter().all(|b| *b);
            vec![all; states.len()]
        },
    )
}

/// Builds the distributed-OR system over a connected fairness graph.
pub fn or_system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    assert!(
        topology.is_connected(),
        "requires a connected fairness graph"
    );
    assert_eq!(initial.len(), topology.agent_count());
    SelfSimilarSystem::new(
        "boolean-or",
        or_function(),
        or_objective(),
        or_step(),
        initial.to_vec(),
        FairnessSpec::for_graph(&topology),
    )
}

/// Builds the distributed-AND system over a connected fairness graph.
pub fn and_system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    assert!(
        topology.is_connected(),
        "requires a connected fairness graph"
    );
    assert_eq!(initial.len(), topology.agent_count());
    SelfSimilarSystem::new(
        "boolean-and",
        and_function(),
        and_objective(),
        and_step(),
        initial.to_vec(),
        FairnessSpec::for_graph(&topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction};

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [true].into(),
            [false].into(),
            [true, false].into(),
            [false, false, true].into(),
            [false, false].into(),
        ]
    }

    #[test]
    fn or_and_functions_compute_the_right_consensus() {
        assert_eq!(
            or_function().apply(&[false, true, false].into()),
            [true, true, true].into()
        );
        assert_eq!(
            or_function().apply(&[false, false].into()),
            [false, false].into()
        );
        assert_eq!(
            and_function().apply(&[true, false].into()),
            [false, false].into()
        );
        assert_eq!(
            and_function().apply(&[true, true].into()),
            [true, true].into()
        );
    }

    #[test]
    fn both_functions_are_super_idempotent() {
        assert!(check_idempotent(&or_function(), &samples()).is_ok());
        assert!(check_super_idempotent(&or_function(), &samples()).is_ok());
        assert!(check_idempotent(&and_function(), &samples()).is_ok());
        assert!(check_super_idempotent(&and_function(), &samples()).is_ok());
    }

    #[test]
    fn or_system_passes_proof_obligations() {
        let sys = or_system(&[false, true, false, false], Topology::star(4));
        let mut rng = StdRng::seed_from_u64(31);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), [true, true, true, true].into());
    }

    #[test]
    fn and_system_passes_proof_obligations() {
        let sys = and_system(&[true, true, false, true], Topology::ring(4));
        let mut rng = StdRng::seed_from_u64(32);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), [false, false, false, false].into());
    }

    #[test]
    fn all_false_or_is_already_converged() {
        let sys = or_system(&[false, false], Topology::line(2));
        assert!(sys.is_converged(sys.initial_state()));
    }
}
