//! Extension — knowledge dissemination: every agent learns the union of all
//! initial knowledge sets.
//!
//! A direct generalisation of the consensus examples to set-valued states:
//! `f` replaces every agent's set by the union of all sets in the group.
//! Union is commutative and associative, so `f` is super-idempotent, and the
//! objective counts the missing elements per agent (summation form).
//! This is the pattern behind gossip-style membership and map
//! dissemination protocols, and it is the backbone of the convex-hull
//! example with "hull of" composed on top.

use std::collections::BTreeSet;

use selfsim_core::{
    FnDistributedFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: a finite set of items (integers for simplicity).
pub type State = BTreeSet<i64>;

/// The distributed function: every agent's set becomes the union of all sets.
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("set-union", |s: &Multiset<State>| {
        if s.is_empty() {
            return Multiset::new();
        }
        let union: State = s.iter().flat_map(|set| set.iter().copied()).collect();
        s.fill_with(union)
    })
}

/// The objective `h(S) = Σ_a (|U| − |V_a|)` where `U` is the union of all
/// initial sets (a constant of the instance).
pub fn objective(universe_size: usize) -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("missing-items", move |set: &State| {
        universe_size.saturating_sub(set.len()) as f64
    })
}

/// The group step: every member adopts the union of the group's sets.
pub fn merge_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "merge-sets",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let union: State = states.iter().flat_map(|s| s.iter().copied()).collect();
            vec![union; states.len()]
        },
    )
}

/// Builds the system for the given initial knowledge sets over a connected
/// fairness graph.
pub fn system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    assert!(
        topology.is_connected(),
        "the set-union example requires a connected fairness graph"
    );
    assert_eq!(initial.len(), topology.agent_count());
    let universe: State = initial.iter().flat_map(|s| s.iter().copied()).collect();
    SelfSimilarSystem::new(
        "set-union",
        function(),
        objective(universe.len()),
        merge_step(),
        initial.to_vec(),
        FairnessSpec::for_graph(&topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn set(items: &[i64]) -> State {
        items.iter().copied().collect()
    }

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [set(&[1])].into(),
            [set(&[1, 2]), set(&[3])].into(),
            [set(&[1]), set(&[1]), set(&[2, 4])].into(),
        ]
    }

    #[test]
    fn f_unions_all_knowledge() {
        let f = function();
        let out = f.apply(&[set(&[1, 2]), set(&[3])].into());
        assert_eq!(out, [set(&[1, 2, 3]), set(&[1, 2, 3])].into());
    }

    #[test]
    fn f_is_super_idempotent() {
        let f = function();
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
    }

    #[test]
    fn objective_counts_missing_items() {
        let h = objective(4);
        assert_eq!(h.eval(&[set(&[1]), set(&[1, 2, 3, 4])].into()), 3.0);
        assert_eq!(h.eval(&[set(&[1, 2, 3, 4])].into()), 0.0);
    }

    #[test]
    fn system_passes_proof_obligations() {
        let initial = vec![set(&[1, 2]), set(&[3]), set(&[2, 5])];
        let sys = system(&initial, Topology::line(3));
        let mut rng = StdRng::seed_from_u64(30);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), {
            let full = set(&[1, 2, 3, 5]);
            [full.clone(), full.clone(), full].into()
        });
    }
}
