//! §4.5 (second half) — Convex hull, the super-idempotent generalisation of
//! the circumscribing-circle problem.
//!
//! Each agent is a point (its *site*) and maintains a set of points `V_a`
//! representing its current hull, initially just its own site.  The
//! distributed function replaces every `V_a` by the convex hull of the union
//! of all the `V_a` in the group; because "the convex hull of all the points
//! equals the convex hull of (the hull of some of them) plus the rest"
//! (Figure 3), this function **is** super-idempotent.
//!
//! * `h(S) = |A|·P − Σ_a perimeter(V_a)`, where `P` is the perimeter of the
//!   global convex hull — per-agent term `P − perimeter(V_a)`, a
//!   summation-form (8) objective with a finite range, hence well-founded.
//! * `R`: groups merge hulls.  [`merge_all_step`] has every member adopt the
//!   hull of the union (fast); [`one_learns_step`] has a single member adopt
//!   the union — the paper's remark that `R` is easily implemented by
//!   asynchronous message passing, since a receiver can update its hull
//!   without the sender changing state.
//! * `Q`: `Q_E` for any connected graph `E`.
//!
//! Once converged, the circumscribing circle of the original sites is
//! recovered from any agent's hull with [`circumscribing_circle`].

use selfsim_core::{
    FnDistributedFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_geometry::{convex_hull, hull_perimeter, smallest_enclosing_circle, Circle, Point};
use selfsim_multiset::Multiset;

/// The agent state: the fixed site and the agent's current hull, stored as
/// the hull's vertices sorted lexicographically (a canonical form, so that
/// two agents with the same hull have equal states).
pub type State = (Point, Vec<Point>);

/// Builds the canonical hull representation of a point set.
pub fn canonical_hull(points: &[Point]) -> Vec<Point> {
    let mut hull = convex_hull(points);
    hull.sort();
    hull
}

/// The initial state of an agent at `site`: `V_a = {site}`.
pub fn initial_state(site: Point) -> State {
    (site, vec![site])
}

/// The perimeter of an agent's current hull.
pub fn state_perimeter(state: &State) -> f64 {
    hull_perimeter(&convex_hull(&state.1))
}

/// The distributed function: every agent's hull becomes the hull of the
/// union of all hull points in the group (sites unchanged).
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("convex-hull", |s: &Multiset<State>| {
        if s.is_empty() {
            return Multiset::new();
        }
        let all_points: Vec<Point> = s
            .iter()
            .flat_map(|(_, hull)| hull.iter().copied())
            .collect();
        let merged = canonical_hull(&all_points);
        s.map(|(site, _)| (*site, merged.clone()))
    })
}

/// The objective `h(S) = Σ_a (P − perimeter(V_a))` where `P` is the
/// perimeter of the convex hull of all the sites (a constant of the
/// instance).
pub fn objective(global_perimeter: f64) -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("perimeter-deficit", move |state: &State| {
        global_perimeter - state_perimeter(state)
    })
}

/// The "everyone adopts the merged hull" group step.
pub fn merge_all_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "merge-all-hulls",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let all_points: Vec<Point> =
                states.iter().flat_map(|(_, h)| h.iter().copied()).collect();
            let merged = canonical_hull(&all_points);
            states
                .iter()
                .map(|(site, _)| (*site, merged.clone()))
                .collect()
        },
    )
}

/// The asymmetric step: only the first member of the group adopts the merged
/// hull; everyone else keeps its current hull.  Models an agent updating on
/// message receipt without the senders changing state (§4.5).
pub fn one_learns_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "one-learns",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            if states.is_empty() {
                return Vec::new();
            }
            let all_points: Vec<Point> =
                states.iter().flat_map(|(_, h)| h.iter().copied()).collect();
            let merged = canonical_hull(&all_points);
            let mut out = states.to_vec();
            out[0] = (out[0].0, merged);
            out
        },
    )
}

/// Builds the system for the given sites over a connected fairness graph,
/// using [`merge_all_step`].
///
/// # Panics
///
/// Panics if `topology` is not connected or the site count does not match.
pub fn system(sites: &[Point], topology: Topology) -> SelfSimilarSystem<State> {
    system_with_step(sites, topology, merge_all_step())
}

/// Builds the system with a caller-chosen group step (e.g.
/// [`one_learns_step`]).
pub fn system_with_step(
    sites: &[Point],
    topology: Topology,
    step: impl GroupStep<State> + 'static,
) -> SelfSimilarSystem<State> {
    assert!(
        topology.is_connected(),
        "the convex-hull example requires a connected fairness graph"
    );
    assert_eq!(sites.len(), topology.agent_count());
    let global_perimeter = hull_perimeter(&convex_hull(sites));
    let initial: Vec<State> = sites.iter().map(|p| initial_state(*p)).collect();
    SelfSimilarSystem::new(
        "convex-hull",
        function(),
        objective(global_perimeter),
        step,
        initial,
        FairnessSpec::for_graph(&topology),
    )
}

/// Recovers the answer to the original §4.5 problem — the circumscribing
/// circle of all the sites — from any agent's state once the system has
/// converged.
pub fn circumscribing_circle(state: &State) -> Circle {
    smallest_enclosing_circle(&state.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{
        check_idempotent, check_super_idempotent, check_super_idempotent_single_element,
    };
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn square_sites() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 1.0), // interior site
        ]
    }

    fn states_of(sites: &[Point]) -> Multiset<State> {
        sites.iter().map(|p| initial_state(*p)).collect()
    }

    #[test]
    fn f_gives_every_agent_the_global_hull() {
        let f = function();
        let out = f.apply(&states_of(&square_sites()));
        let hulls: Vec<Vec<Point>> = out.iter().map(|(_, h)| h.clone()).collect();
        assert!(hulls.iter().all(|h| h == &hulls[0]));
        assert_eq!(hulls[0].len(), 4); // the interior site is not a vertex
    }

    #[test]
    fn f_is_super_idempotent() {
        let f = function();
        let sites = square_sites();
        let samples: Vec<Multiset<State>> = vec![
            Multiset::new(),
            states_of(&sites[..1]),
            states_of(&sites[..3]),
            states_of(&sites),
            f.apply(&states_of(&sites[..3])),
        ];
        assert!(check_idempotent(&f, &samples).is_ok());
        assert!(check_super_idempotent(&f, &samples).is_ok());
        assert!(check_super_idempotent_single_element(
            &f,
            &samples,
            &[
                initial_state(Point::new(9.0, -1.0)),
                initial_state(Point::new(1.0, 1.0))
            ]
        )
        .is_ok());
    }

    #[test]
    fn objective_is_nonnegative_and_zero_at_the_target() {
        let sites = square_sites();
        let p = hull_perimeter(&convex_hull(&sites));
        let h = objective(p);
        let initial = states_of(&sites);
        assert!(h.eval(&initial) > 0.0);
        let target = function().apply(&initial);
        assert!(h.eval(&target).abs() < 1e-9);
    }

    #[test]
    fn merge_all_step_passes_proof_obligations() {
        let sys = system(&square_sites(), Topology::ring(5));
        let mut rng = StdRng::seed_from_u64(21);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn one_learns_step_refines_d() {
        let sites = square_sites();
        let sys = system_with_step(&sites, Topology::ring(5), one_learns_step());
        let mut rng = StdRng::seed_from_u64(22);
        let groups: Vec<Vec<State>> = vec![
            vec![initial_state(sites[0]), initial_state(sites[1])],
            vec![
                initial_state(sites[2]),
                initial_state(sites[3]),
                initial_state(sites[4]),
            ],
        ];
        let report = proof::check_r_implements_d(&sys, &groups, 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn circumscribing_circle_is_recovered_from_the_converged_state() {
        let sites = square_sites();
        let sys = system(&sites, Topology::complete(5));
        let target_states: Vec<State> = sys.target().iter().cloned().collect();
        let circle = circumscribing_circle(&target_states[0]);
        let direct = smallest_enclosing_circle(&sites);
        assert!(circle.center.distance(direct.center) < 1e-9);
        assert!((circle.radius - direct.radius).abs() < 1e-9);
        for p in &sites {
            assert!(circle.contains(*p, 1e-9));
        }
    }

    #[test]
    fn state_perimeter_of_initial_state_is_zero() {
        assert_eq!(state_perimeter(&initial_state(Point::new(1.0, 2.0))), 0.0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_topology_rejected() {
        let _ = system(&[Point::origin(), Point::new(1.0, 0.0)], Topology::empty(2));
    }
}
