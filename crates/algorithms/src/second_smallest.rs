//! §4.3 — Second smallest value.
//!
//! The *second smallest* of a multiset is the smallest value different from
//! the minimum (or the common value when all values are equal).  The obvious
//! consensus function — every agent adopts the second smallest — is
//! idempotent but **not super-idempotent** (the paper's counterexample:
//! `X = {1,3}`, `Y = {2}`), so the self-similar strategy cannot be applied
//! to it directly.  [`naive_function`] implements that function so the
//! counterexample can be demonstrated mechanically.
//!
//! The paper's fix is to *generalise* the problem: each agent maintains a
//! pair `(x_a, y_a)` — its current estimates of the smallest and second
//! smallest values — initially `(x_a(0), x_a(0))`.  The generalised `f`
//! replaces every pair by `(x, y)`, the two smallest **distinct** values
//! appearing anywhere in the group's pairs (leaving the multiset unchanged
//! when only one distinct value exists).  This `f` is super-idempotent.
//!
//! ## Deviation from the paper (documented)
//!
//! The paper proposes `h(S) = Σ_a (x_a + y_a)`.  That objective is not
//! strictly decreased by every admissible group step: from
//! `{(2,2), (5,5)}` the only `f`-conserving move towards the target is to
//! `{(2,5), (2,5)}`, and both states have `Σ(x+y) = 14`.  We therefore use
//! the per-agent term `x_a + y_eff(a)` where `y_eff(a) = y_a` when
//! `y_a > x_a` and a fixed bound `B` (larger than every initial value) when
//! `y_a = x_a` ("no second value learned yet").  This keeps the summation
//! form (8) — so local-to-global still holds — and every group step that
//! changes the multiset strictly decreases it.  The regression test
//! `paper_objective_is_not_strictly_decreasing` pins down the corner case
//! that motivates the change.

use selfsim_core::{
    ConsensusFunction, FnDistributedFunction, FnGroupStep, GroupStep, SelfSimilarSystem,
    SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The generalised agent state: `(smallest seen, second smallest seen)`,
/// with `y = x` meaning "no second distinct value known yet".
pub type State = (i64, i64);

/// The **naive**, non-super-idempotent consensus function of the original
/// problem: every agent adopts the second smallest value of the multiset.
///
/// Kept for the §4.3 counterexample; do not build a system from it.
pub fn naive_function() -> impl selfsim_core::DistributedFunction<i64> {
    ConsensusFunction::new("second-smallest-naive", |s: &Multiset<i64>| {
        let min = s.min_value().copied().unwrap_or(0);
        s.iter().copied().filter(|v| *v != min).min().unwrap_or(min)
    })
}

/// The two smallest distinct values appearing (in either slot) in a multiset
/// of pairs; `None` if the multiset is empty, `(v, v)` if only one distinct
/// value exists.
fn smallest_two(s: &Multiset<State>) -> Option<(i64, i64)> {
    let mut values: Vec<i64> = s.iter().flat_map(|(x, y)| [*x, *y]).collect();
    values.sort_unstable();
    values.dedup();
    match values.as_slice() {
        [] => None,
        [only] => Some((*only, *only)),
        [first, second, ..] => Some((*first, *second)),
    }
}

/// The generalised (super-idempotent) distributed function: every pair
/// becomes the two smallest distinct values of the group.
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("smallest-two", |s: &Multiset<State>| {
        match smallest_two(s) {
            None => Multiset::new(),
            Some(pair) => s.fill_with(pair),
        }
    })
}

/// The objective in summation form: `x + y` when a second value is known,
/// `x + bound` otherwise (see the module docs for why this deviates from the
/// paper's `Σ(x + y)`).
pub fn objective(bound: i64) -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("sum-of-pair-knowledge", move |(x, y): &State| {
        let y_eff = if y > x { *y } else { bound };
        (*x + y_eff) as f64
    })
}

/// The paper's original objective `Σ_a (x_a + y_a)`, kept so the test-suite
/// and EXPERIMENTS.md can demonstrate its corner case.
pub fn paper_objective() -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("sum-of-pairs", |(x, y): &State| (*x + *y) as f64)
}

/// The group step: every member adopts the group's two smallest distinct
/// values.
pub fn adopt_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "adopt-smallest-two",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let ms: Multiset<State> = states.iter().copied().collect();
            match smallest_two(&ms) {
                None => Vec::new(),
                Some(pair) => vec![pair; states.len()],
            }
        },
    )
}

/// Builds the generalised system for the given initial *values* (each agent
/// starts with the pair `(v, v)`), over a connected fairness graph.
///
/// # Panics
///
/// Panics if any initial value is negative or the topology is not connected.
pub fn system(initial_values: &[i64], topology: Topology) -> SelfSimilarSystem<State> {
    assert!(
        initial_values.iter().all(|v| *v >= 0),
        "the second-smallest example assumes non-negative initial values"
    );
    assert!(
        topology.is_connected(),
        "the second-smallest example requires a connected fairness graph"
    );
    assert_eq!(initial_values.len(), topology.agent_count());
    let bound = initial_values.iter().copied().max().unwrap_or(0) + 1;
    let initial: Vec<State> = initial_values.iter().map(|v| (*v, *v)).collect();
    SelfSimilarSystem::new(
        "second-smallest",
        function(),
        objective(bound),
        adopt_step(),
        initial,
        FairnessSpec::for_graph(&topology),
    )
}

/// Extracts the answer to the *original* problem (the second smallest value)
/// from a converged generalised state.
pub fn extract_answer(state: &[State]) -> Option<i64> {
    state.first().map(|(x, y)| if y > x { *y } else { *x })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{
        check_idempotent, check_local_conservation_implies_global, check_super_idempotent,
        check_super_idempotent_single_element,
    };
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    #[test]
    fn naive_function_matches_paper_example() {
        assert_eq!(
            naive_function().apply(&[3, 5, 3, 7].into()),
            [5, 5, 5, 5].into()
        );
        // All-equal multisets keep their common value.
        assert_eq!(naive_function().apply(&[4, 4].into()), [4, 4].into());
    }

    #[test]
    fn naive_function_is_idempotent_but_not_super_idempotent() {
        // The paper's counterexample: X = {1,3}, Y = {2}.
        let f = naive_function();
        let x: Multiset<i64> = [1, 3].into();
        let y: Multiset<i64> = [2].into();
        assert!(check_idempotent(&f, &[x.clone(), y.clone(), x.union(&y)]).is_ok());
        let fx = f.apply(&x);
        assert_eq!(fx, [3, 3].into());
        assert_eq!(f.apply(&fx.union(&y)), [3, 3, 3].into());
        assert_eq!(f.apply(&x.union(&y)), [2, 2, 2].into());
        assert!(check_super_idempotent(&f, &[x, y]).is_err());
    }

    fn pair_samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [(2, 2)].into(),
            [(2, 5), (3, 4), (2, 7)].into(),
            [(2, 2), (2, 2)].into(),
            [(1, 1), (3, 3)].into(),
            [(2, 2), (5, 5)].into(),
            [(1, 3), (1, 3)].into(),
        ]
    }

    #[test]
    fn generalised_function_matches_paper_examples() {
        let f = function();
        assert_eq!(
            f.apply(&[(2, 5), (3, 4), (2, 7)].into()),
            [(2, 3), (2, 3), (2, 3)].into()
        );
        assert_eq!(f.apply(&[(2, 2), (2, 2)].into()), [(2, 2), (2, 2)].into());
    }

    #[test]
    fn generalised_function_is_super_idempotent() {
        let f = function();
        assert!(check_idempotent(&f, &pair_samples()).is_ok());
        assert!(check_super_idempotent(&f, &pair_samples()).is_ok());
        assert!(check_super_idempotent_single_element(
            &f,
            &pair_samples(),
            &[(0, 0), (2, 2), (1, 4), (6, 9)]
        )
        .is_ok());
        assert!(check_local_conservation_implies_global(&f, &pair_samples()).is_ok());
    }

    #[test]
    fn paper_objective_is_not_strictly_decreasing() {
        // The corner case documented in the module docs: {(2,2),(5,5)} must
        // move to {(2,5),(2,5)} (the group's f-image), but the paper's
        // Σ(x+y) objective does not strictly decrease across that move.
        let h = paper_objective();
        let before: Multiset<State> = [(2, 2), (5, 5)].into();
        let after: Multiset<State> = [(2, 5), (2, 5)].into();
        assert_eq!(function().apply(&before), after);
        assert_eq!(h.eval(&before), h.eval(&after));
        assert!(!h.strictly_decreases(&before, &after));
        // The corrected objective does strictly decrease.
        let fixed = objective(6);
        assert!(fixed.strictly_decreases(&before, &after));
    }

    #[test]
    fn system_passes_proof_obligations() {
        let sys = system(&[4, 9, 2, 7], Topology::ring(4));
        let mut rng = StdRng::seed_from_u64(8);
        let report = proof::audit_system(
            &sys,
            &[vec![(2, 2), (5, 5)], vec![(1, 4), (1, 1)]],
            3,
            &mut rng,
        );
        assert!(report.passed(), "{:?}", report.violations);
        // Target: every agent knows (2, 4).
        assert_eq!(sys.target(), [(2, 4), (2, 4), (2, 4), (2, 4)].into());
    }

    #[test]
    fn extract_answer_reads_the_second_smallest() {
        assert_eq!(extract_answer(&[(2, 4), (2, 4)]), Some(4));
        assert_eq!(extract_answer(&[(3, 3)]), Some(3)); // all values equal
        assert_eq!(extract_answer(&[]), None);
    }

    #[test]
    fn all_equal_initial_values_are_already_converged() {
        let sys = system(&[5, 5, 5], Topology::line(3));
        assert!(sys.is_converged(sys.initial_state()));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_topology_rejected() {
        let _ = system(&[1, 2], Topology::empty(2));
    }
}
