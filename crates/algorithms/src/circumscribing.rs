//! §4.5 (first half) — the **naive** circumscribing-circle function.
//!
//! Each agent is a point in the plane and maintains an estimate of the
//! circumscribing circle of all the points (initially the degenerate circle
//! of radius zero around itself).  The natural distributed function —
//! replace every estimate by the smallest circle containing all current
//! estimates — is idempotent but **not super-idempotent**: Figure 2 of the
//! paper shows three points whose exact circumscribing circle, combined with
//! a fourth point, yields a *different* (larger) circle than the
//! circumscribing circle of the four points computed directly.
//!
//! Because of that, no objective function can rescue the naive formulation;
//! the paper generalises the problem to the convex hull (see
//! [`crate::convex_hull`]), from which the circumscribing circle is
//! recovered at the end.  This module only provides the naive function, the
//! agent state, and the machinery needed to reproduce the Figure 2
//! counterexample mechanically; it deliberately does not offer a `system`
//! constructor.

use selfsim_core::FnDistributedFunction;
use selfsim_geometry::{enclosing_circle_of_circles, Circle, Point};
use selfsim_multiset::Multiset;

/// The agent state of the naive formulation: the (fixed) coordinates of the
/// agent and its current estimate of the circumscribing circle, stored as
/// `(site, centre, radius)` rounded to a fixed grid so the state is `Ord`.
///
/// Coordinates are scaled by [`SCALE`] and stored as integers; this keeps
/// multiset equality exact, which the super-idempotence checkers need.
pub type State = (i64, i64, i64, i64, i64);

/// Fixed-point scale used to store coordinates in the agent state.
pub const SCALE: f64 = 1_000_000.0;

/// Builds the agent state for a site with the given estimate.
pub fn make_state(site: Point, estimate: Circle) -> State {
    (
        (site.x * SCALE).round() as i64,
        (site.y * SCALE).round() as i64,
        (estimate.center.x * SCALE).round() as i64,
        (estimate.center.y * SCALE).round() as i64,
        (estimate.radius * SCALE).round() as i64,
    )
}

/// The initial state of an agent at `site`: its estimate is the degenerate
/// circle of radius zero at the site.
pub fn initial_state(site: Point) -> State {
    make_state(site, Circle::point(site))
}

/// Reads the circle estimate out of an agent state.
pub fn estimate_of(state: &State) -> Circle {
    Circle::new(
        Point::new(state.2 as f64 / SCALE, state.3 as f64 / SCALE),
        state.4 as f64 / SCALE,
    )
}

/// Reads the (fixed) site coordinates out of an agent state.
pub fn site_of(state: &State) -> Point {
    Point::new(state.0 as f64 / SCALE, state.1 as f64 / SCALE)
}

/// The naive distributed function: every agent's estimate becomes the
/// smallest circle enclosing all the current estimates (sites are unchanged).
pub fn naive_function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("circumscribing-circle", |s: &Multiset<State>| {
        if s.is_empty() {
            return Multiset::new();
        }
        let circles: Vec<Circle> = s.iter().map(estimate_of).collect();
        let enclosing = enclosing_circle_of_circles(&circles);
        s.map(|state| make_state(site_of(state), enclosing))
    })
}

/// The Figure 2 counterexample: returns `(direct, via_f)` where `direct` is
/// `f(S_B ⊎ S_C)`'s common radius and `via_f` is `f(f(S_B) ⊎ S_C)`'s common
/// radius, for `B` = three points forming a wide triangle and `C` = one
/// point outside the triangle's circumscribed circle.  The two radii differ,
/// demonstrating that the naive function is not super-idempotent.
pub fn figure2_counterexample() -> (f64, f64) {
    // Three points whose circumscribed circle is centred near the origin,
    // plus a fourth point to the far right (the paper's "agent 4").
    let b_sites = [
        Point::new(-1.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.0, 1.2),
    ];
    let c_site = Point::new(3.0, 0.0);
    let f = naive_function();
    let b: Multiset<State> = b_sites.iter().map(|p| initial_state(*p)).collect();
    let c: Multiset<State> = Multiset::singleton(initial_state(c_site));

    let direct = selfsim_core::DistributedFunction::apply(&f, &b.union(&c));
    let via_f = selfsim_core::DistributedFunction::apply(
        &f,
        &selfsim_core::DistributedFunction::apply(&f, &b).union(&c),
    );

    let radius_of =
        |ms: &Multiset<State>| -> f64 { estimate_of(ms.iter().next().expect("non-empty")).radius };
    (radius_of(&direct), radius_of(&via_f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::DistributedFunction;

    fn sample_sites() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(3.0, 1.0),
        ]
    }

    #[test]
    fn state_round_trips_through_fixed_point() {
        let site = Point::new(1.25, -2.5);
        let circle = Circle::new(Point::new(0.5, 0.75), 3.25);
        let state = make_state(site, circle);
        assert_eq!(site_of(&state), site);
        let back = estimate_of(&state);
        assert!(back.center.distance(circle.center) < 1e-6);
        assert!((back.radius - circle.radius).abs() < 1e-6);
    }

    #[test]
    fn initial_estimate_is_the_site_itself() {
        let s = initial_state(Point::new(4.0, 5.0));
        assert_eq!(estimate_of(&s).radius, 0.0);
        assert_eq!(estimate_of(&s).center, Point::new(4.0, 5.0));
    }

    #[test]
    fn naive_function_gives_every_agent_the_same_estimate() {
        let f = naive_function();
        let states: Multiset<State> = sample_sites().iter().map(|p| initial_state(*p)).collect();
        let out = f.apply(&states);
        let estimates: Vec<Circle> = out.iter().map(estimate_of).collect();
        let first = estimates[0];
        assert!(estimates
            .iter()
            .all(|c| c.center.distance(first.center) < 1e-6
                && (c.radius - first.radius).abs() < 1e-6));
        // Every site is inside the common estimate.
        for p in sample_sites() {
            assert!(first.contains(p, 1e-5));
        }
    }

    #[test]
    fn naive_function_is_idempotent_on_samples() {
        let f = naive_function();
        let samples: Vec<Multiset<State>> = vec![
            sample_sites().iter().map(|p| initial_state(*p)).collect(),
            sample_sites()[..2]
                .iter()
                .map(|p| initial_state(*p))
                .collect(),
        ];
        assert!(check_idempotent(&f, &samples).is_ok());
    }

    #[test]
    fn figure2_shows_non_super_idempotence() {
        let (direct, via_f) = figure2_counterexample();
        assert!(
            (direct - via_f).abs() > 1e-3,
            "radii should differ: direct = {direct}, via f = {via_f}"
        );
        // Replacing the three points by their circumscribing circle can only
        // make the final enclosing circle larger, never smaller.
        assert!(via_f > direct);
    }

    #[test]
    fn checker_also_finds_the_violation() {
        let f = naive_function();
        let b: Multiset<State> = [
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.2),
        ]
        .iter()
        .map(|p| initial_state(*p))
        .collect();
        let c: Multiset<State> = Multiset::singleton(initial_state(Point::new(3.0, 0.0)));
        assert!(check_super_idempotent(&f, &[b, c]).is_err());
    }
}
