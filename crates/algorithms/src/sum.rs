//! §4.2 — Sum of a set: a non-consensus example.
//!
//! The sum cannot be computed as a plain consensus (replacing every value by
//! the sum changes the sum — the consensus-shaped `f` is not idempotent).
//! The paper instead requires *one* agent to end up holding the total while
//! every other agent holds zero:
//!
//! * `f({3,5,3,7}) = {18,0,0,0}` — defined through a commutative associative
//!   operator, hence super-idempotent;
//! * `h(S) = (Σ_a x_a)² − Σ_a x_a²` — non-negative (for non-negative values)
//!   and integer-valued, zero exactly when at most one value is non-zero;
//! * `R` concentrates value: a group moves all of its mass onto one member
//!   (other admissible strategies merely push values apart);
//! * `Q`: the **complete graph** — zero-valued agents carry no information,
//!   so the eventual sum-holder must be able to meet every other agent
//!   directly, which is why the weakest value-independent fairness
//!   assumption is `Q_E` with `E` complete.

use selfsim_core::{FnDistributedFunction, FnGroupStep, FnObjective, GroupStep, SelfSimilarSystem};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: a single non-negative integer.
pub type State = i64;

/// The distributed function `f`: the sum with multiplicity 1, zero with
/// multiplicity `N − 1`.
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("sum-concentration", |s: &Multiset<State>| {
        if s.is_empty() {
            return Multiset::new();
        }
        let total: State = s.iter().copied().sum();
        let mut out = Multiset::new();
        out.insert(total);
        out.insert_n(0, s.len() - 1);
        out
    })
}

/// The objective `h(S) = (Σx)² − Σx²`, which shrinks as values spread apart
/// and is zero exactly when at most one value is non-zero.
pub fn objective() -> FnObjective<State, impl Fn(&Multiset<State>) -> f64> {
    FnObjective::new("square-spread", |s: &Multiset<State>| {
        let total: f64 = s.fold(0.0, |acc, v| acc + *v as f64);
        let squares: f64 = s.fold(0.0, |acc, v| acc + (*v as f64) * (*v as f64));
        total * total - squares
    })
}

/// The "concentrate on one member" group step: the whole group's mass moves
/// onto a single member (the one holding the current maximum, breaking ties
/// by position), everyone else drops to zero.
pub fn concentrate_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "concentrate",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let total: State = states.iter().copied().sum();
            let keeper = states
                .iter()
                .enumerate()
                .max_by_key(|(i, v)| (**v, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut out = vec![0; states.len()];
            out[keeper] = total;
            out
        },
    )
}

/// A gentler admissible step: the two extreme members of the group move one
/// unit of mass from the smaller non-zero holder to the larger one.  Slower,
/// but demonstrates that `R` is a *class* of algorithms.
pub fn trickle_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "trickle",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let mut out = states.to_vec();
            // Find the smallest non-zero holder and the largest holder.
            let donor = out
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > 0)
                .min_by_key(|(i, v)| (**v, *i))
                .map(|(i, _)| i);
            let recipient = out
                .iter()
                .enumerate()
                .max_by_key(|(i, v)| (**v, *i))
                .map(|(i, _)| i);
            if let (Some(d), Some(r)) = (donor, recipient) {
                if d != r && out[d] > 0 {
                    out[d] -= 1;
                    out[r] += 1;
                }
            }
            out
        },
    )
}

/// The fairness assumption: the complete graph over all agents.
pub fn fairness(agent_count: usize) -> FairnessSpec {
    FairnessSpec::complete(agent_count)
}

/// Builds the complete system with the [`concentrate_step`] strategy.
///
/// # Panics
///
/// Panics if any initial value is negative.  The supplied `topology` is used
/// as the fairness graph and **must be complete**, per §4.2.
pub fn system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    system_with_step(initial, topology, concentrate_step())
}

/// Builds the system with a caller-chosen admissible step.
pub fn system_with_step(
    initial: &[State],
    topology: Topology,
    step: impl GroupStep<State> + 'static,
) -> SelfSimilarSystem<State> {
    assert!(
        initial.iter().all(|v| *v >= 0),
        "the sum example assumes non-negative initial values"
    );
    assert_eq!(initial.len(), topology.agent_count());
    let spec = FairnessSpec::for_graph(&topology);
    assert!(
        spec.is_complete(),
        "the sum example requires the complete fairness graph (§4.2)"
    );
    SelfSimilarSystem::new("sum", function(), objective(), step, initial.to_vec(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [5].into(),
            [3, 5].into(),
            [3, 5, 3, 7].into(),
            [0, 0, 4].into(),
            [18, 0, 0, 0].into(),
        ]
    }

    #[test]
    fn paper_example_value() {
        assert_eq!(function().apply(&[3, 5, 3, 7].into()), [18, 0, 0, 0].into());
    }

    #[test]
    fn f_is_idempotent_and_super_idempotent() {
        let f = function();
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
    }

    #[test]
    fn naive_consensus_sum_would_not_be_idempotent() {
        // The observation that motivates §4.2: replacing every value by the
        // group sum is not idempotent.
        let naive = selfsim_core::ConsensusFunction::new("sum-consensus", |s: &Multiset<State>| {
            s.iter().copied().sum()
        });
        assert!(check_idempotent(&naive, &samples()).is_err());
    }

    #[test]
    fn objective_is_zero_exactly_on_concentrated_states() {
        let h = objective();
        assert_eq!(h.eval(&[18, 0, 0, 0].into()), 0.0);
        assert_eq!(h.eval(&[3, 5, 3, 7].into()), 232.0);
        assert!(h.eval(&[1, 1].into()) > 0.0);
    }

    #[test]
    fn concentrate_step_refines_d_and_escapes() {
        let sys = system(&[3, 5, 3, 7], Topology::complete(4));
        let mut rng = StdRng::seed_from_u64(5);
        let report = proof::audit_system(&sys, &[vec![0, 0, 9], vec![2, 2]], 3, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), [18, 0, 0, 0].into());
    }

    #[test]
    fn trickle_step_refines_d() {
        let sys = system_with_step(&[3, 5], Topology::complete(2), trickle_step());
        let mut rng = StdRng::seed_from_u64(6);
        let report = proof::check_r_implements_d(
            &sys,
            &[vec![3, 5], vec![0, 7], vec![2, 2, 2], vec![1, 0]],
            4,
            &mut rng,
        );
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn concentrate_keeps_group_sum() {
        let step = concentrate_step();
        let mut rng = StdRng::seed_from_u64(7);
        let after = step.step(&[3, 5, 3, 7], &mut rng);
        assert_eq!(after.iter().sum::<i64>(), 18);
        assert_eq!(after.iter().filter(|v| **v != 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "complete fairness graph")]
    fn non_complete_topology_is_rejected() {
        let _ = system(&[1, 2, 3], Topology::line(3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_are_rejected() {
        let _ = system(&[1, -2], Topology::complete(2));
    }
}
