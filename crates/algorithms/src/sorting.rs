//! §4.4 — Distributed sorting.
//!
//! Each agent holds one `(index, value)` pair of a distributed array; the
//! goal is for the values to end up in non-decreasing order of the indices.
//!
//! * `f` keeps the index set and the value multiset and re-pairs them so
//!   that values are sorted by index: `f({(1,3),(2,5),(3,3),(4,7)}) =
//!   {(1,3),(2,3),(3,5),(4,7)}`.  Sorting after a permutation gives the same
//!   sorted array, so `f` is super-idempotent.
//! * **Objective functions.**  The paper argues that the classic "number of
//!   out-of-order pairs" objective ([`inversion_objective`]) violates the
//!   local-to-global property, illustrated by Figure 1.
//!   [`figure1_counterexample`] reproduces the figure's exact arrays and
//!   groups and evaluates the objective on them; a reproduction note: under
//!   the paper's own textual definition of the objective
//!   (`|{(a,b) | i_a < i_b ∧ x_b ≺ x_a}|`) the computed values are
//!   (15, 12, 20, 17) rather than the figure's printed (10, 9, 14, 15), and
//!   both the group *and* the union improve across the figure's transition,
//!   so the printed instance does not itself witness the violation (see
//!   EXPERIMENTS.md).  The *qualitative* claim — objectives that are not in
//!   summation form can break obligation (10) — is nonetheless true and is
//!   witnessed mechanically by [`max_displacement_objective`].  The paper's
//!   recommended objective is the squared displacement
//!   `h(S) = Σ_a (i_a − ord(x_a))²` ([`displacement_objective`]), which is in
//!   summation form (8) and is the one used by [`system`].
//! * `R`: any permutation of a group's values that decreases `h`;
//!   [`sort_group_step`] sorts the group's values along the group's indices
//!   (every swap of an out-of-order pair decreases `h`, and so does their
//!   composition).
//! * `Q`: `Q_E` for the **line graph** in index order — each agent only ever
//!   needs to meet its left and right index neighbours.

use selfsim_core::{
    FnDistributedFunction, FnGroupStep, FnObjective, GroupStep, ObjectiveFunction,
    SelfSimilarSystem, SummationObjective,
};
use selfsim_env::FairnessSpec;
use selfsim_multiset::Multiset;
use std::collections::BTreeMap;

/// The agent state: `(index, value)`.
pub type State = (i64, i64);

/// The distributed function `f`: re-pair the indices (ascending) with the
/// values (ascending).
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new("sort-by-index", |s: &Multiset<State>| {
        let mut indices: Vec<i64> = s.iter().map(|(i, _)| *i).collect();
        let mut values: Vec<i64> = s.iter().map(|(_, x)| *x).collect();
        indices.sort_unstable();
        values.sort_unstable();
        indices.into_iter().zip(values).collect()
    })
}

/// The "number of out-of-order pairs" objective — well-founded but **not**
/// compatible with the local-to-global obligation (Figure 1).
pub fn inversion_objective() -> FnObjective<State, impl Fn(&Multiset<State>) -> f64> {
    FnObjective::new("inversions", |s: &Multiset<State>| {
        let entries: Vec<State> = s.iter().copied().collect();
        let mut count = 0usize;
        for (k, (i_a, x_a)) in entries.iter().enumerate() {
            for (i_b, x_b) in entries.iter().skip(k + 1) {
                let (lo, hi) = if i_a < i_b {
                    ((i_a, x_a), (i_b, x_b))
                } else {
                    ((i_b, x_b), (i_a, x_a))
                };
                if hi.1 < lo.1 {
                    count += 1;
                }
            }
        }
        count as f64
    })
}

/// The values printed inside the paper's Figure 1, in the order
/// `(h(S_B), h(S'_B), h(S_{B∪C}), h(S'_{B∪C}))`.
///
/// Kept as data so the figure harness can print them next to the values
/// computed from the textual definition of the objective (which differ —
/// see the module documentation and EXPERIMENTS.md).
pub const FIGURE1_REPORTED: (f64, f64, f64, f64) = (10.0, 9.0, 14.0, 15.0);

/// The *maximum* displacement objective `h(S) = max_a |i_a − ord(x_a)|`
/// (with `ord` relative to the multiset itself).
///
/// Well-founded, and every group-sorting step weakly improves it — but it is
/// **not** in summation form, and it demonstrably violates the
/// local-to-global obligation (10): a group can strictly reduce its own
/// maximum displacement while an untouched agent elsewhere pins the union's
/// maximum, so the union does not strictly improve.  This is the mechanical
/// stand-in for the point Figure 1 makes.
pub fn max_displacement_objective() -> FnObjective<State, impl Fn(&Multiset<State>) -> f64> {
    FnObjective::new("max-displacement", |s: &Multiset<State>| {
        let mut indices: Vec<i64> = s.iter().map(|(i, _)| *i).collect();
        let mut values: Vec<i64> = s.iter().map(|(_, x)| *x).collect();
        indices.sort_unstable();
        values.sort_unstable();
        let ord: BTreeMap<i64, i64> = values.iter().copied().zip(indices).collect();
        s.iter()
            .map(|(i, x)| (*i - ord.get(x).copied().unwrap_or(*i)).abs() as f64)
            .fold(0.0, f64::max)
    })
}

/// The squared-displacement objective of the paper:
/// `h(S) = Σ_a (i_a − ord(x_a))²`, where `ord` maps each value to the index
/// it must occupy in the fully sorted array.
///
/// `ord` is computed once from the *initial* array (indices consecutive,
/// values distinct, per the paper's simplifying assumptions) and captured by
/// the returned objective, giving a genuine summation-form (8) function.
pub fn displacement_objective(
    initial: &[State],
) -> SummationObjective<State, impl Fn(&State) -> f64> {
    let mut indices: Vec<i64> = initial.iter().map(|(i, _)| *i).collect();
    let mut values: Vec<i64> = initial.iter().map(|(_, x)| *x).collect();
    indices.sort_unstable();
    values.sort_unstable();
    let ord: BTreeMap<i64, i64> = values.into_iter().zip(indices).collect();
    SummationObjective::new("squared-displacement", move |(i, x): &State| {
        let desired = ord.get(x).copied().unwrap_or(*i);
        let d = (*i - desired) as f64;
        d * d
    })
}

/// The group step: sort the group's values along the group's indices (each
/// member keeps its index, the values are redistributed in sorted order).
pub fn sort_group_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "sort-group",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let mut order: Vec<usize> = (0..states.len()).collect();
            order.sort_by_key(|&k| states[k].0);
            let mut values: Vec<i64> = states.iter().map(|(_, x)| *x).collect();
            values.sort_unstable();
            let mut out = states.to_vec();
            for (rank, &k) in order.iter().enumerate() {
                out[k] = (states[k].0, values[rank]);
            }
            out
        },
    )
}

/// A gentler admissible step: swap a single adjacent-in-index out-of-order
/// pair within the group (odd-even-transposition style); no change if the
/// group is already sorted.
pub fn swap_one_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "swap-one",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let mut order: Vec<usize> = (0..states.len()).collect();
            order.sort_by_key(|&k| states[k].0);
            let mut out = states.to_vec();
            for w in order.windows(2) {
                let (a, b) = (w[0], w[1]);
                if out[a].1 > out[b].1 {
                    let (va, vb) = (out[a].1, out[b].1);
                    out[a].1 = vb;
                    out[b].1 = va;
                    break;
                }
            }
            out
        },
    )
}

/// Builds the system for the given initial values; agent `k` holds index
/// `k + 1` (the paper's 1-based examples) and `values[k]`.  The fairness
/// graph is the line in index order.
///
/// # Panics
///
/// Panics if the values are not pairwise distinct (the paper's simplifying
/// assumption for `ord`).
pub fn system(values: &[i64]) -> SelfSimilarSystem<State> {
    system_with_step(values, sort_group_step())
}

/// Builds the system with a caller-chosen admissible step.
pub fn system_with_step(
    values: &[i64],
    step: impl GroupStep<State> + 'static,
) -> SelfSimilarSystem<State> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        values.len(),
        "the sorting example assumes pairwise-distinct values"
    );
    let initial: Vec<State> = values
        .iter()
        .enumerate()
        .map(|(k, v)| ((k + 1) as i64, *v))
        .collect();
    let h = displacement_objective(&initial);
    SelfSimilarSystem::new(
        "sorting",
        function(),
        h,
        step,
        initial,
        FairnessSpec::line(values.len()),
    )
}

/// The concrete data of the paper's Figure 1: the 7-agent state
/// `[7,5,6,4,3,2,1]`, the partition into `B = {1,3,4,5,6,7}` and `C = {2}`
/// (1-based agent positions), and the transition to `[6,5,7,3,4,1,2]`.
///
/// Returns `(h(S_B), h(S'_B), h(S_{B∪C}), h(S'_{B∪C}))` for the
/// inversion-count objective evaluated per its textual definition.  The
/// paper's figure prints `(10, 9, 14, 15)` ([`FIGURE1_REPORTED`]); the
/// values computed from the definition are `(15, 12, 20, 17)` — the
/// reproduction discrepancy discussed in the module docs and EXPERIMENTS.md.
pub fn figure1_counterexample() -> (f64, f64, f64, f64) {
    let h = inversion_objective();
    let full_before: Vec<State> = [7, 5, 6, 4, 3, 2, 1]
        .iter()
        .enumerate()
        .map(|(k, v)| ((k + 1) as i64, *v))
        .collect();
    let full_after: Vec<State> = [6, 5, 7, 3, 4, 1, 2]
        .iter()
        .enumerate()
        .map(|(k, v)| ((k + 1) as i64, *v))
        .collect();
    let b_positions = [1usize, 3, 4, 5, 6, 7];
    let group_b_before: Multiset<State> = b_positions.iter().map(|p| full_before[p - 1]).collect();
    let group_b_after: Multiset<State> = b_positions.iter().map(|p| full_after[p - 1]).collect();
    let union_before: Multiset<State> = full_before.iter().copied().collect();
    let union_after: Multiset<State> = full_after.iter().copied().collect();
    (
        h.eval(&group_b_before),
        h.eval(&group_b_after),
        h.eval(&union_before),
        h.eval(&union_after),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction, RelationD};

    fn pairs(values: &[i64]) -> Multiset<State> {
        values
            .iter()
            .enumerate()
            .map(|(k, v)| ((k + 1) as i64, *v))
            .collect()
    }

    #[test]
    fn f_matches_paper_example() {
        let f = function();
        assert_eq!(
            f.apply(&[(1, 3), (2, 5), (3, 3), (4, 7)].into()),
            [(1, 3), (2, 3), (3, 5), (4, 7)].into()
        );
    }

    #[test]
    fn f_is_super_idempotent() {
        let f = function();
        let samples: Vec<Multiset<State>> = vec![
            Multiset::new(),
            pairs(&[3]),
            pairs(&[5, 3]),
            pairs(&[7, 5, 6, 4]),
            [(10, 2), (20, 1)].into(),
        ];
        assert!(check_idempotent(&f, &samples).is_ok());
        assert!(check_super_idempotent(&f, &samples).is_ok());
    }

    #[test]
    fn figure1_computed_values_and_reported_values() {
        // Values computed from the textual definition of the objective.
        let (h_b_before, h_b_after, h_union_before, h_union_after) = figure1_counterexample();
        assert_eq!(h_b_before, 15.0);
        assert_eq!(h_b_after, 12.0);
        assert_eq!(h_union_before, 20.0);
        assert_eq!(h_union_after, 17.0);
        // The figure's printed values differ — the documented discrepancy.
        assert_ne!(
            (h_b_before, h_b_after, h_union_before, h_union_after),
            FIGURE1_REPORTED
        );
        // On the figure's own transition the group improves (as the paper
        // says) but the union improves too, so this instance does not
        // witness a violation under the textual definition.
        assert!(h_b_after < h_b_before);
        assert!(h_union_after < h_union_before);
    }

    #[test]
    fn figure1_transition_is_a_d_step_for_the_group() {
        let d = RelationD::new(function(), inversion_objective());
        let full_before: Vec<State> = [7, 5, 6, 4, 3, 2, 1]
            .iter()
            .enumerate()
            .map(|(k, v)| ((k + 1) as i64, *v))
            .collect();
        let full_after: Vec<State> = [6, 5, 7, 3, 4, 1, 2]
            .iter()
            .enumerate()
            .map(|(k, v)| ((k + 1) as i64, *v))
            .collect();
        let b_positions = [1usize, 3, 4, 5, 6, 7];
        let b_before: Multiset<State> = b_positions.iter().map(|p| full_before[p - 1]).collect();
        let b_after: Multiset<State> = b_positions.iter().map(|p| full_after[p - 1]).collect();
        let c: Multiset<State> = [full_before[1]].into();
        assert!(d.relates(&b_before, &b_after));
        assert!(d.relates(&c, &c));
    }

    #[test]
    fn max_displacement_objective_violates_local_to_global() {
        // The mechanical witness of Figure 1's point: a non-summation-form
        // objective for which a strict group improvement plus an idle group
        // is NOT a strict improvement of the union — violating obligation
        // (10) / property (7).
        let d = RelationD::new(function(), max_displacement_objective());
        // Group B: indices 1, 2 holding values 2, 1 (one inversion).
        let b_before: Multiset<State> = [(1, 2), (2, 1)].into();
        let b_after: Multiset<State> = [(1, 1), (2, 2)].into();
        // Group C: index 9 holding value 3 and index 3 holding value 9 —
        // idle, with a large displacement that pins the union's maximum.
        let c: Multiset<State> = [(3, 9), (9, 3)].into();
        assert!(d.relates(&b_before, &b_after)); // strict group improvement
        assert!(d.relates(&c, &c)); // C idles
        let union_before = b_before.union(&c);
        let union_after = b_after.union(&c);
        // The union changed but its objective did not strictly decrease.
        assert_ne!(union_before, union_after);
        assert!(!d.relates(&union_before, &union_after));
        // The summation-form squared-displacement objective accepts the same
        // union transition, as the theory promises.
        let initial: Vec<State> = vec![(1, 2), (2, 1), (3, 9), (9, 3)];
        let fixed = RelationD::new(function(), displacement_objective(&initial));
        assert!(fixed.relates(&union_before, &union_after));
    }

    #[test]
    fn displacement_objective_accepts_the_same_figure1_group_transition_globally() {
        // With the squared-displacement objective the same *group* move is
        // still an improvement and the union cannot get worse while C idles
        // (summation form).
        let initial: Vec<State> = [7, 5, 6, 4, 3, 2, 1]
            .iter()
            .enumerate()
            .map(|(k, v)| ((k + 1) as i64, *v))
            .collect();
        let h = displacement_objective(&initial);
        let full_after: Vec<State> = [6, 5, 7, 3, 4, 1, 2]
            .iter()
            .enumerate()
            .map(|(k, v)| ((k + 1) as i64, *v))
            .collect();
        let before: Multiset<State> = initial.iter().copied().collect();
        let after: Multiset<State> = full_after.iter().copied().collect();
        assert!(h.eval(&after) < h.eval(&before));
    }

    #[test]
    fn sort_group_step_sorts_values_along_indices() {
        let step = sort_group_step();
        let mut rng = StdRng::seed_from_u64(10);
        let group = vec![(4i64, 1i64), (2, 9), (7, 5)];
        let after = step.step(&group, &mut rng);
        // Indices stay with their positions; values are redistributed sorted
        // by index: index 2 gets 1, index 4 gets 5, index 7 gets 9.
        assert_eq!(after, vec![(4, 5), (2, 1), (7, 9)]);
    }

    #[test]
    fn swap_one_step_fixes_one_inversion_at_a_time() {
        let step = swap_one_step();
        let mut rng = StdRng::seed_from_u64(11);
        let group = vec![(1i64, 9i64), (2, 3), (3, 5)];
        let after = step.step(&group, &mut rng);
        assert_eq!(after, vec![(1, 3), (2, 9), (3, 5)]);
        // Already sorted groups are untouched.
        let sorted = vec![(1i64, 1i64), (2, 2)];
        assert_eq!(step.step(&sorted, &mut rng), sorted);
    }

    #[test]
    fn system_passes_proof_obligations() {
        let sys = system(&[7, 5, 6, 4, 3, 2, 1]);
        let mut rng = StdRng::seed_from_u64(12);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), pairs(&[1, 2, 3, 4, 5, 6, 7]));
    }

    #[test]
    fn swap_one_system_passes_r_implements_d() {
        let sys = system_with_step(&[4, 3, 2, 1], swap_one_step());
        let mut rng = StdRng::seed_from_u64(13);
        let groups: Vec<Vec<State>> = vec![
            vec![(1, 4), (2, 3)],
            vec![(2, 3), (3, 2), (4, 1)],
            vec![(1, 1), (2, 2)],
        ];
        let report = proof::check_r_implements_d(&sys, &groups, 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    #[should_panic(expected = "pairwise-distinct")]
    fn duplicate_values_are_rejected() {
        let _ = system(&[3, 3, 1]);
    }
}
