//! §4.1 — Minimum of a set, as a consensus problem.
//!
//! Every agent holds one non-negative integer; the goal is for every agent
//! to end up holding the minimum of the initial values.
//!
//! * `f` maps a multiset to a multiset of the same cardinality in which all
//!   values equal the minimum: `f({3,5,3,7}) = {3,3,3,3}`.  It is defined by
//!   a commutative associative operator, hence super-idempotent.
//! * `h(S) = Σ_a x_a` — non-negative and integer-valued, so well-founded.
//! * `R`: any group step that keeps the group minimum while reducing the
//!   group sum.  [`adopt_min_step`] makes every member adopt the group
//!   minimum (the fastest admissible move); [`partial_descent_step`] lets
//!   every member move to a random value between the group minimum and its
//!   current value (the paper's "any value between their current value and
//!   the minimum of the group").
//! * `Q`: `Q_E` for any connected graph `E`.

use rand::Rng;

use selfsim_core::{
    ConsensusFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: a single non-negative integer.
pub type State = i64;

/// The distributed function `f`: every agent adopts the minimum.
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    ConsensusFunction::new("min", |s: &Multiset<State>| {
        s.min_value().copied().unwrap_or(0)
    })
}

/// The objective `h(S) = Σ_a x_a` in summation form (8).
pub fn objective() -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("sum-of-values", |v: &State| *v as f64)
}

/// The "adopt the group minimum" group step: the fastest refinement of `D`.
pub fn adopt_min_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "adopt-min",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let m = states.iter().copied().min().unwrap_or(0);
            vec![m; states.len()]
        },
    )
}

/// A slower admissible step: every member moves to a uniformly random value
/// between the group minimum and its current value (inclusive).  Still
/// conserves the minimum and never increases the sum; the step only counts
/// as a change when at least one member actually moved.
pub fn partial_descent_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "partial-descent",
        |states: &[State], rng: &mut dyn rand::RngCore| {
            let m = states.iter().copied().min().unwrap_or(0);
            let mut out: Vec<State> = states
                .iter()
                .map(|&x| if x > m { rng.gen_range(m..=x) } else { x })
                .collect();
            // Guarantee strict descent whenever descent is possible: if the
            // random draws all stayed put but some member is above the
            // minimum, pull one of them down by one.
            if out == states {
                if let Some(i) = out.iter().position(|&x| x > m) {
                    out[i] -= 1;
                }
            }
            out
        },
    )
}

/// The fairness assumption: `Q_E` for the given (connected) graph.
pub fn fairness(topology: &Topology) -> FairnessSpec {
    FairnessSpec::for_graph(topology)
}

/// Builds the complete system for the given initial values over `topology`
/// (which doubles as the fairness graph), using [`adopt_min_step`].
///
/// # Panics
///
/// Panics if any initial value is negative (the paper assumes
/// `x_a(0) ≥ 0` so that `h` is well-founded) or if `topology` is not
/// connected.
pub fn system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    system_with_step(initial, topology, adopt_min_step())
}

/// Builds the system with a caller-chosen group step (e.g.
/// [`partial_descent_step`]).
pub fn system_with_step(
    initial: &[State],
    topology: Topology,
    step: impl GroupStep<State> + 'static,
) -> SelfSimilarSystem<State> {
    assert!(
        initial.iter().all(|v| *v >= 0),
        "the minimum example assumes non-negative initial values"
    );
    assert!(
        topology.is_connected(),
        "the minimum example requires a connected fairness graph"
    );
    assert_eq!(initial.len(), topology.agent_count());
    SelfSimilarSystem::new(
        "minimum",
        function(),
        objective(),
        step,
        initial.to_vec(),
        fairness(&topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{
        check_idempotent, check_local_conservation_implies_global, check_super_idempotent,
        check_super_idempotent_single_element,
    };
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [0].into(),
            [3, 5].into(),
            [3, 5, 3, 7].into(),
            [9, 9, 9].into(),
            [1, 100, 50].into(),
        ]
    }

    #[test]
    fn paper_example_value() {
        assert_eq!(function().apply(&[3, 5, 3, 7].into()), [3, 3, 3, 3].into());
    }

    #[test]
    fn f_is_super_idempotent() {
        let f = function();
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent_single_element(&f, &samples(), &[0, 2, 6, 11]).is_ok());
        assert!(check_local_conservation_implies_global(&f, &samples()).is_ok());
    }

    #[test]
    fn objective_is_nonnegative_on_nonnegative_states() {
        let h = objective();
        for s in samples() {
            assert!(h.eval(&s) >= 0.0);
        }
        assert_eq!(h.eval(&[3, 5, 3, 7].into()), 18.0);
    }

    #[test]
    fn adopt_min_step_refines_d() {
        let sys = system(&[3, 5, 3, 7], Topology::line(4));
        let mut rng = StdRng::seed_from_u64(1);
        let report = proof::audit_system(&sys, &[], 3, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn partial_descent_step_refines_d() {
        let sys = system_with_step(&[3, 5, 3, 7], Topology::line(4), partial_descent_step());
        let mut rng = StdRng::seed_from_u64(2);
        let report = proof::audit_system(&sys, &[vec![10, 0, 4], vec![7, 7]], 10, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn partial_descent_makes_progress_when_possible() {
        let step = partial_descent_step();
        let mut rng = StdRng::seed_from_u64(3);
        // From a non-optimal group state the step must change something
        // (needed for the escape obligation).
        let before = vec![5i64, 5, 5, 2];
        let after = step.step(&before, &mut rng);
        assert_ne!(before, after);
        assert_eq!(after.iter().copied().min(), Some(2));
        assert!(after.iter().sum::<i64>() < before.iter().sum::<i64>());
    }

    #[test]
    fn target_is_all_minimum() {
        let sys = system(&[9, 4, 7], Topology::complete(3));
        assert_eq!(sys.target(), [4, 4, 4].into());
        assert!(sys.is_converged(&[4, 4, 4]));
        assert!(!sys.is_converged(&[4, 4, 7]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initial_values_are_rejected() {
        let _ = system(&[3, -1], Topology::line(2));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_fairness_graph_is_rejected() {
        let _ = system(&[3, 1, 2], Topology::empty(3));
    }
}
