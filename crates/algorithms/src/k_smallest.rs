//! Extension — the `k` smallest distinct values (generalising §4.3).
//!
//! The paper notes that the pair trick used for the second-smallest value
//! extends to the k-th smallest at the cost of more per-agent memory.  This
//! module implements exactly that generalisation: each agent maintains the
//! (at most `k`) smallest distinct values it has learned so far, initially
//! just its own value; `f` replaces every agent's list by the `k` smallest
//! distinct values appearing anywhere in the group.
//!
//! The objective counts, for every agent, the sum of its known values plus a
//! penalty of `bound` for every still-unknown slot — the direct
//! generalisation of the corrected objective used in
//! [`crate::second_smallest`] — and is in summation form (8).

use selfsim_core::{
    FnDistributedFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: the sorted list of (at most `k`) smallest distinct
/// values the agent has learned.
pub type State = Vec<i64>;

/// The `k` smallest distinct values appearing in any state of the multiset.
fn k_smallest_of(s: &Multiset<State>, k: usize) -> State {
    let mut values: Vec<i64> = s.iter().flat_map(|list| list.iter().copied()).collect();
    values.sort_unstable();
    values.dedup();
    values.truncate(k);
    values
}

/// The distributed function for a given `k`.
pub fn function(k: usize) -> impl selfsim_core::DistributedFunction<State> {
    FnDistributedFunction::new(format!("{k}-smallest"), move |s: &Multiset<State>| {
        if s.is_empty() {
            return Multiset::new();
        }
        s.fill_with(k_smallest_of(s, k))
    })
}

/// The objective: per agent, the sum of known values plus `bound` per
/// missing slot (out of `k`).
pub fn objective(k: usize, bound: i64) -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("knowledge-deficit", move |list: &State| {
        let known: i64 = list.iter().copied().sum();
        let missing = k.saturating_sub(list.len()) as i64;
        (known + missing * bound) as f64
    })
}

/// The group step: every member adopts the group's `k` smallest distinct
/// values.
pub fn adopt_step(k: usize) -> impl GroupStep<State> {
    FnGroupStep::new(
        format!("adopt-{k}-smallest"),
        move |states: &[State], _rng: &mut dyn rand::RngCore| {
            let ms: Multiset<State> = states.iter().cloned().collect();
            let best = k_smallest_of(&ms, k);
            vec![best; states.len()]
        },
    )
}

/// Builds the system: each agent starts knowing only its own value.
///
/// # Panics
///
/// Panics if `k` is zero, any initial value is negative, or the fairness
/// graph is not connected.
pub fn system(initial_values: &[i64], k: usize, topology: Topology) -> SelfSimilarSystem<State> {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        initial_values.iter().all(|v| *v >= 0),
        "the k-smallest example assumes non-negative initial values"
    );
    assert!(
        topology.is_connected(),
        "the k-smallest example requires a connected fairness graph"
    );
    assert_eq!(initial_values.len(), topology.agent_count());
    let bound = initial_values.iter().copied().max().unwrap_or(0) + 1;
    let initial: Vec<State> = initial_values.iter().map(|v| vec![*v]).collect();
    SelfSimilarSystem::new(
        format!("{k}-smallest"),
        function(k),
        objective(k, bound),
        adopt_step(k),
        initial,
        FairnessSpec::for_graph(&topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [vec![4]].into(),
            [vec![4], vec![1, 7]].into(),
            [vec![2, 5], vec![3], vec![2]].into(),
            [vec![1, 2, 3], vec![1, 2, 3]].into(),
        ]
    }

    #[test]
    fn f_collects_the_k_smallest_distinct_values() {
        let f = function(3);
        let out = f.apply(&[vec![4], vec![1, 7], vec![9]].into());
        assert_eq!(out, [vec![1, 4, 7], vec![1, 4, 7], vec![1, 4, 7]].into());
        // Fewer than k distinct values: everyone learns all of them.
        let out = f.apply(&[vec![5], vec![5]].into());
        assert_eq!(out, [vec![5], vec![5]].into());
    }

    #[test]
    fn f_is_super_idempotent_for_various_k() {
        for k in 1..=4 {
            let f = function(k);
            assert!(check_idempotent(&f, &samples()).is_ok(), "k = {k}");
            assert!(check_super_idempotent(&f, &samples()).is_ok(), "k = {k}");
        }
    }

    #[test]
    fn k_equals_one_degenerates_to_the_minimum() {
        let f = function(1);
        let out = f.apply(&[vec![3], vec![5], vec![3], vec![7]].into());
        assert_eq!(out, [vec![3], vec![3], vec![3], vec![3]].into());
    }

    #[test]
    fn objective_penalises_missing_knowledge() {
        let h = objective(3, 100);
        // One value known, two slots missing.
        assert_eq!(h.eval(&[vec![5]].into()), 205.0);
        // Full knowledge, no penalty.
        assert_eq!(h.eval(&[vec![1, 2, 3]].into()), 6.0);
    }

    #[test]
    fn system_passes_proof_obligations() {
        let sys = system(&[9, 4, 7, 1, 5], 3, Topology::ring(5));
        let mut rng = StdRng::seed_from_u64(33);
        let report = proof::audit_system(&sys, &[], 2, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(
            sys.target(),
            [
                vec![1, 4, 5],
                vec![1, 4, 5],
                vec![1, 4, 5],
                vec![1, 4, 5],
                vec![1, 4, 5]
            ]
            .into()
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let _ = system(&[1, 2], 0, Topology::line(2));
    }
}
