//! Extension — Maximum of a set, the mirror image of §4.1.
//!
//! Included to show that the methodology is insensitive to the direction of
//! the consensus: `f` replaces every value with the *maximum*, and the
//! objective counts how far below a fixed upper bound the values sit, so
//! that raising values decreases `h`.
//!
//! The upper bound is taken from the initial values (their maximum); by the
//! conservation law the maximum never changes, so the per-agent term
//! `bound − x_a` is always non-negative and `h` is well-founded.

use selfsim_core::{
    ConsensusFunction, FnGroupStep, GroupStep, SelfSimilarSystem, SummationObjective,
};
use selfsim_env::{FairnessSpec, Topology};
use selfsim_multiset::Multiset;

/// The agent state: a single integer.
pub type State = i64;

/// The distributed function `f`: every agent adopts the maximum.
pub fn function() -> impl selfsim_core::DistributedFunction<State> {
    ConsensusFunction::new("max", |s: &Multiset<State>| {
        s.max_value().copied().unwrap_or(0)
    })
}

/// The objective `h(S) = Σ_a (bound − x_a)` for a fixed `bound ≥ max(S(0))`.
pub fn objective(bound: State) -> SummationObjective<State, impl Fn(&State) -> f64> {
    SummationObjective::new("distance-below-bound", move |v: &State| (bound - v) as f64)
}

/// The "adopt the group maximum" group step.
pub fn adopt_max_step() -> impl GroupStep<State> {
    FnGroupStep::new(
        "adopt-max",
        |states: &[State], _rng: &mut dyn rand::RngCore| {
            let m = states.iter().copied().max().unwrap_or(0);
            vec![m; states.len()]
        },
    )
}

/// Builds the complete system over a connected `topology`.
///
/// # Panics
///
/// Panics if `initial` is empty or `topology` is not connected.
pub fn system(initial: &[State], topology: Topology) -> SelfSimilarSystem<State> {
    assert!(!initial.is_empty(), "need at least one agent");
    assert!(
        topology.is_connected(),
        "the maximum example requires a connected fairness graph"
    );
    assert_eq!(initial.len(), topology.agent_count());
    let bound = *initial.iter().max().expect("non-empty");
    SelfSimilarSystem::new(
        "maximum",
        function(),
        objective(bound),
        adopt_max_step(),
        initial.to_vec(),
        FairnessSpec::for_graph(&topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_core::super_idempotence::{check_idempotent, check_super_idempotent};
    use selfsim_core::{proof, DistributedFunction, ObjectiveFunction};

    fn samples() -> Vec<Multiset<State>> {
        vec![
            Multiset::new(),
            [4].into(),
            [3, 5].into(),
            [3, 5, 3, 7].into(),
            [2, 2].into(),
        ]
    }

    #[test]
    fn f_replaces_all_with_maximum() {
        assert_eq!(function().apply(&[3, 5, 3, 7].into()), [7, 7, 7, 7].into());
    }

    #[test]
    fn f_is_super_idempotent() {
        let f = function();
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
    }

    #[test]
    fn objective_decreases_as_values_rise() {
        let h = objective(7);
        assert_eq!(h.eval(&[3, 5, 3, 7].into()), 4.0 + 2.0 + 4.0 + 0.0);
        assert_eq!(h.eval(&[7, 7, 7, 7].into()), 0.0);
        assert!(h.strictly_decreases(&[3, 5].into(), &[5, 5].into()));
    }

    #[test]
    fn system_passes_proof_obligations() {
        let sys = system(&[3, 5, 3, 7], Topology::ring(4));
        let mut rng = StdRng::seed_from_u64(4);
        let report = proof::audit_system(&sys, &[], 3, &mut rng);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(sys.target(), [7, 7, 7, 7].into());
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_topology_rejected() {
        let _ = system(&[1, 2], Topology::empty(2));
    }
}
