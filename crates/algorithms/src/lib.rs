//! The worked examples of §4 of the paper, plus extensions, packaged as
//! ready-to-run [`selfsim_core::SelfSimilarSystem`] instances.
//!
//! Every module follows the same recipe and exposes the same surface:
//!
//! * the agent **state type** of the example;
//! * the distributed function **`f`** to compute (and, for the two
//!   counterexample sections, the *naive* non-super-idempotent `f` the paper
//!   starts from);
//! * the variant/objective function **`h`**;
//! * at least one concrete group relation **`R`** refining `D`;
//! * a `system(…)` constructor assembling the above with an initial state
//!   and the fairness assumption `Q` the paper states for the example;
//! * unit and property tests of the paper's claims: (super-)idempotence,
//!   conservation, descent of `h`, and the proof obligations of §3.7.
//!
//! | module | paper § | f | fairness |
//! |---|---|---|---|
//! | [`minimum`] | 4.1 | all agents adopt the minimum | any connected graph |
//! | [`maximum`] | ext. | all agents adopt the maximum | any connected graph |
//! | [`sum`] | 4.2 | one agent holds the sum, others 0 | complete graph |
//! | [`second_smallest`] | 4.3 | pairs (smallest, second smallest) | any connected graph |
//! | [`sorting`] | 4.4 | values sorted by index | line graph |
//! | [`circumscribing`] | 4.5 | smallest enclosing circle (naive, **not** super-idempotent) | — |
//! | [`convex_hull`] | 4.5 | convex hull of all sites | any connected graph |
//! | [`set_union`] | ext. | all agents learn the union of knowledge sets | any connected graph |
//! | [`boolean`] | ext. | distributed OR / AND | any connected graph |
//! | [`k_smallest`] | ext. | all agents learn the k smallest distinct values | any connected graph |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod circumscribing;
pub mod convex_hull;
pub mod k_smallest;
pub mod maximum;
pub mod minimum;
pub mod second_smallest;
pub mod set_union;
pub mod sorting;
pub mod sum;
