//! The constrained-optimisation relation `D` of §3.6.

use selfsim_multiset::Multiset;

use crate::{DistributedFunction, ObjectiveFunction};

/// The relation `D` that every concrete group algorithm `R` must refine:
///
/// ```text
/// S_B ▷ S'_B  ≡  f(S_B) = f(S'_B)  ∧  h(S_B) > h(S'_B)
/// S_B D S'_B  ≡  (S_B ▷ S'_B) ∨ (S_B = S'_B)
/// ```
///
/// `D` captures "groups of agents take optimisation steps in which `f` is
/// conserved and `h` decreases" and is the pivot of the whole methodology:
/// the proof obligations of §3.7 are stated in terms of `D`, and the
/// correctness theorem says any `R` refining `D` (under an escapable-states
/// fairness assumption) computes `f(S(0))`.
pub struct RelationD<F, H> {
    f: F,
    h: H,
}

impl<F, H> RelationD<F, H> {
    /// Packages a distributed function and an objective into the relation
    /// they induce.
    pub fn new(f: F, h: H) -> Self {
        RelationD { f, h }
    }

    /// The conserved function `f`.
    pub fn function(&self) -> &F {
        &self.f
    }

    /// The objective `h`.
    pub fn objective(&self) -> &H {
        &self.h
    }
}

impl<F, H> RelationD<F, H> {
    /// The strict part `▷`: `f` conserved and `h` strictly decreased.
    pub fn strictly_improves<S>(&self, before: &Multiset<S>, after: &Multiset<S>) -> bool
    where
        S: Ord + Clone,
        F: DistributedFunction<S>,
        H: ObjectiveFunction<S>,
    {
        self.f.conserves(before, after) && self.h.strictly_decreases(before, after)
    }

    /// The full relation `D`: either a strict improvement or no change.
    pub fn relates<S>(&self, before: &Multiset<S>, after: &Multiset<S>) -> bool
    where
        S: Ord + Clone,
        F: DistributedFunction<S>,
        H: ObjectiveFunction<S>,
    {
        before == after || self.strictly_improves(before, after)
    }

    /// Explains why `D` does *not* relate `before` to `after`; returns
    /// `None` when it does.  Used by the proof-obligation checkers to
    /// produce actionable error messages.
    pub fn explain_violation<S>(&self, before: &Multiset<S>, after: &Multiset<S>) -> Option<String>
    where
        S: Ord + Clone + std::fmt::Debug,
        F: DistributedFunction<S>,
        H: ObjectiveFunction<S>,
    {
        if self.relates(before, after) {
            return None;
        }
        if !self.f.conserves(before, after) {
            Some(format!(
                "step does not conserve `{}`: f(before) = {:?}, f(after) = {:?}",
                self.f.name(),
                self.f.apply(before),
                self.f.apply(after),
            ))
        } else {
            Some(format!(
                "step does not strictly decrease `{}`: h(before) = {}, h(after) = {} (states differ)",
                self.h.name(),
                self.h.eval(before),
                self.h.eval(after),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsensusFunction, SummationObjective};

    // spelling the full generic relation type out is the point of this helper
    #[allow(clippy::type_complexity)]
    fn min_relation() -> RelationD<
        ConsensusFunction<i64, impl Fn(&Multiset<i64>) -> i64>,
        SummationObjective<i64, impl Fn(&i64) -> f64>,
    > {
        RelationD::new(
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
        )
    }

    #[test]
    fn identity_steps_are_related() {
        let d = min_relation();
        let s: Multiset<i64> = [3, 5].into();
        assert!(d.relates(&s, &s));
        assert!(!d.strictly_improves(&s, &s));
    }

    #[test]
    fn conserving_improving_steps_are_related() {
        let d = min_relation();
        let before: Multiset<i64> = [3, 5, 7].into();
        let after: Multiset<i64> = [3, 3, 5].into();
        assert!(d.strictly_improves(&before, &after));
        assert!(d.relates(&before, &after));
        assert!(d.explain_violation(&before, &after).is_none());
    }

    #[test]
    fn non_conserving_steps_are_rejected() {
        let d = min_relation();
        let before: Multiset<i64> = [3, 5].into();
        let after: Multiset<i64> = [4, 4].into(); // min changed from 3 to 4
        assert!(!d.relates(&before, &after));
        let why = d.explain_violation(&before, &after).unwrap();
        assert!(why.contains("conserve"));
    }

    #[test]
    fn non_improving_changes_are_rejected() {
        let d = min_relation();
        let before: Multiset<i64> = [3, 5].into();
        let after: Multiset<i64> = [3, 6].into(); // conserves min, increases sum
        assert!(!d.relates(&before, &after));
        let why = d.explain_violation(&before, &after).unwrap();
        assert!(why.contains("strictly decrease"));
    }

    #[test]
    fn accessors_expose_components() {
        let d = min_relation();
        assert_eq!(d.function().name(), "min");
        assert_eq!(d.objective().name(), "sum");
    }
}
