//! Self-similar algorithms for dynamic distributed systems.
//!
//! This crate is the executable form of the methodology of K. Mani Chandy
//! and Michel Charpentier, *Self-Similar Algorithms for Dynamic Distributed
//! Systems* (ICDCS 2007).  The paper's design recipe for computing an
//! idempotent function `f` of the initial agent states in a system whose
//! communication is governed by an adversarial environment is:
//!
//! 1. pick a **super-idempotent** distributed function `f`
//!    ([`DistributedFunction`], [`super_idempotence`]) — if the given `f`
//!    isn't super-idempotent, generalise the problem until it is;
//! 2. pick a **variant (objective) function** `h` into a well-founded order,
//!    preferably in **summation form** ([`ObjectiveFunction`],
//!    [`SummationObjective`]) so that local improvements compose into global
//!    improvements;
//! 3. let every group of currently-communicating agents take **constrained
//!    optimisation steps**: conserve `f` of the group, strictly decrease `h`
//!    of the group ([`RelationD`], [`GroupStep`], [`CheckedGroupStep`]);
//! 4. discharge the three **proof obligations** — `R` refines `D`,
//!    non-optimal states are escapable under the fairness assumption, and
//!    the local-to-global composition property — for which this crate
//!    provides executable checkers ([`proof`]).
//!
//! The [`SelfSimilarSystem`] type packages `f`, `h`, `R`, the initial states
//! and the fairness assumption into a single description that the
//! simulators in `selfsim-runtime` can execute against any environment, and
//! that the checkers can audit.
//!
//! # Quick example: minimum consensus
//!
//! ```
//! use selfsim_core::{ConsensusFunction, DistributedFunction, SummationObjective,
//!                    ObjectiveFunction};
//! use selfsim_multiset::Multiset;
//!
//! // f: every agent ends up holding the minimum of the initial values.
//! let f = ConsensusFunction::new("min", |s: &Multiset<i64>| {
//!     s.min_value().copied().unwrap_or(0)
//! });
//! let s0: Multiset<i64> = [3, 5, 3, 7].into();
//! assert_eq!(f.apply(&s0), [3, 3, 3, 3].into());
//!
//! // h: the sum of the values (well-founded because values are bounded below).
//! let h = SummationObjective::new("sum", |v: &i64| *v as f64);
//! assert_eq!(h.eval(&s0), 18.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod function;
mod objective;
mod partition;
pub mod proof;
mod relation;
mod step;
mod system;

pub use function::{
    ConsensusFunction, DistributedFunction, FnDistributedFunction, OperatorFunction,
};
pub use objective::{
    check_local_to_global_improvement, FnObjective, ObjectiveFunction, SummationObjective, EPSILON,
};
pub use partition::{all_partitions, bell_number, random_partition, split_in_two};
pub use relation::RelationD;
pub use step::{CheckedGroupStep, FnGroupStep, GroupStep, IdentityStep};
pub use system::{SelfSimilarSystem, StepOutcome, StepScratch, SystemState};

/// Super-idempotence checks (definition, single-element criterion, and the
/// local-to-global conservation equivalence of §3.4).
pub mod super_idempotence {
    pub use crate::function::{
        check_idempotent, check_local_conservation_implies_global, check_super_idempotent,
        check_super_idempotent_single_element,
    };
}
