//! Distributed functions `f` over multisets of agent states, and the
//! idempotence / super-idempotence checks of §3.4.

use selfsim_multiset::Multiset;

/// A distributed function `f` from multisets of agent states to multisets of
/// agent states.
///
/// The problem specification of §3.1 asks the agents to reach and maintain
/// `S = f(S(0))`.  `f` must be *idempotent* (`f(f(S)) = f(S)`), and for the
/// self-similar methodology to apply it must be **super-idempotent**:
/// `f(X ⊎ Y) = f(f(X) ⊎ Y)` for all multisets `X`, `Y` (§3.4).  The
/// cardinality of `f(S)` must equal the cardinality of `S` — `f` reassigns
/// values to the same number of agents, it never adds or removes agents.
pub trait DistributedFunction<S: Ord + Clone> {
    /// Applies the function to a multiset of agent states.
    fn apply(&self, states: &Multiset<S>) -> Multiset<S>;

    /// A short name used in reports and error messages.
    fn name(&self) -> &str {
        "f"
    }

    /// Returns `true` if two multisets have the same image under `f` —
    /// i.e. they satisfy the conservation law relative to each other.
    fn conserves(&self, before: &Multiset<S>, after: &Multiset<S>) -> bool {
        self.apply(before) == self.apply(after)
    }
}

impl<S: Ord + Clone, F: DistributedFunction<S> + ?Sized> DistributedFunction<S> for &F {
    fn apply(&self, states: &Multiset<S>) -> Multiset<S> {
        (**self).apply(states)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A distributed function defined by an arbitrary closure.
///
/// This is the escape hatch for functions that are *not* expressible through
/// a commutative associative operator — e.g. the naive second-smallest and
/// circumscribing-circle functions the paper uses as counterexamples.
pub struct FnDistributedFunction<S, F> {
    name: String,
    func: F,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, F> FnDistributedFunction<S, F>
where
    S: Ord + Clone,
    F: Fn(&Multiset<S>) -> Multiset<S>,
{
    /// Wraps `func` as a [`DistributedFunction`] named `name`.
    pub fn new(name: impl Into<String>, func: F) -> Self {
        FnDistributedFunction {
            name: name.into(),
            func,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F> DistributedFunction<S> for FnDistributedFunction<S, F>
where
    S: Ord + Clone,
    F: Fn(&Multiset<S>) -> Multiset<S>,
{
    fn apply(&self, states: &Multiset<S>) -> Multiset<S> {
        (self.func)(states)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A consensus-shaped distributed function: every agent ends up holding the
/// same summary value computed from the whole multiset.
///
/// `f(X) = { summary(X), summary(X), …  }` with the same cardinality as `X`.
/// When the summary only depends on the *set* of values in a way compatible
/// with pairwise combination (minimum, maximum, boolean or/and, set union of
/// knowledge, …) the resulting function is super-idempotent; the checkers in
/// this module verify it for concrete instances.
pub struct ConsensusFunction<S, G> {
    name: String,
    summary: G,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, G> ConsensusFunction<S, G>
where
    S: Ord + Clone,
    G: Fn(&Multiset<S>) -> S,
{
    /// Creates a consensus function from a summary of the multiset.
    pub fn new(name: impl Into<String>, summary: G) -> Self {
        ConsensusFunction {
            name: name.into(),
            summary,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, G> DistributedFunction<S> for ConsensusFunction<S, G>
where
    S: Ord + Clone,
    G: Fn(&Multiset<S>) -> S,
{
    fn apply(&self, states: &Multiset<S>) -> Multiset<S> {
        if states.is_empty() {
            return Multiset::new();
        }
        states.fill_with((self.summary)(states))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A distributed function built from a binary, commutative, associative
/// operator on multisets: `f(X) = {x_0} ◦ {x_1} ◦ … ◦ {x_J}`, `f(∅) = ∅`.
///
/// The lemma of §3.4 states this form is *sufficient* for
/// super-idempotence.  [`OperatorFunction::check_operator_laws`] verifies
/// commutativity and associativity of the supplied operator on sample data,
/// since the guarantee only holds when the operator genuinely has those
/// properties.
pub struct OperatorFunction<S, Op> {
    name: String,
    op: Op,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, Op> OperatorFunction<S, Op>
where
    S: Ord + Clone,
    Op: Fn(&Multiset<S>, &Multiset<S>) -> Multiset<S>,
{
    /// Creates an operator-defined distributed function.
    pub fn new(name: impl Into<String>, op: Op) -> Self {
        OperatorFunction {
            name: name.into(),
            op,
            _marker: std::marker::PhantomData,
        }
    }

    /// Checks commutativity and associativity of the operator on the given
    /// sample multisets (all pairs / triples).  Returns a description of the
    /// first violation, if any.
    pub fn check_operator_laws(&self, samples: &[Multiset<S>]) -> Result<(), String>
    where
        S: std::fmt::Debug,
    {
        for x in samples {
            for y in samples {
                let xy = (self.op)(x, y);
                let yx = (self.op)(y, x);
                if xy != yx {
                    return Err(format!(
                        "operator for `{}` is not commutative on {x:?}, {y:?}",
                        self.name
                    ));
                }
                for z in samples {
                    let left = (self.op)(&(self.op)(x, y), z);
                    let right = (self.op)(x, &(self.op)(y, z));
                    if left != right {
                        return Err(format!(
                            "operator for `{}` is not associative on {x:?}, {y:?}, {z:?}",
                            self.name
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl<S, Op> DistributedFunction<S> for OperatorFunction<S, Op>
where
    S: Ord + Clone,
    Op: Fn(&Multiset<S>, &Multiset<S>) -> Multiset<S>,
{
    fn apply(&self, states: &Multiset<S>) -> Multiset<S> {
        let mut acc: Option<Multiset<S>> = None;
        for v in states.iter() {
            let singleton = Multiset::singleton(v.clone());
            acc = Some(match acc {
                None => singleton,
                Some(prev) => (self.op)(&prev, &singleton),
            });
        }
        acc.unwrap_or_default()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Checks idempotence `f(f(X)) = f(X)` on every sample multiset; returns the
/// first counterexample if one exists.
// the Err tuple IS the counterexample the proof-obligation callers pattern-
// match on; boxing or naming it would bury the diagnostic payload
#[allow(clippy::type_complexity, clippy::result_large_err)]
pub fn check_idempotent<S: Ord + Clone>(
    f: &impl DistributedFunction<S>,
    samples: &[Multiset<S>],
) -> Result<(), (Multiset<S>, Multiset<S>, Multiset<S>)> {
    for x in samples {
        let fx = f.apply(x);
        let ffx = f.apply(&fx);
        if fx != ffx {
            return Err((x.clone(), fx, ffx));
        }
    }
    Ok(())
}

/// Checks the super-idempotence definition `f(X ⊎ Y) = f(f(X) ⊎ Y)` on all
/// pairs of sample multisets; returns the first counterexample `(X, Y)` if
/// one exists.
pub fn check_super_idempotent<S: Ord + Clone>(
    f: &impl DistributedFunction<S>,
    samples: &[Multiset<S>],
) -> Result<(), (Multiset<S>, Multiset<S>)> {
    for x in samples {
        let fx = f.apply(x);
        for y in samples {
            let direct = f.apply(&x.union(y));
            let via_fx = f.apply(&fx.union(y));
            if direct != via_fx {
                return Err((x.clone(), y.clone()));
            }
        }
    }
    Ok(())
}

/// Checks the single-element criterion (6): `f(X ⊎ {v}) = f(f(X) ⊎ {v})`
/// for every sample multiset `X` and sample element `v`.  Together with
/// idempotence this is equivalent to full super-idempotence (the paper's
/// second theorem of §3.4) but is much cheaper to test.
pub fn check_super_idempotent_single_element<S: Ord + Clone>(
    f: &impl DistributedFunction<S>,
    samples: &[Multiset<S>],
    elements: &[S],
) -> Result<(), (Multiset<S>, S)> {
    for x in samples {
        let fx = f.apply(x);
        for v in elements {
            let single = Multiset::singleton(v.clone());
            let direct = f.apply(&x.union(&single));
            let via_fx = f.apply(&fx.union(&single));
            if direct != via_fx {
                return Err((x.clone(), v.clone()));
            }
        }
    }
    Ok(())
}

/// Checks the "local conservation implies global conservation" property of
/// §3.3 on the sample data: for all `X, X', Y, Y'` drawn from `samples` with
/// `f(X) = f(X')` and `f(Y) = f(Y')`, verify `f(X ⊎ Y) = f(X' ⊎ Y')`.
///
/// The theorem of §3.4 says this holds exactly for super-idempotent `f`, and
/// the test-suite uses this function to confirm both directions on the
/// paper's examples.
// the Err tuple IS the counterexample the proof-obligation callers pattern-
// match on; boxing or naming it would bury the diagnostic payload
#[allow(clippy::type_complexity, clippy::result_large_err)]
pub fn check_local_conservation_implies_global<S: Ord + Clone>(
    f: &impl DistributedFunction<S>,
    samples: &[Multiset<S>],
) -> Result<(), (Multiset<S>, Multiset<S>, Multiset<S>, Multiset<S>)> {
    for x in samples {
        for x_prime in samples {
            if f.apply(x) != f.apply(x_prime) {
                continue;
            }
            for y in samples {
                for y_prime in samples {
                    if f.apply(y) != f.apply(y_prime) {
                        continue;
                    }
                    let left = f.apply(&x.union(y));
                    let right = f.apply(&x_prime.union(y_prime));
                    if left != right {
                        return Err((x.clone(), x_prime.clone(), y.clone(), y_prime.clone()));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min_consensus() -> ConsensusFunction<i64, impl Fn(&Multiset<i64>) -> i64> {
        ConsensusFunction::new("min", |s: &Multiset<i64>| {
            s.min_value().copied().unwrap_or(0)
        })
    }

    fn samples() -> Vec<Multiset<i64>> {
        vec![
            Multiset::new(),
            [1].into(),
            [3, 5].into(),
            [3, 5, 3, 7].into(),
            [2, 2, 2].into(),
            [10, 1, 4].into(),
        ]
    }

    #[test]
    fn consensus_function_fills_with_summary() {
        let f = min_consensus();
        assert_eq!(f.apply(&[3, 5, 3, 7].into()), [3, 3, 3, 3].into());
        assert_eq!(f.apply(&Multiset::new()), Multiset::new());
        assert_eq!(f.name(), "min");
    }

    #[test]
    fn min_consensus_is_idempotent_and_super_idempotent() {
        let f = min_consensus();
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
        let elements = [0i64, 1, 5, 9];
        assert!(check_super_idempotent_single_element(&f, &samples(), &elements).is_ok());
        assert!(check_local_conservation_implies_global(&f, &samples()).is_ok());
    }

    #[test]
    fn second_smallest_consensus_is_not_super_idempotent() {
        // The paper's §4.3 counterexample: X = {1,3}, Y = {2}.
        let f = ConsensusFunction::new("second-smallest", |s: &Multiset<i64>| {
            let min = s.min_value().copied().unwrap_or(0);
            s.iter().copied().filter(|v| *v != min).min().unwrap_or(min)
        });
        let samples = vec![
            Multiset::from([1i64, 3]),
            Multiset::from([3i64, 3]), // f({1,3}) = f({3,3}) = {3,3}
            Multiset::from([2i64]),
            Multiset::from([1i64, 2, 3]),
        ];
        assert!(check_idempotent(&f, &samples).is_ok());
        let err = check_super_idempotent(&f, &samples).unwrap_err();
        // The returned counterexample really is a violation.
        let (x, y) = err;
        assert_ne!(f.apply(&x.union(&y)), f.apply(&f.apply(&x).union(&y)));
        // And local-conservation-implies-global fails too, matching the
        // "exactly for super-idempotent functions" theorem.
        assert!(check_local_conservation_implies_global(&f, &samples).is_err());
    }

    #[test]
    fn operator_function_min_matches_consensus() {
        let op_min = OperatorFunction::new("min-op", |x: &Multiset<i64>, y: &Multiset<i64>| {
            let joined = x.union(y);
            let m = joined.min_value().copied().unwrap_or(0);
            joined.fill_with(m)
        });
        let f = min_consensus();
        for s in samples() {
            assert_eq!(op_min.apply(&s), f.apply(&s), "on {s:?}");
        }
        assert!(op_min.check_operator_laws(&samples()).is_ok());
    }

    #[test]
    fn operator_laws_detect_non_commutative_operator() {
        // "Keep the left operand" is associative but not commutative.
        let bad = OperatorFunction::new("left", |x: &Multiset<i64>, _y: &Multiset<i64>| x.clone());
        let err = bad.check_operator_laws(&samples()).unwrap_err();
        assert!(err.contains("not commutative"));
    }

    #[test]
    fn fn_distributed_function_delegates() {
        let f = FnDistributedFunction::new("identity", |s: &Multiset<i64>| s.clone());
        let x: Multiset<i64> = [4, 2].into();
        assert_eq!(f.apply(&x), x);
        assert_eq!(f.name(), "identity");
        assert!(f.conserves(&x, &x));
        assert!(check_idempotent(&f, &samples()).is_ok());
        assert!(check_super_idempotent(&f, &samples()).is_ok());
    }

    #[test]
    fn conserves_compares_images() {
        let f = min_consensus();
        let a: Multiset<i64> = [3, 5].into();
        let b: Multiset<i64> = [3, 9].into();
        assert!(f.conserves(&a, &b)); // both have min 3 and cardinality 2
        let c: Multiset<i64> = [4, 9].into();
        assert!(!f.conserves(&a, &c));
    }

    #[test]
    fn idempotence_counterexample_is_reported() {
        // "Add one to every value" is not idempotent.
        let f = FnDistributedFunction::new("inc", |s: &Multiset<i64>| s.map(|v| v + 1));
        let err = check_idempotent(&f, &samples()).unwrap_err();
        let (x, fx, ffx) = err;
        assert_eq!(fx, f.apply(&x));
        assert_ne!(fx, ffx);
    }

    #[test]
    fn reference_to_function_is_also_a_function() {
        let f = min_consensus();
        let fref: &dyn Fn() = &|| {};
        let _ = fref; // silence unused closure warning trick not needed
        let via_ref: &ConsensusFunction<_, _> = &f;
        assert_eq!(via_ref.apply(&[5, 1].into()), [1, 1].into());
    }
}
