//! Variant (objective) functions `h` and the local-to-global improvement
//! property of §3.5.

use selfsim_multiset::Multiset;

use crate::DistributedFunction;

/// Tolerance used when comparing objective values: a step "strictly
/// decreases" `h` when it decreases by more than `EPSILON`.
///
/// Integer-valued objectives (all of the paper's examples except the convex
/// hull) decrease by at least 1, so the tolerance only matters for the
/// floating-point perimeter objective of §4.5.
pub const EPSILON: f64 = 1e-9;

/// A variant function `h` over multisets of agent states.
///
/// The range must be well-founded for the algorithms to terminate; in this
/// implementation objectives are real-valued but **must be bounded below by
/// zero** and every non-trivial group step must decrease them by more than
/// [`EPSILON`], which gives the same finite-descent guarantee for the
/// integer objectives of the paper and a physically meaningful one for the
/// perimeter objective.
pub trait ObjectiveFunction<S: Ord + Clone> {
    /// Evaluates the objective on a multiset of agent states.
    fn eval(&self, states: &Multiset<S>) -> f64;

    /// A short name used in reports and error messages.
    fn name(&self) -> &str {
        "h"
    }

    /// Returns `true` if going from `before` to `after` strictly decreases
    /// the objective (by more than [`EPSILON`]).
    fn strictly_decreases(&self, before: &Multiset<S>, after: &Multiset<S>) -> bool {
        self.eval(after) < self.eval(before) - EPSILON
    }
}

impl<S: Ord + Clone, H: ObjectiveFunction<S> + ?Sized> ObjectiveFunction<S> for &H {
    fn eval(&self, states: &Multiset<S>) -> f64 {
        (**self).eval(states)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// An objective defined by an arbitrary closure over the whole multiset.
///
/// Needed for objectives that are *not* in summation form — e.g. the
/// `(Σx)² − Σx²` objective of the sum example (§4.2) and the
/// "number of out-of-order pairs" objective that Figure 1 shows to violate
/// the local-to-global property.
pub struct FnObjective<S, H> {
    name: String,
    func: H,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, H> FnObjective<S, H>
where
    S: Ord + Clone,
    H: Fn(&Multiset<S>) -> f64,
{
    /// Wraps `func` as an [`ObjectiveFunction`] named `name`.
    pub fn new(name: impl Into<String>, func: H) -> Self {
        FnObjective {
            name: name.into(),
            func,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, H> ObjectiveFunction<S> for FnObjective<S, H>
where
    S: Ord + Clone,
    H: Fn(&Multiset<S>) -> f64,
{
    fn eval(&self, states: &Multiset<S>) -> f64 {
        (self.func)(states)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An objective in the paper's **summation form** (8):
/// `h(S_B) = Σ_{a ∈ B} h_a(S_a)`.
///
/// The lemma of §3.5 shows that, for a super-idempotent `f`, an objective of
/// this form automatically satisfies the local-to-global improvement
/// property (7), so relation `D` composes across disjoint groups.  All of
/// the paper's examples except the sum use a summation-form objective.
pub struct SummationObjective<S, G> {
    name: String,
    per_agent: G,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, G> SummationObjective<S, G>
where
    S: Ord + Clone,
    G: Fn(&S) -> f64,
{
    /// Creates a summation-form objective from a per-agent term.
    pub fn new(name: impl Into<String>, per_agent: G) -> Self {
        SummationObjective {
            name: name.into(),
            per_agent,
            _marker: std::marker::PhantomData,
        }
    }

    /// Evaluates the per-agent term on one agent state.
    pub fn per_agent(&self, state: &S) -> f64 {
        (self.per_agent)(state)
    }
}

impl<S, G> ObjectiveFunction<S> for SummationObjective<S, G>
where
    S: Ord + Clone,
    G: Fn(&S) -> f64,
{
    fn eval(&self, states: &Multiset<S>) -> f64 {
        // Summation form is linear in multiplicity, so evaluate per distinct
        // value: O(distinct) instead of O(n).  For integer-valued per-agent
        // terms (every summation objective exercised by the campaign
        // fixtures) `term * count` is exact, so trajectories are unchanged.
        states
            .iter_counts()
            .fold(0.0, |acc, (v, c)| acc + (self.per_agent)(v) * c as f64)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Checks the local-to-global improvement property (7) on sample data.
///
/// For every pair of "before" multisets `X, Y` and every pair of "after"
/// multisets `X', Y'` drawn from `transitions` (each entry is a
/// before/after pair that conserves `f`), verifies:
///
/// * if `h(X') < h(X)` and `Y' = Y`, then `h(X' ⊎ Y') < h(X ⊎ Y)`;
/// * if `h(X') < h(X)` and `h(Y') < h(Y)`, then `h(X' ⊎ Y') < h(X ⊎ Y)`.
///
/// Returns the first violating quadruple, if any.  Figure 1 of the paper is
/// exactly such a violation for the "out-of-order pairs" objective.
// the Err tuple IS the counterexample the proof-obligation callers pattern-
// match on; boxing or naming it would bury the diagnostic payload
#[allow(clippy::type_complexity, clippy::result_large_err)]
pub fn check_local_to_global_improvement<S: Ord + Clone>(
    f: &impl DistributedFunction<S>,
    h: &impl ObjectiveFunction<S>,
    transitions: &[(Multiset<S>, Multiset<S>)],
) -> Result<(), (Multiset<S>, Multiset<S>, Multiset<S>, Multiset<S>)> {
    for (x, x_prime) in transitions {
        if !f.conserves(x, x_prime) {
            continue;
        }
        let x_improves = h.strictly_decreases(x, x_prime);
        if !x_improves {
            continue;
        }
        for (y, y_prime) in transitions {
            if !f.conserves(y, y_prime) {
                continue;
            }
            let y_unchanged = y == y_prime;
            let y_improves = h.strictly_decreases(y, y_prime);
            if !(y_unchanged || y_improves) {
                continue;
            }
            let before = x.union(y);
            let after = x_prime.union(y_prime);
            if !h.strictly_decreases(&before, &after) {
                return Err((x.clone(), x_prime.clone(), y.clone(), y_prime.clone()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConsensusFunction;

    fn min_f() -> ConsensusFunction<i64, impl Fn(&Multiset<i64>) -> i64> {
        ConsensusFunction::new("min", |s: &Multiset<i64>| {
            s.min_value().copied().unwrap_or(0)
        })
    }

    #[test]
    fn summation_objective_sums_per_agent_terms() {
        let h = SummationObjective::new("sum", |v: &i64| *v as f64);
        assert_eq!(h.eval(&[3, 5, 3, 7].into()), 18.0);
        assert_eq!(h.eval(&Multiset::new()), 0.0);
        assert_eq!(h.per_agent(&4), 4.0);
        assert_eq!(h.name(), "sum");
    }

    #[test]
    fn strictly_decreases_uses_epsilon() {
        let h = SummationObjective::new("sum", |v: &i64| *v as f64);
        let a: Multiset<i64> = [5, 5].into();
        let b: Multiset<i64> = [5, 4].into();
        assert!(h.strictly_decreases(&a, &b));
        assert!(!h.strictly_decreases(&a, &a));
        assert!(!h.strictly_decreases(&b, &a));
    }

    #[test]
    fn fn_objective_wraps_whole_multiset_functions() {
        // The sum example's objective: (Σx)² − Σx².
        let h = FnObjective::new("spread", |s: &Multiset<i64>| {
            let total: f64 = s.fold(0.0, |acc, v| acc + *v as f64);
            let squares: f64 = s.fold(0.0, |acc, v| acc + (*v as f64) * (*v as f64));
            total * total - squares
        });
        let x: Multiset<i64> = [3, 5, 3, 7].into();
        // (18)² − (9 + 25 + 9 + 49) = 324 − 92 = 232
        assert_eq!(h.eval(&x), 232.0);
        // The optimum {18, 0, 0, 0} has objective 0.
        assert_eq!(h.eval(&[18, 0, 0, 0].into()), 0.0);
        assert_eq!(h.name(), "spread");
    }

    #[test]
    fn summation_form_satisfies_local_to_global() {
        let f = min_f();
        let h = SummationObjective::new("sum", |v: &i64| *v as f64);
        // Group transitions that conserve the minimum while decreasing the sum.
        let transitions: Vec<(Multiset<i64>, Multiset<i64>)> = vec![
            ([3, 5].into(), [3, 3].into()),
            ([3, 5, 7].into(), [3, 4, 5].into()),
            ([2, 9].into(), [2, 2].into()),
            ([4, 4].into(), [4, 4].into()), // no-op
            ([1, 6, 6].into(), [1, 1, 6].into()),
        ];
        assert!(check_local_to_global_improvement(&f, &h, &transitions).is_ok());
    }

    #[test]
    fn non_summation_objective_can_violate_local_to_global() {
        // A deliberately pathological objective: the *maximum* value held by
        // any agent.  A group can decrease its own maximum while the union's
        // maximum (held by the other group) stays put, so the union does not
        // strictly improve.
        let f = min_f();
        let h = FnObjective::new("max", |s: &Multiset<i64>| {
            s.max_value().copied().unwrap_or(0) as f64
        });
        let transitions: Vec<(Multiset<i64>, Multiset<i64>)> = vec![
            ([3, 5].into(), [3, 4].into()), // improves: max 5 -> 4
            ([2, 9].into(), [2, 9].into()), // unchanged, max 9 dominates the union
        ];
        assert!(check_local_to_global_improvement(&f, &h, &transitions).is_err());
    }

    #[test]
    fn reference_objective_delegates() {
        let h = SummationObjective::new("sum", |v: &i64| *v as f64);
        let href: &SummationObjective<_, _> = &h;
        assert_eq!(href.eval(&[1, 2].into()), 3.0);
        assert_eq!(href.name(), "sum");
    }
}
