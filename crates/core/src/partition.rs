//! Partitions of agent index sets.
//!
//! The transition relation of the paper quantifies over *partitions* `π` of
//! the agent set: in one agent transition, every group of the partition takes
//! a (possibly trivial) collaborative step.  The exhaustive proof-obligation
//! checkers enumerate all partitions of small agent sets; the simulators use
//! random partitions as an additional stress source.

use rand::Rng;

/// The Bell number `B(n)`: how many partitions an `n`-element set has.
///
/// Used by tests to confirm [`all_partitions`] is exhaustive.  Computed with
/// the Bell triangle; `n` must be small (the value overflows `u64` around
/// `n = 25`, far beyond what exhaustive checking can visit anyway).
pub fn bell_number(n: usize) -> u64 {
    if n == 0 {
        return 1;
    }
    let mut row: Vec<u64> = vec![1];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("row is never empty"));
        for &value in &row {
            let prev = *next.last().expect("next starts non-empty");
            next.push(prev + value);
        }
        row = next;
    }
    row[0]
}

/// Enumerates every partition of the index set `{0, 1, …, n-1}`.
///
/// Each partition is a list of blocks; each block is a sorted list of
/// indices; blocks are ordered by their smallest element.  The number of
/// partitions is the Bell number `B(n)`, so keep `n ≤ 10` or so.
pub fn all_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut results = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(
        next: usize,
        n: usize,
        current: &mut Vec<Vec<usize>>,
        out: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if next == n {
            out.push(current.clone());
            return;
        }
        // Put `next` into each existing block…
        for i in 0..current.len() {
            current[i].push(next);
            recurse(next + 1, n, current, out);
            current[i].pop();
        }
        // …or into a new block of its own.
        current.push(vec![next]);
        recurse(next + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut results);
    results
}

/// Enumerates every way of splitting `{0, …, n-1}` into an ordered pair of
/// disjoint sets `(B, C)` with `B ∪ C` equal to the whole set and `B`
/// non-empty (C may be empty).
///
/// This is the shape quantified over by the local-to-global proof obligation
/// (10): two disjoint groups stepping concurrently.
pub fn split_in_two(n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    for mask in 1u64..(1u64 << n) {
        let mut b = Vec::new();
        let mut c = Vec::new();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                b.push(i);
            } else {
                c.push(i);
            }
        }
        out.push((b, c));
    }
    out
}

/// Draws a uniformly random partition of `{0, …, n-1}` using the Chinese
/// restaurant construction (not exactly uniform over partitions, but it
/// produces a healthy variety of block sizes, which is what the randomised
/// checkers need).
pub fn random_partition(n: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        // Join an existing block with probability proportional to its size,
        // or open a new block.
        let total = i + 1;
        let choice = rng.gen_range(0..total);
        let mut running = 0usize;
        let mut placed = false;
        for block in blocks.iter_mut() {
            running += block.len();
            if choice < running {
                block.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            blocks.push(vec![i]);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn bell_numbers_match_known_values() {
        let expected = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140];
        for (n, &b) in expected.iter().enumerate() {
            assert_eq!(bell_number(n), b, "B({n})");
        }
    }

    #[test]
    fn all_partitions_counts_match_bell_numbers() {
        for n in 0..=7 {
            assert_eq!(all_partitions(n).len() as u64, bell_number(n), "n = {n}");
        }
    }

    #[test]
    fn all_partitions_blocks_cover_exactly_the_index_set() {
        for partition in all_partitions(5) {
            let mut seen = BTreeSet::new();
            for block in &partition {
                assert!(!block.is_empty());
                for &i in block {
                    assert!(seen.insert(i), "index {i} appears twice");
                }
            }
            assert_eq!(seen, (0..5).collect());
        }
    }

    #[test]
    fn partitions_of_zero_and_one() {
        assert_eq!(all_partitions(0), vec![Vec::<Vec<usize>>::new()]);
        assert_eq!(all_partitions(1), vec![vec![vec![0]]]);
    }

    #[test]
    fn split_in_two_enumerates_all_nonempty_b() {
        let splits = split_in_two(3);
        assert_eq!(splits.len(), 7); // 2^3 - 1
        for (b, c) in &splits {
            assert!(!b.is_empty());
            let all: BTreeSet<usize> = b.iter().chain(c.iter()).copied().collect();
            assert_eq!(all, (0..3).collect());
            let overlap: Vec<_> = b.iter().filter(|i| c.contains(i)).collect();
            assert!(overlap.is_empty());
        }
        assert!(split_in_two(0).is_empty());
    }

    #[test]
    fn random_partition_covers_index_set() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [0usize, 1, 4, 9] {
            let partition = random_partition(n, &mut rng);
            let mut seen = BTreeSet::new();
            for block in &partition {
                assert!(!block.is_empty());
                for &i in block {
                    assert!(seen.insert(i));
                }
            }
            assert_eq!(seen.len(), n);
        }
    }

    #[test]
    fn random_partition_produces_varied_block_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        let counts: BTreeSet<usize> = (0..50)
            .map(|_| random_partition(6, &mut rng).len())
            .collect();
        assert!(counts.len() > 1, "partitions all had the same block count");
    }
}
