//! Group transition relations `R` — the concrete algorithms executed by
//! groups of communicating agents.

use selfsim_multiset::Multiset;

use crate::{DistributedFunction, ObjectiveFunction, RelationD};

/// One collaborative step of a group of agents — the executable form of the
/// paper's relation `R`.
///
/// A step receives the current states of the members of one group (one slice
/// entry per member, in a fixed order chosen by the caller) and returns
/// their new states, **in the same order and of the same length** — each
/// position corresponds to the same agent before and after.  Returning the
/// input unchanged is always allowed (`R` is reflexive: a group may idle).
///
/// The multiset view the paper works with is obtained by forgetting the
/// positions; the simulators need the positional form to write the new
/// states back to the right agents.
pub trait GroupStep<S: Ord + Clone> {
    /// Performs one collaborative step for a group currently holding
    /// `states`.  Implementations may use `rng` for randomised strategies.
    fn step(&self, states: &[S], rng: &mut dyn rand::RngCore) -> Vec<S>;

    /// A short name used in reports and error messages.
    fn name(&self) -> &str {
        "R"
    }
}

impl<S: Ord + Clone, R: GroupStep<S> + ?Sized> GroupStep<S> for &R {
    fn step(&self, states: &[S], rng: &mut dyn rand::RngCore) -> Vec<S> {
        (**self).step(states, rng)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A group step defined by a closure.
pub struct FnGroupStep<S, R> {
    name: String,
    func: R,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S, R> FnGroupStep<S, R>
where
    S: Ord + Clone,
    R: Fn(&[S], &mut dyn rand::RngCore) -> Vec<S>,
{
    /// Wraps `func` as a [`GroupStep`] named `name`.
    pub fn new(name: impl Into<String>, func: R) -> Self {
        FnGroupStep {
            name: name.into(),
            func,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, R> GroupStep<S> for FnGroupStep<S, R>
where
    S: Ord + Clone,
    R: Fn(&[S], &mut dyn rand::RngCore) -> Vec<S>,
{
    fn step(&self, states: &[S], rng: &mut dyn rand::RngCore) -> Vec<S> {
        (self.func)(states, rng)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The trivial group step that never changes anything — the reflexive part
/// of `R` on its own.  Useful as a baseline and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityStep;

impl<S: Ord + Clone> GroupStep<S> for IdentityStep {
    fn step(&self, states: &[S], _rng: &mut dyn rand::RngCore) -> Vec<S> {
        states.to_vec()
    }

    fn name(&self) -> &str {
        "identity"
    }
}

/// A [`GroupStep`] wrapper that checks, at every invocation, that the inner
/// step refines the relation `D` induced by `f` and `h` — the first proof
/// obligation of §3.7 enforced at run time.
///
/// On a violation the wrapper panics with a description of the offending
/// transition (in debug-style runs) — the simulators use this mode in the
/// test-suite so that any algorithm bug that breaks the conservation law or
/// the variant descent is caught at its source rather than as a missed
/// convergence much later.
pub struct CheckedGroupStep<R, F, H> {
    inner: R,
    relation: RelationD<F, H>,
}

impl<R, F, H> CheckedGroupStep<R, F, H> {
    /// Wraps `inner` so that every step is checked against `D = (f, h)`.
    pub fn new(inner: R, f: F, h: H) -> Self {
        CheckedGroupStep {
            inner,
            relation: RelationD::new(f, h),
        }
    }

    /// The wrapped step.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<S, R, F, H> GroupStep<S> for CheckedGroupStep<R, F, H>
where
    S: Ord + Clone + std::fmt::Debug,
    R: GroupStep<S>,
    F: DistributedFunction<S>,
    H: ObjectiveFunction<S>,
{
    fn step(&self, states: &[S], rng: &mut dyn rand::RngCore) -> Vec<S> {
        let after = self.inner.step(states, rng);
        assert_eq!(
            states.len(),
            after.len(),
            "group step `{}` changed the number of agents in the group ({} -> {})",
            self.inner.name(),
            states.len(),
            after.len()
        );
        let before_ms: Multiset<S> = states.iter().cloned().collect();
        let after_ms: Multiset<S> = after.iter().cloned().collect();
        if let Some(reason) = self.relation.explain_violation(&before_ms, &after_ms) {
            panic!(
                "group step `{}` does not refine D: {reason}\n  before: {before_ms:?}\n  after:  {after_ms:?}",
                self.inner.name()
            );
        }
        after
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsensusFunction, SummationObjective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    fn min_f() -> ConsensusFunction<i64, impl Fn(&Multiset<i64>) -> i64> {
        ConsensusFunction::new("min", |s: &Multiset<i64>| {
            s.min_value().copied().unwrap_or(0)
        })
    }

    fn sum_h() -> SummationObjective<i64, impl Fn(&i64) -> f64> {
        SummationObjective::new("sum", |v: &i64| *v as f64)
    }

    /// All agents adopt the group minimum in one step.
    fn min_step() -> FnGroupStep<i64, impl Fn(&[i64], &mut dyn rand::RngCore) -> Vec<i64>> {
        FnGroupStep::new(
            "adopt-min",
            |states: &[i64], _rng: &mut dyn rand::RngCore| {
                let m = states.iter().copied().min().unwrap_or(0);
                vec![m; states.len()]
            },
        )
    }

    #[test]
    fn identity_step_changes_nothing() {
        let s = vec![4i64, 2, 9];
        let out = IdentityStep.step(&s, &mut rng());
        assert_eq!(out, s);
        assert_eq!(GroupStep::<i64>::name(&IdentityStep), "identity");
    }

    #[test]
    fn fn_group_step_applies_closure() {
        let step = min_step();
        assert_eq!(step.step(&[5, 3, 9], &mut rng()), vec![3, 3, 3]);
        assert_eq!(step.name(), "adopt-min");
    }

    #[test]
    fn checked_step_accepts_valid_algorithm() {
        let checked = CheckedGroupStep::new(min_step(), min_f(), sum_h());
        assert_eq!(checked.step(&[5, 3, 9], &mut rng()), vec![3, 3, 3]);
        // Idling on an already-converged group is fine too.
        assert_eq!(checked.step(&[3, 3], &mut rng()), vec![3, 3]);
        assert_eq!(checked.name(), "adopt-min");
        assert_eq!(checked.inner().name(), "adopt-min");
    }

    #[test]
    #[should_panic(expected = "does not refine D")]
    fn checked_step_rejects_non_conserving_algorithm() {
        // A buggy algorithm that adopts the *maximum* — it fails to conserve
        // the minimum.
        let buggy = FnGroupStep::new(
            "adopt-max",
            |states: &[i64], _rng: &mut dyn rand::RngCore| {
                let m = states.iter().copied().max().unwrap_or(0);
                vec![m; states.len()]
            },
        );
        let checked = CheckedGroupStep::new(buggy, min_f(), sum_h());
        let _ = checked.step(&[5, 3, 9], &mut rng());
    }

    #[test]
    #[should_panic(expected = "does not refine D")]
    fn checked_step_rejects_non_improving_change() {
        // Swapping values keeps the multiset identical only if the result is
        // the same multiset; here we *increase* one value while keeping the
        // minimum, which conserves f but increases h.
        let buggy = FnGroupStep::new("inflate", |states: &[i64], _rng: &mut dyn rand::RngCore| {
            let mut out = states.to_vec();
            if let Some(v) = out.iter_mut().max() {
                *v += 1;
            }
            out
        });
        let checked = CheckedGroupStep::new(buggy, min_f(), sum_h());
        let _ = checked.step(&[5, 3], &mut rng());
    }

    #[test]
    #[should_panic(expected = "changed the number of agents")]
    fn checked_step_rejects_cardinality_changes() {
        let buggy = FnGroupStep::new(
            "drop-one",
            |states: &[i64], _rng: &mut dyn rand::RngCore| states[1..].to_vec(),
        );
        let checked = CheckedGroupStep::new(buggy, min_f(), sum_h());
        let _ = checked.step(&[5, 3], &mut rng());
    }

    #[test]
    fn reference_to_step_is_also_a_step() {
        let step = min_step();
        let via_ref: &dyn GroupStep<i64> = &step;
        assert_eq!(via_ref.step(&[2, 8], &mut rng()), vec![2, 2]);
        let double_ref = &&step;
        assert_eq!(double_ref.step(&[2, 8], &mut rng()), vec![2, 2]);
    }
}
