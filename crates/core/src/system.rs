//! The complete description of a self-similar algorithm instance.

use std::sync::OnceLock;

use selfsim_env::{AgentId, FairnessSpec};
use selfsim_multiset::Multiset;

use crate::{DistributedFunction, GroupStep, ObjectiveFunction, RelationD};

/// The positional state of the whole agent set: `state[i]` is the state of
/// `AgentId(i)`.
///
/// The paper's multiset view is recovered with [`SelfSimilarSystem::multiset`];
/// the positional form is what the environment-driven simulators need in
/// order to write group-step results back to the right agents.
pub type SystemState<S> = Vec<S>;

/// A self-similar algorithm instance: the distributed function `f` to
/// compute, the variant `h`, the group algorithm `R`, the initial states,
/// and the fairness assumption `Q` under which convergence is claimed.
///
/// The components are stored as boxed trait objects so that algorithm
/// constructors (in `selfsim-algorithms`) can build instances from closures
/// without leaking unnameable types, and so that simulators and experiment
/// harnesses can treat all algorithms uniformly.
pub struct SelfSimilarSystem<S: Ord + Clone> {
    name: String,
    f: Box<dyn DistributedFunction<S>>,
    h: Box<dyn ObjectiveFunction<S>>,
    step: Box<dyn GroupStep<S>>,
    initial: SystemState<S>,
    fairness: FairnessSpec,
    // `f(S(0))` is a constant of the instance but `is_converged` runs once
    // per simulated round; computing it lazily once removes the dominant
    // allocation from the convergence check.
    target: OnceLock<Multiset<S>>,
}

impl<S: Ord + Clone + std::fmt::Debug> SelfSimilarSystem<S> {
    /// Packages an algorithm instance.
    ///
    /// # Panics
    ///
    /// Panics if the fairness spec's agent count does not match the number
    /// of initial states.
    pub fn new(
        name: impl Into<String>,
        f: impl DistributedFunction<S> + 'static,
        h: impl ObjectiveFunction<S> + 'static,
        step: impl GroupStep<S> + 'static,
        initial: SystemState<S>,
        fairness: FairnessSpec,
    ) -> Self {
        assert_eq!(
            fairness.agent_count(),
            initial.len(),
            "fairness spec is over {} agents but there are {} initial states",
            fairness.agent_count(),
            initial.len()
        );
        SelfSimilarSystem {
            name: name.into(),
            f: Box::new(f),
            h: Box::new(h),
            step: Box::new(step),
            initial,
            fairness,
            target: OnceLock::new(),
        }
    }

    /// The instance's name (e.g. `"minimum"`, `"sorting"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.initial.len()
    }

    /// The initial positional state `S(0)`.
    pub fn initial_state(&self) -> &SystemState<S> {
        &self.initial
    }

    /// The fairness assumption `Q` under which the instance is claimed to
    /// converge.
    pub fn fairness(&self) -> &FairnessSpec {
        &self.fairness
    }

    /// The distributed function `f`.
    pub fn function(&self) -> &dyn DistributedFunction<S> {
        self.f.as_ref()
    }

    /// The objective `h`.
    pub fn objective(&self) -> &dyn ObjectiveFunction<S> {
        self.h.as_ref()
    }

    /// The group algorithm `R`.
    pub fn group_step(&self) -> &dyn GroupStep<S> {
        self.step.as_ref()
    }

    /// The relation `D` induced by `f` and `h`.
    pub fn relation(&self) -> RelationD<&dyn DistributedFunction<S>, &dyn ObjectiveFunction<S>> {
        RelationD::new(self.f.as_ref(), self.h.as_ref())
    }

    /// The multiset view of a positional state.
    pub fn multiset(&self, state: &[S]) -> Multiset<S> {
        state.iter().cloned().collect()
    }

    /// The target multiset `S* = f(S(0))` — the conserved quantity of the
    /// conservation law and the state the system must reach and maintain.
    pub fn target(&self) -> Multiset<S> {
        self.target_ref().clone()
    }

    /// Borrowed view of the target multiset; computed once per instance
    /// (`f(S(0))` is constant) and shared by every convergence check.
    pub fn target_ref(&self) -> &Multiset<S> {
        self.target
            .get_or_init(|| self.f.apply(&self.multiset(&self.initial)))
    }

    /// Returns `true` if `state` is optimal: its multiset equals the target
    /// `f(S(0))` (equivalently, by the conservation law, `S = f(S)`).
    pub fn is_converged(&self, state: &[S]) -> bool {
        self.multiset(state) == *self.target_ref()
    }

    /// Returns `true` if the conservation law `f(S) = f(S(0))` holds in
    /// `state` — the key invariant of §3.2; every reachable state must
    /// satisfy it.
    pub fn conservation_law_holds(&self, state: &[S]) -> bool {
        self.f.apply(&self.multiset(state)) == *self.target_ref()
    }

    /// The global objective value `h(S)` of a positional state.
    pub fn global_objective(&self, state: &[S]) -> f64 {
        self.h.eval(&self.multiset(state))
    }

    /// Applies one collaborative step of `R` to the members of `group`
    /// (given as agent ids), writing the results back into `state`.
    ///
    /// Returns `true` if the group's multiset of states changed.
    ///
    /// # Panics
    ///
    /// Panics if the group step returns a different number of states than
    /// the group has members, or if a group member index is out of range.
    pub fn apply_group_step(
        &self,
        state: &mut SystemState<S>,
        group: &[AgentId],
        rng: &mut dyn rand::RngCore,
    ) -> bool {
        if group.is_empty() {
            return false;
        }
        let before: Vec<S> = group
            .iter()
            .map(|a| {
                state
                    .get(a.index())
                    .unwrap_or_else(|| panic!("agent {a} out of range"))
                    .clone()
            })
            .collect();
        let after = self.step.step(&before, rng);
        assert_eq!(
            before.len(),
            after.len(),
            "group step `{}` changed the group size",
            self.step.name()
        );
        let changed = {
            let before_ms: Multiset<S> = before.iter().cloned().collect();
            let after_ms: Multiset<S> = after.iter().cloned().collect();
            before_ms != after_ms
        };
        for (agent, new_state) in group.iter().zip(after) {
            state[agent.index()] = new_state;
        }
        changed
    }

    /// Applies one full *agent transition* of the paper: every group of the
    /// partition `groups` takes one collaborative step (disabled agents are
    /// simply not members of any group and keep their state).
    ///
    /// Returns the number of groups whose state changed.
    pub fn apply_partition_step(
        &self,
        state: &mut SystemState<S>,
        groups: &[Vec<AgentId>],
        rng: &mut dyn rand::RngCore,
    ) -> usize {
        let mut changed = 0;
        for group in groups {
            if self.apply_group_step(state, group, rng) {
                changed += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsensusFunction, FnGroupStep, SummationObjective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_env::Topology;

    fn min_system(initial: Vec<i64>) -> SelfSimilarSystem<i64> {
        let n = initial.len();
        SelfSimilarSystem::new(
            "minimum",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            FnGroupStep::new(
                "adopt-min",
                |states: &[i64], _rng: &mut dyn rand::RngCore| {
                    let m = states.iter().copied().min().unwrap_or(0);
                    vec![m; states.len()]
                },
            ),
            initial,
            FairnessSpec::for_graph(&Topology::line(n)),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn target_is_f_of_initial_state() {
        let sys = min_system(vec![3, 5, 3, 7]);
        assert_eq!(sys.target(), [3, 3, 3, 3].into());
        assert_eq!(sys.agent_count(), 4);
        assert_eq!(sys.name(), "minimum");
    }

    #[test]
    fn target_is_computed_once_and_shared() {
        let sys = min_system(vec![3, 5, 3, 7]);
        let first = sys.target_ref() as *const Multiset<i64>;
        let second = sys.target_ref() as *const Multiset<i64>;
        assert_eq!(first, second, "target must be cached, not recomputed");
        assert_eq!(sys.target(), [3, 3, 3, 3].into());
        assert!(sys.is_converged(&[3, 3, 3, 3]));
    }

    #[test]
    fn convergence_and_conservation_checks() {
        let sys = min_system(vec![3, 5, 3, 7]);
        assert!(!sys.is_converged(&[3, 5, 3, 7]));
        assert!(sys.conservation_law_holds(&[3, 5, 3, 7]));
        assert!(sys.is_converged(&[3, 3, 3, 3]));
        assert!(sys.conservation_law_holds(&[3, 3, 3, 3]));
        // A state with the minimum lost violates the conservation law.
        assert!(!sys.conservation_law_holds(&[4, 5, 4, 7]));
        assert_eq!(sys.global_objective(&[3, 5, 3, 7]), 18.0);
    }

    #[test]
    fn apply_group_step_updates_only_group_members() {
        let sys = min_system(vec![9, 5, 3, 7]);
        let mut state = sys.initial_state().clone();
        let changed = sys.apply_group_step(&mut state, &[AgentId(0), AgentId(1)], &mut rng());
        assert!(changed);
        assert_eq!(state, vec![5, 5, 3, 7]);
        // A singleton group can only idle under this R.
        let changed = sys.apply_group_step(&mut state, &[AgentId(3)], &mut rng());
        assert!(!changed);
        assert_eq!(state, vec![5, 5, 3, 7]);
        // Empty groups are no-ops.
        assert!(!sys.apply_group_step(&mut state, &[], &mut rng()));
    }

    #[test]
    fn apply_partition_step_steps_every_group() {
        let sys = min_system(vec![9, 5, 3, 7]);
        let mut state = sys.initial_state().clone();
        let groups = vec![vec![AgentId(0), AgentId(1)], vec![AgentId(2), AgentId(3)]];
        let changed = sys.apply_partition_step(&mut state, &groups, &mut rng());
        assert_eq!(changed, 2);
        assert_eq!(state, vec![5, 5, 3, 3]);
        // One more whole-system step converges.
        let all = vec![vec![AgentId(0), AgentId(1), AgentId(2), AgentId(3)]];
        sys.apply_partition_step(&mut state, &all, &mut rng());
        assert!(sys.is_converged(&state));
    }

    #[test]
    fn relation_is_exposed() {
        let sys = min_system(vec![4, 2]);
        let d = sys.relation();
        assert!(d.relates(&[4, 2].into(), &[2, 2].into()));
        assert!(!d.relates(&[4, 2].into(), &[4, 4].into()));
    }

    #[test]
    #[should_panic(expected = "fairness spec is over")]
    fn mismatched_fairness_spec_is_rejected() {
        let _ = SelfSimilarSystem::new(
            "broken",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            crate::IdentityStep,
            vec![1, 2, 3],
            FairnessSpec::for_graph(&Topology::line(5)),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_group_member_panics() {
        let sys = min_system(vec![1, 2]);
        let mut state = sys.initial_state().clone();
        sys.apply_group_step(&mut state, &[AgentId(7)], &mut rng());
    }
}
