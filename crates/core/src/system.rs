//! The complete description of a self-similar algorithm instance.

use std::sync::OnceLock;

use selfsim_env::{AgentId, FairnessSpec};
use selfsim_multiset::{Multiset, SignedCounts};

use crate::{DistributedFunction, GroupStep, ObjectiveFunction, RelationD};

/// Reusable scratch buffers for [`SelfSimilarSystem::apply_group_step_with`].
///
/// A simulator allocates one of these per run and threads it through every
/// group step; the buffers grow to the largest group seen and are then
/// reused, so the steady-state step loop performs no allocation for the
/// change-detection bookkeeping.
#[derive(Default)]
pub struct StepScratch<S: Ord> {
    before: Vec<S>,
    delta: SignedCounts<S>,
}

impl<S: Ord> StepScratch<S> {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        StepScratch {
            before: Vec::new(),
            delta: SignedCounts::new(),
        }
    }
}

/// What a single group step did, as observed by
/// [`SelfSimilarSystem::apply_group_step_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepOutcome {
    /// `true` if the group's *multiset* of states changed — the paper's
    /// notion of a productive transition.
    pub multiset_changed: bool,
    /// `true` if no agent's positional state changed at all (a fixpoint of
    /// `R` on this group; implies `!multiset_changed`).
    pub positionally_fixed: bool,
}

/// The positional state of the whole agent set: `state[i]` is the state of
/// `AgentId(i)`.
///
/// The paper's multiset view is recovered with [`SelfSimilarSystem::multiset`];
/// the positional form is what the environment-driven simulators need in
/// order to write group-step results back to the right agents.
pub type SystemState<S> = Vec<S>;

/// A self-similar algorithm instance: the distributed function `f` to
/// compute, the variant `h`, the group algorithm `R`, the initial states,
/// and the fairness assumption `Q` under which convergence is claimed.
///
/// The components are stored as boxed trait objects so that algorithm
/// constructors (in `selfsim-algorithms`) can build instances from closures
/// without leaking unnameable types, and so that simulators and experiment
/// harnesses can treat all algorithms uniformly.
pub struct SelfSimilarSystem<S: Ord + Clone> {
    name: String,
    f: Box<dyn DistributedFunction<S>>,
    h: Box<dyn ObjectiveFunction<S>>,
    step: Box<dyn GroupStep<S>>,
    initial: SystemState<S>,
    fairness: FairnessSpec,
    // `f(S(0))` is a constant of the instance but `is_converged` runs once
    // per simulated round; computing it lazily once removes the dominant
    // allocation from the convergence check.
    target: OnceLock<Multiset<S>>,
    // The multiset view of `S(0)` is also a constant, and every simulator
    // builds it at t0 — an O(n log n) collect that dominates startup at
    // n = 10^6.  Cached so repeated runs over one instance pay it once.
    initial_multiset: OnceLock<Multiset<S>>,
}

impl<S: Ord + Clone + std::fmt::Debug> SelfSimilarSystem<S> {
    /// Packages an algorithm instance.
    ///
    /// # Panics
    ///
    /// Panics if the fairness spec's agent count does not match the number
    /// of initial states.
    pub fn new(
        name: impl Into<String>,
        f: impl DistributedFunction<S> + 'static,
        h: impl ObjectiveFunction<S> + 'static,
        step: impl GroupStep<S> + 'static,
        initial: SystemState<S>,
        fairness: FairnessSpec,
    ) -> Self {
        assert_eq!(
            fairness.agent_count(),
            initial.len(),
            "fairness spec is over {} agents but there are {} initial states",
            fairness.agent_count(),
            initial.len()
        );
        SelfSimilarSystem {
            name: name.into(),
            f: Box::new(f),
            h: Box::new(h),
            step: Box::new(step),
            initial,
            fairness,
            target: OnceLock::new(),
            initial_multiset: OnceLock::new(),
        }
    }

    /// The instance's name (e.g. `"minimum"`, `"sorting"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.initial.len()
    }

    /// The initial positional state `S(0)`.
    pub fn initial_state(&self) -> &SystemState<S> {
        &self.initial
    }

    /// The fairness assumption `Q` under which the instance is claimed to
    /// converge.
    pub fn fairness(&self) -> &FairnessSpec {
        &self.fairness
    }

    /// The distributed function `f`.
    pub fn function(&self) -> &dyn DistributedFunction<S> {
        self.f.as_ref()
    }

    /// The objective `h`.
    pub fn objective(&self) -> &dyn ObjectiveFunction<S> {
        self.h.as_ref()
    }

    /// The group algorithm `R`.
    pub fn group_step(&self) -> &dyn GroupStep<S> {
        self.step.as_ref()
    }

    /// The relation `D` induced by `f` and `h`.
    pub fn relation(&self) -> RelationD<&dyn DistributedFunction<S>, &dyn ObjectiveFunction<S>> {
        RelationD::new(self.f.as_ref(), self.h.as_ref())
    }

    /// The multiset view of a positional state.
    pub fn multiset(&self, state: &[S]) -> Multiset<S> {
        state.iter().cloned().collect()
    }

    /// Borrowed multiset view of the initial state `S(0)`; computed once
    /// per instance and shared by every simulator's t0 setup.
    pub fn initial_multiset(&self) -> &Multiset<S> {
        self.initial_multiset
            .get_or_init(|| self.multiset(&self.initial))
    }

    /// The target multiset `S* = f(S(0))` — the conserved quantity of the
    /// conservation law and the state the system must reach and maintain.
    pub fn target(&self) -> Multiset<S> {
        self.target_ref().clone()
    }

    /// Borrowed view of the target multiset; computed once per instance
    /// (`f(S(0))` is constant) and shared by every convergence check.
    pub fn target_ref(&self) -> &Multiset<S> {
        self.target
            .get_or_init(|| self.f.apply(&self.multiset(&self.initial)))
    }

    /// Returns `true` if `state` is optimal: its multiset equals the target
    /// `f(S(0))` (equivalently, by the conservation law, `S = f(S)`).
    pub fn is_converged(&self, state: &[S]) -> bool {
        self.multiset(state) == *self.target_ref()
    }

    /// Returns `true` if the conservation law `f(S) = f(S(0))` holds in
    /// `state` — the key invariant of §3.2; every reachable state must
    /// satisfy it.
    pub fn conservation_law_holds(&self, state: &[S]) -> bool {
        self.f.apply(&self.multiset(state)) == *self.target_ref()
    }

    /// The global objective value `h(S)` of a positional state.
    pub fn global_objective(&self, state: &[S]) -> f64 {
        self.h.eval(&self.multiset(state))
    }

    /// The global objective value `h(S)` of a multiset view that the caller
    /// already maintains (see [`Self::apply_group_step_with`]).
    ///
    /// Because `h` folds the multiset in ascending value order, this is
    /// byte-identical to [`Self::global_objective`] on any positional state
    /// with the same multiset — a simulator that maintains the multiset
    /// incrementally reproduces the exact `f64` trajectory of one that
    /// rebuilds it from scratch every round.
    pub fn objective_of(&self, multiset: &Multiset<S>) -> f64 {
        self.h.eval(multiset)
    }

    /// Convergence check against a caller-maintained multiset view:
    /// equivalent to [`Self::is_converged`] on any positional state with the
    /// same multiset.
    pub fn is_converged_multiset(&self, multiset: &Multiset<S>) -> bool {
        *multiset == *self.target_ref()
    }

    /// Applies one collaborative step of `R` to the members of `group`
    /// (given as agent ids), writing the results back into `state`.
    ///
    /// Returns `true` if the group's multiset of states changed.
    ///
    /// # Panics
    ///
    /// Panics if the group step returns a different number of states than
    /// the group has members, or if a group member index is out of range.
    pub fn apply_group_step(
        &self,
        state: &mut SystemState<S>,
        group: &[AgentId],
        rng: &mut dyn rand::RngCore,
    ) -> bool {
        let mut scratch = StepScratch::new();
        self.apply_group_step_with(state, group, rng, &mut scratch, None)
            .multiset_changed
    }

    /// Allocation-reusing form of [`Self::apply_group_step`].
    ///
    /// `scratch` provides the buffers for the before-image and for signed
    /// change counting; they keep their capacity across calls.  If `global`
    /// is given, it must be the multiset view of `state` *before* the step
    /// and is updated in place to the view after the step, letting a
    /// simulator maintain the whole-system multiset incrementally instead of
    /// rebuilding it (O(n log n)) every round.
    ///
    /// # Panics
    ///
    /// Panics if the group step returns a different number of states than
    /// the group has members, or if a group member index is out of range.
    pub fn apply_group_step_with(
        &self,
        state: &mut SystemState<S>,
        group: &[AgentId],
        rng: &mut dyn rand::RngCore,
        scratch: &mut StepScratch<S>,
        global: Option<&mut Multiset<S>>,
    ) -> StepOutcome {
        if group.is_empty() {
            return StepOutcome {
                multiset_changed: false,
                positionally_fixed: true,
            };
        }
        // A group of consecutive agent ids (the common case for block
        // partitions and whole-system groups) is a contiguous slice of
        // `state`, so the step can read it in place — no before-image copy.
        let lo = group.first().map(AgentId::index).unwrap_or_default();
        let contiguous = group
            .windows(2)
            .all(|w| w.get(1).map(|a| a.index()) == w.first().map(|a| a.index() + 1));
        let after = match state.get(lo..lo + group.len()) {
            Some(before) if contiguous => self.step.step(before, rng),
            _ => {
                scratch.before.clear();
                scratch.before.extend(group.iter().map(|a| {
                    state
                        .get(a.index())
                        .unwrap_or_else(|| panic!("agent {a} out of range"))
                        .clone()
                }));
                self.step.step(&scratch.before, rng)
            }
        };
        assert_eq!(
            group.len(),
            after.len(),
            "group step `{}` changed the group size",
            self.step.name()
        );
        // One fused pass: positions that kept their value contribute -1 and
        // +1 of the same value to the signed counter and need no write-back;
        // skipping them keeps the counter small for the common mostly-idle
        // step and touches each changed slot exactly once.  The before-value
        // is read from the slot itself just before overwriting it.
        scratch.delta.clear();
        let mut positionally_fixed = true;
        for (agent, new_state) in group.iter().zip(after) {
            let slot = state
                .get_mut(agent.index())
                .unwrap_or_else(|| panic!("agent {agent} out of range"));
            if *slot != new_state {
                positionally_fixed = false;
                scratch.delta.add(slot.clone(), -1);
                scratch.delta.add(new_state.clone(), 1);
                *slot = new_state;
            }
        }
        let multiset_changed = !scratch.delta.is_balanced();
        if let Some(ms) = global {
            for (v, c) in scratch.delta.iter_nonzero() {
                if c > 0 {
                    ms.insert_n(v.clone(), c as usize);
                } else {
                    ms.remove_n(v, c.unsigned_abs());
                }
            }
        }
        StepOutcome {
            multiset_changed,
            positionally_fixed,
        }
    }

    /// Applies one full *agent transition* of the paper: every group of the
    /// partition `groups` takes one collaborative step (disabled agents are
    /// simply not members of any group and keep their state).
    ///
    /// Returns the number of groups whose state changed.
    pub fn apply_partition_step(
        &self,
        state: &mut SystemState<S>,
        groups: &[Vec<AgentId>],
        rng: &mut dyn rand::RngCore,
    ) -> usize {
        let mut changed = 0;
        for group in groups {
            if self.apply_group_step(state, group, rng) {
                changed += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsensusFunction, FnGroupStep, SummationObjective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_env::Topology;

    fn min_system(initial: Vec<i64>) -> SelfSimilarSystem<i64> {
        let n = initial.len();
        SelfSimilarSystem::new(
            "minimum",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            FnGroupStep::new(
                "adopt-min",
                |states: &[i64], _rng: &mut dyn rand::RngCore| {
                    let m = states.iter().copied().min().unwrap_or(0);
                    vec![m; states.len()]
                },
            ),
            initial,
            FairnessSpec::for_graph(&Topology::line(n)),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn target_is_f_of_initial_state() {
        let sys = min_system(vec![3, 5, 3, 7]);
        assert_eq!(sys.target(), [3, 3, 3, 3].into());
        assert_eq!(sys.agent_count(), 4);
        assert_eq!(sys.name(), "minimum");
    }

    #[test]
    fn target_is_computed_once_and_shared() {
        let sys = min_system(vec![3, 5, 3, 7]);
        let first = sys.target_ref() as *const Multiset<i64>;
        let second = sys.target_ref() as *const Multiset<i64>;
        assert_eq!(first, second, "target must be cached, not recomputed");
        assert_eq!(sys.target(), [3, 3, 3, 3].into());
        assert!(sys.is_converged(&[3, 3, 3, 3]));
    }

    #[test]
    fn convergence_and_conservation_checks() {
        let sys = min_system(vec![3, 5, 3, 7]);
        assert!(!sys.is_converged(&[3, 5, 3, 7]));
        assert!(sys.conservation_law_holds(&[3, 5, 3, 7]));
        assert!(sys.is_converged(&[3, 3, 3, 3]));
        assert!(sys.conservation_law_holds(&[3, 3, 3, 3]));
        // A state with the minimum lost violates the conservation law.
        assert!(!sys.conservation_law_holds(&[4, 5, 4, 7]));
        assert_eq!(sys.global_objective(&[3, 5, 3, 7]), 18.0);
    }

    #[test]
    fn apply_group_step_updates_only_group_members() {
        let sys = min_system(vec![9, 5, 3, 7]);
        let mut state = sys.initial_state().clone();
        let changed = sys.apply_group_step(&mut state, &[AgentId(0), AgentId(1)], &mut rng());
        assert!(changed);
        assert_eq!(state, vec![5, 5, 3, 7]);
        // A singleton group can only idle under this R.
        let changed = sys.apply_group_step(&mut state, &[AgentId(3)], &mut rng());
        assert!(!changed);
        assert_eq!(state, vec![5, 5, 3, 7]);
        // Empty groups are no-ops.
        assert!(!sys.apply_group_step(&mut state, &[], &mut rng()));
    }

    #[test]
    fn apply_partition_step_steps_every_group() {
        let sys = min_system(vec![9, 5, 3, 7]);
        let mut state = sys.initial_state().clone();
        let groups = vec![vec![AgentId(0), AgentId(1)], vec![AgentId(2), AgentId(3)]];
        let changed = sys.apply_partition_step(&mut state, &groups, &mut rng());
        assert_eq!(changed, 2);
        assert_eq!(state, vec![5, 5, 3, 3]);
        // One more whole-system step converges.
        let all = vec![vec![AgentId(0), AgentId(1), AgentId(2), AgentId(3)]];
        sys.apply_partition_step(&mut state, &all, &mut rng());
        assert!(sys.is_converged(&state));
    }

    #[test]
    fn scratch_step_matches_allocating_step_and_maintains_multiset() {
        let sys = min_system(vec![9, 5, 3, 7]);
        let mut state = sys.initial_state().clone();
        let mut global: Multiset<i64> = sys.multiset(&state);
        let mut scratch = StepScratch::new();
        let out = sys.apply_group_step_with(
            &mut state,
            &[AgentId(0), AgentId(1)],
            &mut rng(),
            &mut scratch,
            Some(&mut global),
        );
        assert!(out.multiset_changed);
        assert!(!out.positionally_fixed);
        assert_eq!(state, vec![5, 5, 3, 7]);
        assert_eq!(
            global,
            sys.multiset(&state),
            "incremental view tracks state"
        );
        assert_eq!(sys.objective_of(&global), sys.global_objective(&state));
        // A fixed group reports positionally_fixed and leaves the view alone.
        let out = sys.apply_group_step_with(
            &mut state,
            &[AgentId(2)],
            &mut rng(),
            &mut scratch,
            Some(&mut global),
        );
        assert!(!out.multiset_changed);
        assert!(out.positionally_fixed);
        assert_eq!(global, sys.multiset(&state));
        // Converge and check the multiset-view convergence test agrees.
        let all = vec![AgentId(0), AgentId(1), AgentId(2), AgentId(3)];
        sys.apply_group_step_with(
            &mut state,
            &all,
            &mut rng(),
            &mut scratch,
            Some(&mut global),
        );
        assert!(sys.is_converged(&state));
        assert!(sys.is_converged_multiset(&global));
        // Empty group short-circuits.
        let out = sys.apply_group_step_with(&mut state, &[], &mut rng(), &mut scratch, None);
        assert!(out.positionally_fixed && !out.multiset_changed);
    }

    #[test]
    fn relation_is_exposed() {
        let sys = min_system(vec![4, 2]);
        let d = sys.relation();
        assert!(d.relates(&[4, 2].into(), &[2, 2].into()));
        assert!(!d.relates(&[4, 2].into(), &[4, 4].into()));
    }

    #[test]
    #[should_panic(expected = "fairness spec is over")]
    fn mismatched_fairness_spec_is_rejected() {
        let _ = SelfSimilarSystem::new(
            "broken",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            crate::IdentityStep,
            vec![1, 2, 3],
            FairnessSpec::for_graph(&Topology::line(5)),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_group_member_panics() {
        let sys = min_system(vec![1, 2]);
        let mut state = sys.initial_state().clone();
        sys.apply_group_step(&mut state, &[AgentId(7)], &mut rng());
    }
}
