//! Executable forms of the three proof obligations of §3.7.
//!
//! The paper's correctness theorem says that an algorithm `R` together with
//! a fairness set `Q` solves the problem of computing `f(S(0))` provided:
//!
//! 1. **`R` implements `D`** — every step of `R` either leaves the group's
//!    multiset unchanged or conserves `f` and strictly decreases `h`;
//! 2. **non-optimal states are escapable** — whenever `S ≠ S*`, some
//!    predicate `Q ∈ Q` enables a transition out of `S`;
//! 3. **local-to-global** — concurrent `D`-steps by disjoint groups compose
//!    into a `D`-step of their union.
//!
//! The original proofs are in a technical report we do not have; instead
//! this module provides checkers that *test* each obligation mechanically —
//! exhaustively on caller-supplied small models and statistically through
//! randomised sampling — which is how the test-suite and the experiment
//! harness audit every algorithm in `selfsim-algorithms`.

use rand::Rng;

use selfsim_env::FairnessSpec;
use selfsim_multiset::Multiset;

use crate::{RelationD, SelfSimilarSystem};

/// A violation discovered by one of the proof-obligation checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which obligation was violated (`"R-implements-D"`,
    /// `"escape"`, `"local-to-global"`).
    pub obligation: &'static str,
    /// Human-readable description of the counterexample.
    pub description: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.obligation, self.description)
    }
}

/// Report of a full proof-obligation audit of a system.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All violations found; empty means every check passed.
    pub violations: Vec<Violation>,
    /// How many individual checks were executed.
    pub checks_run: usize,
}

impl AuditReport {
    /// `true` when no violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
        self.checks_run += other.checks_run;
    }
}

/// **Obligation 1 (`R` implements `D`)** — runs the group step `trials`
/// times on every sample group state and checks each resulting transition
/// against `D`.
pub fn check_r_implements_d<S>(
    system: &SelfSimilarSystem<S>,
    sample_groups: &[Vec<S>],
    trials: usize,
    rng: &mut impl Rng,
) -> AuditReport
where
    S: Ord + Clone + std::fmt::Debug,
{
    let relation = system.relation();
    let mut report = AuditReport::default();
    for group in sample_groups {
        if group.is_empty() {
            continue;
        }
        for _ in 0..trials.max(1) {
            report.checks_run += 1;
            let after = system.group_step().step(group, rng);
            if after.len() != group.len() {
                report.violations.push(Violation {
                    obligation: "R-implements-D",
                    description: format!(
                        "step changed group size from {} to {} on {group:?}",
                        group.len(),
                        after.len()
                    ),
                });
                continue;
            }
            let before_ms: Multiset<S> = group.iter().cloned().collect();
            let after_ms: Multiset<S> = after.iter().cloned().collect();
            if let Some(reason) = relation.explain_violation(&before_ms, &after_ms) {
                report.violations.push(Violation {
                    obligation: "R-implements-D",
                    description: format!("{reason} (group {group:?} -> {after:?})"),
                });
            }
        }
    }
    report
}

/// **Obligation 2 (escape)** — for every sample *global* state that is not
/// yet optimal, checks that at least one fairness edge, when enabled, lets
/// the corresponding two-agent group change its state (within `attempts`
/// invocations of the possibly-randomised step).
///
/// This is the executable reading of (9): `S ≠ S* ⇒ ∃Q ∈ Q : S ⤳ Q` — if
/// the environment grants any one of the assumed edges, the agents can make
/// progress.  Larger groups only make escape easier, so checking pairs is
/// the conservative choice.
pub fn check_escape<S>(
    system: &SelfSimilarSystem<S>,
    sample_states: &[Vec<S>],
    attempts: usize,
    rng: &mut impl Rng,
) -> AuditReport
where
    S: Ord + Clone + std::fmt::Debug,
{
    let mut report = AuditReport::default();
    for state in sample_states {
        if state.len() != system.agent_count() {
            report.violations.push(Violation {
                obligation: "escape",
                description: format!(
                    "sample state has {} agents, system has {}",
                    state.len(),
                    system.agent_count()
                ),
            });
            continue;
        }
        if system.is_converged(state) {
            continue;
        }
        report.checks_run += 1;
        let mut escapable = false;
        'edges: for edge in system.fairness().edges() {
            let group = vec![
                state[edge.lo().index()].clone(),
                state[edge.hi().index()].clone(),
            ];
            let before_ms: Multiset<S> = group.iter().cloned().collect();
            for _ in 0..attempts.max(1) {
                let after = system.group_step().step(&group, rng);
                let after_ms: Multiset<S> = after.iter().cloned().collect();
                if after_ms != before_ms {
                    escapable = true;
                    break 'edges;
                }
            }
        }
        if !escapable {
            report.violations.push(Violation {
                obligation: "escape",
                description: format!(
                    "non-optimal state {state:?} cannot escape under any fairness edge of `{}`",
                    system.name()
                ),
            });
        }
    }
    report
}

/// **Obligation 3 (local-to-global)** — for every ordered pair of sample
/// group states `(B, C)`, lets each group take one step of `R` and checks
/// that the union transition is still related by `D`.
///
/// For super-idempotent `f` and summation-form `h` this must always pass
/// (the theorems of §3.4 and §3.5); for the counterexample objectives of the
/// paper (Figure 1) it fails, and the test-suite asserts both outcomes.
pub fn check_local_to_global<S>(
    system: &SelfSimilarSystem<S>,
    sample_groups: &[Vec<S>],
    rng: &mut impl Rng,
) -> AuditReport
where
    S: Ord + Clone + std::fmt::Debug,
{
    let relation = system.relation();
    let mut report = AuditReport::default();
    for b in sample_groups {
        for c in sample_groups {
            if b.is_empty() && c.is_empty() {
                continue;
            }
            report.checks_run += 1;
            let b_after = if b.is_empty() {
                Vec::new()
            } else {
                system.group_step().step(b, rng)
            };
            let c_after = if c.is_empty() {
                Vec::new()
            } else {
                system.group_step().step(c, rng)
            };
            let before: Multiset<S> = b.iter().chain(c.iter()).cloned().collect();
            let after: Multiset<S> = b_after.iter().chain(c_after.iter()).cloned().collect();
            if !relation.relates(&before, &after) {
                let reason = relation
                    .explain_violation(&before, &after)
                    .unwrap_or_else(|| "unknown".to_string());
                report.violations.push(Violation {
                    obligation: "local-to-global",
                    description: format!(
                        "union of concurrent steps is not a D-step: {reason} (B = {b:?}, C = {c:?})"
                    ),
                });
            }
        }
    }
    report
}

/// Checks that the fairness assumption the system declares is strong enough
/// for its own documentation: consensus-style instances need a *connected*
/// fairness graph, the sum-style instances a *complete* one.
///
/// This does not replace obligation 2 — it is a cheap structural sanity
/// check used by the constructors in `selfsim-algorithms`.
pub fn check_fairness_shape(fairness: &FairnessSpec, requires_complete: bool) -> AuditReport {
    let mut report = AuditReport {
        checks_run: 1,
        ..Default::default()
    };
    if requires_complete && !fairness.is_complete() {
        report.violations.push(Violation {
            obligation: "escape",
            description:
                "algorithm requires a complete fairness graph but the spec is not complete"
                    .to_string(),
        });
    } else if !fairness.is_connected() {
        report.violations.push(Violation {
            obligation: "escape",
            description: "fairness graph is not connected; isolated agents can never contribute"
                .to_string(),
        });
    }
    report
}

/// Runs all three obligations on a system, with sample group states derived
/// from the initial state: every pair and triple of initial agent states,
/// plus the full initial state, plus `extra_groups`.
pub fn audit_system<S>(
    system: &SelfSimilarSystem<S>,
    extra_groups: &[Vec<S>],
    trials: usize,
    rng: &mut impl Rng,
) -> AuditReport
where
    S: Ord + Clone + std::fmt::Debug,
{
    let initial = system.initial_state();
    let n = initial.len();
    let mut groups: Vec<Vec<S>> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            groups.push(vec![initial[i].clone(), initial[j].clone()]);
            for k in (j + 1)..n {
                groups.push(vec![
                    initial[i].clone(),
                    initial[j].clone(),
                    initial[k].clone(),
                ]);
            }
        }
    }
    groups.push(initial.clone());
    groups.extend(extra_groups.iter().cloned());

    let mut report = AuditReport::default();
    report.merge(check_r_implements_d(system, &groups, trials, rng));
    report.merge(check_local_to_global(system, &groups, rng));
    report.merge(check_escape(
        system,
        std::slice::from_ref(initial),
        trials.max(4),
        rng,
    ));
    report
}

/// Checks the **conservation law** (§3.2) and the **descent of `h`** along a
/// recorded sequence of global states: `f(S)` must equal `f(S(0))` at every
/// point, and `h` must never increase across an agent transition.
///
/// The runtime records one entry per agent transition, so this audits an
/// actual execution rather than sampled steps.
pub fn check_trace_invariants<S>(
    relation: &RelationD<impl crate::DistributedFunction<S>, impl crate::ObjectiveFunction<S>>,
    states: &[Multiset<S>],
) -> AuditReport
where
    S: Ord + Clone + std::fmt::Debug,
{
    let mut report = AuditReport::default();
    if states.is_empty() {
        return report;
    }
    let target = relation.function().apply(&states[0]);
    for (i, s) in states.iter().enumerate() {
        report.checks_run += 1;
        if relation.function().apply(s) != target {
            report.violations.push(Violation {
                obligation: "R-implements-D",
                description: format!("conservation law violated at position {i}: f(S) != f(S(0))"),
            });
        }
    }
    for (i, w) in states.windows(2).enumerate() {
        report.checks_run += 1;
        if !relation.relates(&w[0], &w[1]) {
            report.violations.push(Violation {
                obligation: "R-implements-D",
                description: format!(
                    "transition {i} -> {} is not a D-step (h increased or f changed)",
                    i + 1
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsensusFunction, FnGroupStep, SummationObjective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfsim_env::Topology;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn min_system(initial: Vec<i64>) -> SelfSimilarSystem<i64> {
        let n = initial.len();
        SelfSimilarSystem::new(
            "minimum",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            FnGroupStep::new(
                "adopt-min",
                |states: &[i64], _rng: &mut dyn rand::RngCore| {
                    let m = states.iter().copied().min().unwrap_or(0);
                    vec![m; states.len()]
                },
            ),
            initial,
            FairnessSpec::for_graph(&Topology::line(n)),
        )
    }

    fn buggy_system(initial: Vec<i64>) -> SelfSimilarSystem<i64> {
        // Adopt-max fails to conserve the minimum.
        let n = initial.len();
        SelfSimilarSystem::new(
            "buggy-minimum",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            FnGroupStep::new(
                "adopt-max",
                |states: &[i64], _rng: &mut dyn rand::RngCore| {
                    let m = states.iter().copied().max().unwrap_or(0);
                    vec![m; states.len()]
                },
            ),
            initial,
            FairnessSpec::for_graph(&Topology::line(n)),
        )
    }

    #[test]
    fn correct_algorithm_passes_full_audit() {
        let sys = min_system(vec![3, 5, 3, 7]);
        let report = audit_system(&sys, &[], 3, &mut rng());
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.checks_run > 0);
    }

    #[test]
    fn buggy_algorithm_fails_r_implements_d() {
        let sys = buggy_system(vec![3, 5, 3, 7]);
        let report = check_r_implements_d(&sys, &[vec![3, 5]], 1, &mut rng());
        assert!(!report.passed());
        assert_eq!(report.violations[0].obligation, "R-implements-D");
        assert!(report.violations[0].to_string().contains("R-implements-D"));
    }

    #[test]
    fn stuck_algorithm_fails_escape() {
        // The identity step can never leave a non-optimal state.
        let sys = SelfSimilarSystem::new(
            "stuck",
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
            crate::IdentityStep,
            vec![3, 5],
            FairnessSpec::for_graph(&Topology::line(2)),
        );
        let report = check_escape(&sys, &[vec![3, 5]], 3, &mut rng());
        assert!(!report.passed());
        assert_eq!(report.violations[0].obligation, "escape");
    }

    #[test]
    fn escape_skips_converged_states_and_rejects_bad_sizes() {
        let sys = min_system(vec![3, 5]);
        let report = check_escape(&sys, &[vec![3, 3]], 2, &mut rng());
        assert!(report.passed());
        assert_eq!(report.checks_run, 0);
        let report = check_escape(&sys, &[vec![1, 2, 3]], 2, &mut rng());
        assert!(!report.passed());
    }

    #[test]
    fn local_to_global_holds_for_summation_objective() {
        let sys = min_system(vec![3, 5, 3, 7]);
        let groups = vec![vec![3i64, 5], vec![3, 7], vec![5, 7, 9]];
        let report = check_local_to_global(&sys, &groups, &mut rng());
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn fairness_shape_checks() {
        assert!(check_fairness_shape(&FairnessSpec::complete(4), true).passed());
        assert!(!check_fairness_shape(&FairnessSpec::line(4), true).passed());
        assert!(check_fairness_shape(&FairnessSpec::line(4), false).passed());
        let sparse = FairnessSpec::for_edges(
            4,
            [selfsim_env::Edge::new(
                selfsim_env::AgentId(0),
                selfsim_env::AgentId(1),
            )],
        );
        assert!(!check_fairness_shape(&sparse, false).passed());
    }

    #[test]
    fn trace_invariants_accept_valid_runs_and_reject_invalid_ones() {
        let relation = RelationD::new(
            ConsensusFunction::new("min", |s: &Multiset<i64>| {
                s.min_value().copied().unwrap_or(0)
            }),
            SummationObjective::new("sum", |v: &i64| *v as f64),
        );
        let good: Vec<Multiset<i64>> = vec![
            [3, 5, 7].into(),
            [3, 5, 5].into(),
            [3, 3, 3].into(),
            [3, 3, 3].into(),
        ];
        assert!(check_trace_invariants(&relation, &good).passed());

        let conservation_broken: Vec<Multiset<i64>> = vec![[3, 5].into(), [4, 5].into()];
        let report = check_trace_invariants(&relation, &conservation_broken);
        assert!(!report.passed());

        let objective_increased: Vec<Multiset<i64>> = vec![[3, 5].into(), [3, 6].into()];
        assert!(!check_trace_invariants(&relation, &objective_increased).passed());

        let empty: Vec<Multiset<i64>> = Vec::new();
        assert!(check_trace_invariants(&relation, &empty).passed());
    }

    #[test]
    fn audit_report_merges() {
        let mut a = AuditReport {
            violations: vec![],
            checks_run: 2,
        };
        let b = AuditReport {
            violations: vec![Violation {
                obligation: "escape",
                description: "x".into(),
            }],
            checks_run: 3,
        };
        a.merge(b);
        assert_eq!(a.checks_run, 5);
        assert!(!a.passed());
    }
}
