//! `detlint::allow` pragma parsing.
//!
//! A sanctioned violation is exempted *in place*, with a reason the
//! reviewer can read:
//!
//! ```text
//! // detlint::allow(wall-clock, reason = "sampled pipeline stage timer")
//! let t0 = sampled.then(Instant::now);
//! ```
//!
//! Grammar: `detlint::allow(<rule>, reason = "<non-empty>")` inside a
//! non-doc comment.  `detlint::allow-file(...)` exempts the whole file.
//! The reason is *required*: a pragma with a missing, empty or
//! whitespace-only reason — or an unknown rule name — is itself reported
//! as an `invalid-pragma` finding, so an exemption can never be quieter
//! than the violation it hides.
//!
//! Reach: a trailing pragma (sharing its line with code) covers that line
//! only.  A standalone pragma comment covers the next code line, skipping
//! over attribute-only lines in between — so the idiomatic stack
//!
//! ```text
//! // detlint::allow(wall-clock, reason = "…")
//! #[allow(clippy::disallowed_methods)] // same sanction as above
//! let t0 = sampled.then(Instant::now);
//! ```
//!
//! exempts the `let`, not the attribute.

use crate::lexer::Comment;
use crate::rules::Rule;

/// One parsed `detlint::allow` / `detlint::allow-file` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    pub rule: Rule,
    /// `detlint::allow-file`: exempt the rule for the entire file.
    pub file_wide: bool,
    /// Line the pragma comment starts on.
    pub line: u32,
}

/// A malformed pragma, reported as an `invalid-pragma` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// Extracts every pragma from a file's comments.  Doc comments are
/// skipped: a pragma in rustdoc is documentation, not an exemption.
pub fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        if comment.doc {
            continue;
        }
        let mut rest = comment.text.as_str();
        while let Some(at) = rest.find("detlint::allow") {
            rest = &rest[at + "detlint::allow".len()..];
            let file_wide = rest.starts_with("-file");
            if file_wide {
                rest = &rest["-file".len()..];
            }
            match parse_one(rest, file_wide, comment.line) {
                Ok((pragma, tail)) => {
                    pragmas.push(pragma);
                    rest = tail;
                }
                Err(message) => {
                    errors.push(PragmaError {
                        line: comment.line,
                        message,
                    });
                    break;
                }
            }
        }
    }
    (pragmas, errors)
}

/// Parses `(<rule>, reason = "…")` at the head of `rest`, returning the
/// pragma and the unconsumed tail.
fn parse_one(rest: &str, file_wide: bool, line: u32) -> Result<(Pragma, &str), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `detlint::allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `detlint::allow(…)` pragma".to_string());
    };
    let (args, tail) = (&rest[..close], &rest[close + 1..]);
    let (rule_name, reason_part) = match args.split_once(',') {
        Some((rule, reason)) => (rule.trim(), Some(reason.trim())),
        None => (args.trim(), None),
    };
    let Some(rule) = Rule::from_id(rule_name) else {
        return Err(format!(
            "unknown rule `{rule_name}` (see `selfsim-detlint --rules` for the catalogue)"
        ));
    };
    let Some(reason_part) = reason_part else {
        return Err(format!(
            "pragma for `{rule_name}` is missing the required `reason = \"…\"`"
        ));
    };
    let Some(reason) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
    else {
        return Err(format!(
            "pragma for `{rule_name}`: expected `reason = \"…\"`, got `{reason_part}`"
        ));
    };
    if reason.trim().is_empty() {
        return Err(format!(
            "pragma for `{rule_name}` has an empty reason — say why the site is sanctioned"
        ));
    }
    Ok((
        Pragma {
            rule,
            file_wide,
            line,
        },
        tail,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Vec<Comment> {
        vec![Comment {
            line: 3,
            end_line: 3,
            text: text.to_string(),
            doc: false,
        }]
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (pragmas, errors) = parse_pragmas(&comment(
            "// detlint::allow(wall-clock, reason = \"CLI timer\")",
        ));
        assert!(errors.is_empty());
        assert_eq!(
            pragmas,
            [Pragma {
                rule: Rule::WallClock,
                file_wide: false,
                line: 3
            }]
        );
    }

    #[test]
    fn file_wide_variant_parses() {
        let (pragmas, errors) = parse_pragmas(&comment(
            "// detlint::allow-file(stray-print, reason = \"this is the CLI surface\")",
        ));
        assert!(errors.is_empty());
        assert!(pragmas[0].file_wide);
        assert_eq!(pragmas[0].rule, Rule::StrayPrint);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let (pragmas, errors) = parse_pragmas(&comment("// detlint::allow(wall-clock)"));
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("missing the required"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let (pragmas, errors) =
            parse_pragmas(&comment("// detlint::allow(ambient-rng, reason = \"  \")"));
        assert!(pragmas.is_empty());
        assert!(errors[0].message.contains("empty reason"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (pragmas, errors) =
            parse_pragmas(&comment("// detlint::allow(no-such-rule, reason = \"x\")"));
        assert!(pragmas.is_empty());
        assert!(errors[0].message.contains("unknown rule `no-such-rule`"));
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let mut comments = comment("/// detlint::allow(wall-clock)");
        comments[0].doc = true;
        let (pragmas, errors) = parse_pragmas(&comments);
        assert!(pragmas.is_empty() && errors.is_empty());
    }
}
