//! The `selfsim-detlint` CLI.
//!
//! ```text
//! cargo run -p selfsim-detlint -- --workspace            # lint the tree
//! cargo run -p selfsim-detlint -- --format json FILE…    # lint files
//! cargo run -p selfsim-detlint -- --rules                # rule catalogue
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/configuration error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use selfsim_detlint::{lint_files, lint_named_sources, lint_workspace, Rule};

const USAGE: &str = "\
selfsim-detlint — static determinism-contract lint

USAGE:
    selfsim-detlint --workspace [--root DIR] [--format human|json]
    selfsim-detlint [--format human|json] FILE.rs…
    selfsim-detlint --bless [--root DIR]
    selfsim-detlint --rules

OPTIONS:
    --workspace        lint the workspace (root src/ + every crates/*/src/),
                       applying detlint.toml scoping and the unwrap/panic budgets
    --root DIR         workspace root (default: current directory)
    --format FMT       `human` (default) or `json`
    --bless            re-lint fixtures/violations.rs and rewrite the golden
                       JSON at crates/detlint/tests/golden_violations.json
    --rules            print the rule catalogue and exit
    -h, --help         this help

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
";

/// Root-relative fixture/golden paths `--bless` reads and writes.
const FIXTURE: &str = "crates/detlint/fixtures/violations.rs";
const GOLDEN: &str = "crates/detlint/tests/golden_violations.json";

struct Args {
    workspace: bool,
    root: PathBuf,
    json: bool,
    rules: bool,
    bless: bool,
    files: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        rules: false,
        bless: false,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--rules" => args.rules = true,
            "--bless" => args.bless = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                match it
                    .next()
                    .ok_or_else(|| "--format needs `human` or `json`".to_string())?
                    .as_str()
                {
                    "human" => args.json = false,
                    "json" => args.json = true,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.rules && !args.workspace && !args.bless && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace, --bless or file paths".to_string());
    }
    if args.workspace && !args.files.is_empty() {
        return Err("--workspace and explicit files are mutually exclusive".to_string());
    }
    if args.bless && (args.workspace || !args.files.is_empty()) {
        return Err("--bless takes no other lint targets".to_string());
    }
    Ok(args)
}

/// Re-blesses the golden JSON: lints the violation fixture exactly the
/// way explicit-file mode does (root-relative label, so the report is
/// position-independent) and rewrites the committed golden file.
fn bless(root: &Path) -> Result<(), String> {
    let fixture_path = root.join(FIXTURE);
    let src = std::fs::read_to_string(&fixture_path)
        .map_err(|e| format!("cannot read {}: {e}", fixture_path.display()))?;
    let report = lint_named_sources(&[(FIXTURE.to_string(), src)]);
    let golden_path = root.join(GOLDEN);
    let mut json = report.render_json();
    json.push('\n');
    std::fs::write(&golden_path, &json)
        .map_err(|e| format!("cannot write {}: {e}", golden_path.display()))?;
    println!(
        "blessed {} ({} findings from {})",
        GOLDEN,
        report.findings.len(),
        FIXTURE
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.rules {
        for rule in Rule::ALL {
            println!("{:<22} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    if args.bless {
        return match bless(&args.root) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        };
    }

    let result = if args.workspace {
        lint_workspace(&args.root)
    } else {
        lint_files(&args.files)
    };
    let report = match result {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
