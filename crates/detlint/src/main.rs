//! The `selfsim-detlint` CLI.
//!
//! ```text
//! cargo run -p selfsim-detlint -- --workspace            # lint the tree
//! cargo run -p selfsim-detlint -- --format json FILE…    # lint files
//! cargo run -p selfsim-detlint -- --rules                # rule catalogue
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use selfsim_detlint::{lint_files, lint_workspace, Rule};

const USAGE: &str = "\
selfsim-detlint — static determinism-contract lint

USAGE:
    selfsim-detlint --workspace [--root DIR] [--format human|json]
    selfsim-detlint [--format human|json] FILE.rs…
    selfsim-detlint --rules

OPTIONS:
    --workspace        lint the workspace (root src/ + every crates/*/src/),
                       applying detlint.toml scoping and unwrap budgets
    --root DIR         workspace root (default: current directory)
    --format FMT       `human` (default) or `json`
    --rules            print the rule catalogue and exit
    -h, --help         this help

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
";

struct Args {
    workspace: bool,
    root: PathBuf,
    json: bool,
    rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        rules: false,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--rules" => args.rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                match it
                    .next()
                    .ok_or_else(|| "--format needs `human` or `json`".to_string())?
                    .as_str()
                {
                    "human" => args.json = false,
                    "json" => args.json = true,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths".to_string());
    }
    if args.workspace && !args.files.is_empty() {
        return Err("--workspace and explicit files are mutually exclusive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.rules {
        for rule in Rule::ALL {
            println!("{:<22} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let result = if args.workspace {
        lint_workspace(&args.root)
    } else {
        lint_files(&args.files)
    };
    let report = match result {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
