//! The workspace symbol graph behind the cross-file rules.
//!
//! [`extract`] distills one file's [`crate::parser::ItemTree`] into a
//! [`FileSymbols`] fragment — the enums, `label()`/`parse_label()` body
//! idents, `*Factory` impls, registrar bodies and per-fn lock sequences
//! the graph rules need, plus the pragma suppressions that apply to
//! them.  A [`Graph`] merges the fragments for one scope (a crate in
//! `--workspace` mode, a single file in explicit-file mode) and emits:
//!
//! * `registry-label-drift` — an enum with a `label()`/`parse_label()`
//!   pair must mention every variant in *both* bodies (the compiler only
//!   enforces the emit half; the parse half has a catch-all arm), and
//!   every `*Factory` impl must appear in a `builtin()`/`builtin_ref()`
//!   registration body when the scope has one;
//! * `lock-order` — two fns that acquire the same two locks in opposite
//!   orders are a deadlock waiting for the right interleaving.
//!
//! The checks are name-based, like everything in this lint: two Mutexes
//! that share a field name across files in one crate are treated as the
//! same lock, which is exactly the conservatism a deadlock lint wants.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::parser::ItemTree;
use crate::report::Finding;
use crate::rules::{FileContext, Rule};

/// A pragma's reach, carried out of `check_file` so graph findings can
/// honour `detlint::allow` like file-scoped findings do.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: Rule,
    pub file_wide: bool,
    /// Inclusive line range (ignored when `file_wide`).
    pub lo: u32,
    pub hi: u32,
}

/// One enum declaration visible to the drift rule.
#[derive(Debug, Clone)]
pub struct EnumSym {
    pub name: String,
    /// `(variant, line)` in declaration order.
    pub variants: Vec<(String, u32)>,
    pub file: String,
}

/// One `impl SomethingFactory for Type` site.
#[derive(Debug, Clone)]
pub struct FactoryImpl {
    pub type_name: String,
    pub trait_name: String,
    pub file: String,
    pub line: u32,
}

/// One fn's lock-acquisition order (distinct lock names, first touch).
#[derive(Debug, Clone)]
pub struct FnLocks {
    pub fn_name: String,
    pub file: String,
    pub line: u32,
    /// `(lock name, line of first acquisition)` in source order.
    pub seq: Vec<(String, u32)>,
}

/// Everything one file contributes to the graph scope.
#[derive(Debug, Default)]
pub struct FileSymbols {
    pub file: String,
    pub enums: Vec<EnumSym>,
    /// Enum/type name → idents appearing in its `label()` body.
    pub label_idents: BTreeMap<String, BTreeSet<String>>,
    /// Enum/type name → idents appearing in its `parse_label()` body.
    pub parse_idents: BTreeMap<String, BTreeSet<String>>,
    pub factory_impls: Vec<FactoryImpl>,
    /// Idents inside `builtin()` / `builtin_ref()` fn bodies.
    pub registrar_idents: BTreeSet<String>,
    /// Whether this file declares a registrar fn at all.
    pub has_registrar: bool,
    pub fn_locks: Vec<FnLocks>,
    pub suppressions: Vec<Suppression>,
}

/// Keywords that can directly precede a `.lock()` receiver position but
/// never name a lock.
const NON_LOCK_IDENTS: &[&str] = &["self", "return", "await", "else", "match", "in"];

/// Distills the graph-relevant symbols out of one parsed file.
pub fn extract(
    file: &str,
    toks: &[Tok],
    tree: &ItemTree,
    ctx: &FileContext,
    suppressions: Vec<Suppression>,
) -> FileSymbols {
    let mut sym = FileSymbols {
        file: file.to_string(),
        suppressions,
        ..FileSymbols::default()
    };
    if ctx.is_test_code {
        // Integration tests and examples re-implement traits freely;
        // their symbols must not pollute the library graph.
        return sym;
    }

    for e in &tree.enums {
        if !e.in_test {
            sym.enums.push(EnumSym {
                name: e.name.clone(),
                variants: e.variants.clone(),
                file: file.to_string(),
            });
        }
    }

    for f in &tree.fns {
        if f.in_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let body_idents = || -> BTreeSet<String> {
            toks[lo..hi]
                .iter()
                .filter_map(|t| t.ident().map(str::to_string))
                .collect()
        };
        match (f.name.as_str(), &f.impl_type) {
            ("label", Some(ty)) => {
                sym.label_idents
                    .entry(ty.clone())
                    .or_default()
                    .extend(body_idents());
            }
            ("parse_label", Some(ty)) => {
                sym.parse_idents
                    .entry(ty.clone())
                    .or_default()
                    .extend(body_idents());
            }
            ("builtin" | "builtin_ref", _) => {
                sym.has_registrar = true;
                sym.registrar_idents.extend(body_idents());
            }
            _ => {}
        }
        if let Some(locks) = lock_sequence(toks, (lo, hi)) {
            sym.fn_locks.push(FnLocks {
                fn_name: f.name.clone(),
                file: file.to_string(),
                line: f.line,
                seq: locks,
            });
        }
    }

    for im in &tree.impls {
        if im.in_test {
            continue;
        }
        if let Some(tr) = &im.trait_name {
            if tr.ends_with("Factory") {
                sym.factory_impls.push(FactoryImpl {
                    type_name: im.type_name.clone(),
                    trait_name: tr.clone(),
                    file: file.to_string(),
                    line: im.line,
                });
            }
        }
    }
    sym
}

/// The distinct-lock acquisition order of one fn body: every
/// `name.lock()` / `name.lock().expect(…)` site, first touch only.
/// Returns `None` unless at least two distinct locks are acquired —
/// single-lock fns cannot contribute to an ordering cycle.
fn lock_sequence(toks: &[Tok], (lo, hi): (usize, usize)) -> Option<Vec<(String, u32)>> {
    let mut seq: Vec<(String, u32)> = Vec::new();
    for i in lo..hi.min(toks.len()) {
        if toks[i].ident() != Some("lock")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            || i == 0
            || !toks[i - 1].is_punct('.')
        {
            continue;
        }
        let Some(name) = i.checked_sub(2).and_then(|k| toks[k].ident()) else {
            continue; // `stdout().lock()` and friends: receiver isn't a field
        };
        if NON_LOCK_IDENTS.contains(&name) {
            continue;
        }
        if !seq.iter().any(|(n, _)| n == name) {
            seq.push((name.to_string(), toks[i].line));
        }
    }
    (seq.len() >= 2).then_some(seq)
}

/// The merged symbol graph for one lint scope.
#[derive(Debug, Default)]
pub struct Graph {
    files: Vec<FileSymbols>,
}

impl Graph {
    pub fn add(&mut self, sym: FileSymbols) {
        self.files.push(sym);
    }

    /// Runs the cross-file rules over the merged scope.  Findings are
    /// already pragma-filtered; the caller only sorts.
    pub fn findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        self.drift_findings(&mut out);
        self.lock_order_findings(&mut out);
        out.retain(|f| !self.suppressed(f));
        out
    }

    fn suppressed(&self, finding: &Finding) -> bool {
        self.files.iter().any(|sym| {
            sym.file == finding.file
                && sym.suppressions.iter().any(|s| {
                    s.rule == finding.rule && (s.file_wide || (s.lo..=s.hi).contains(&finding.line))
                })
        })
    }

    fn drift_findings(&self, out: &mut Vec<Finding>) {
        // Merge the label/parse bodies across the scope (an impl may
        // live in a different file than its enum).
        let mut label: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let mut parse: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for sym in &self.files {
            for (ty, idents) in &sym.label_idents {
                label
                    .entry(ty)
                    .or_default()
                    .extend(idents.iter().map(String::as_str));
            }
            for (ty, idents) in &sym.parse_idents {
                parse
                    .entry(ty)
                    .or_default()
                    .extend(idents.iter().map(String::as_str));
            }
        }
        for sym in &self.files {
            for e in &sym.enums {
                // Only enums with the full round-trip pair are bound by
                // the grammar contract.
                let (Some(emit), Some(accept)) =
                    (label.get(e.name.as_str()), parse.get(e.name.as_str()))
                else {
                    continue;
                };
                for (variant, line) in &e.variants {
                    if !emit.contains(variant.as_str()) {
                        out.push(Finding {
                            rule: Rule::RegistryLabelDrift,
                            file: e.file.clone(),
                            line: *line,
                            col: 1,
                            message: format!(
                                "`{}::{variant}` never appears in `label()` — the variant \
                                 cannot emit a round-trippable label",
                                e.name
                            ),
                        });
                    }
                    if !accept.contains(variant.as_str()) {
                        out.push(Finding {
                            rule: Rule::RegistryLabelDrift,
                            file: e.file.clone(),
                            line: *line,
                            col: 1,
                            message: format!(
                                "`{}::{variant}` never appears in `parse_label()` — its label \
                                 hits the catch-all arm and will not round-trip",
                                e.name
                            ),
                        });
                    }
                }
            }
        }

        // Factory registration: only binding when the scope registers
        // builtins at all (an example implementing a custom factory has
        // no registrar and owes nothing).
        if self.files.iter().any(|s| s.has_registrar) {
            let registered: BTreeSet<&str> = self
                .files
                .iter()
                .flat_map(|s| s.registrar_idents.iter().map(String::as_str))
                .collect();
            for sym in &self.files {
                for fi in &sym.factory_impls {
                    if !registered.contains(fi.type_name.as_str()) {
                        out.push(Finding {
                            rule: Rule::RegistryLabelDrift,
                            file: fi.file.clone(),
                            line: fi.line,
                            col: 1,
                            message: format!(
                                "`{}` implements `{}` but is not registered in any \
                                 `builtin()`/`builtin_ref()` list — its label cannot parse",
                                fi.type_name, fi.trait_name
                            ),
                        });
                    }
                }
            }
        }
    }

    fn lock_order_findings(&self, out: &mut Vec<Finding>) {
        // All (a, b) orderings observed, with the first fn exhibiting
        // each — deterministic because files and fns arrive sorted.
        let mut first: BTreeMap<(&str, &str), &FnLocks> = BTreeMap::new();
        for sym in &self.files {
            for fl in &sym.fn_locks {
                for (i, (a, _)) in fl.seq.iter().enumerate() {
                    for (b, _) in &fl.seq[i + 1..] {
                        first.entry((a, b)).or_insert(fl);
                    }
                }
            }
        }
        let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
        for (&(a, b), &fl) in &first {
            if a >= b || reported.contains(&(a, b)) {
                continue;
            }
            let Some(&rev) = first.get(&(b, a)) else {
                continue;
            };
            reported.insert((a, b));
            // Anchor at the later of the two fns in report order, the
            // one that "disagrees" with the first occurrence.
            let (anchor, other) = if (&fl.file, fl.line) <= (&rev.file, rev.line) {
                (rev, fl)
            } else {
                (fl, rev)
            };
            let (anchor_first, anchor_second) = if anchor.seq.iter().position(|(n, _)| n == a)
                < anchor.seq.iter().position(|(n, _)| n == b)
            {
                (a, b)
            } else {
                (b, a)
            };
            out.push(Finding {
                rule: Rule::LockOrder,
                file: anchor.file.clone(),
                line: anchor.line,
                col: 1,
                message: format!(
                    "`{}` acquires `{anchor_first}` then `{anchor_second}`, but `{}` ({}:{}) \
                     acquires them in the opposite order — a deadlock under the right \
                     interleaving; pick one order",
                    anchor.fn_name, other.fn_name, other.file, other.line
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn symbols(file: &str, src: &str) -> FileSymbols {
        let lexed = lex(src);
        let tree = ItemTree::parse(&lexed.toks);
        extract(
            file,
            &lexed.toks,
            &tree,
            &FileContext::default(),
            Vec::new(),
        )
    }

    fn graph_of(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let mut g = Graph::default();
        for (file, src) in srcs {
            g.add(symbols(file, src));
        }
        g.findings()
    }

    const DRIFTED_ENUM: &str = "pub enum Speed { Slow, Fast, Turbo }\n\
         impl Speed {\n\
           pub fn label(&self) -> String { match *self { Speed::Slow => s(), Speed::Fast => f(), Speed::Turbo => t() } }\n\
           pub fn parse_label(s: &str) -> Option<Speed> {\n\
             match s { \"slow\" => Some(Speed::Slow), \"fast\" => Some(Speed::Fast), _ => None }\n\
           }\n\
         }\n";

    #[test]
    fn missing_parse_arm_is_drift() {
        let findings = graph_of(&[("speed.rs", DRIFTED_ENUM)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::RegistryLabelDrift);
        assert_eq!(findings[0].line, 1); // Turbo's declaration line
        assert!(findings[0].message.contains("Turbo"));
        assert!(findings[0].message.contains("parse_label"));
    }

    #[test]
    fn enums_without_the_label_pair_owe_nothing() {
        let findings = graph_of(&[(
            "plain.rs",
            "pub enum State { Idle, Busy }\n\
             impl State { pub fn label(&self) -> &str { \"idle\" } }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn enum_and_impl_may_live_in_different_files() {
        let findings = graph_of(&[
            ("def.rs", "pub enum Speed { Slow, Fast, Turbo }\n"),
            (
                "imp.rs",
                "impl Speed {\n\
                   pub fn label(&self) -> String { match *self { Speed::Slow => a(), Speed::Fast => b(), Speed::Turbo => c() } }\n\
                   pub fn parse_label(s: &str) -> Option<Speed> { match s { \"slow\" => Some(Speed::Slow), \"fast\" => Some(Speed::Fast), _ => None } }\n\
                 }\n",
            ),
        ]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "def.rs");
    }

    #[test]
    fn unregistered_factory_is_drift_only_when_a_registrar_exists() {
        let factory = "pub struct LoneFactory;\n\
                       impl EnvFactory for LoneFactory { fn family(&self) -> &str { \"lone\" } }\n";
        // No registrar in scope: an example owes nothing.
        assert!(graph_of(&[("example.rs", factory)]).is_empty());
        // With a registrar that forgot it: drift.
        let registrar =
            "pub fn builtin_ref() -> Vec<Box<dyn EnvFactory>> { vec![Box::new(OtherFactory)] }\n";
        let findings = graph_of(&[("f.rs", factory), ("reg.rs", registrar)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("LoneFactory"));
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn macro_generated_factories_do_not_owe_registration() {
        let findings = graph_of(&[(
            "dim.rs",
            "macro_rules! gen { ($n:ident) => { impl TopologyFactory for $n { } }; }\n\
             pub fn builtin() -> Vec<Box<dyn TopologyFactory>> { vec![] }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn opposite_lock_orders_across_fns_are_flagged() {
        let findings = graph_of(&[(
            "locks.rs",
            "fn ab(s: &S) { let _a = s.alpha.lock().expect(\"a\"); let _b = s.beta.lock().expect(\"b\"); }\n\
             fn ba(s: &S) { let _b = s.beta.lock().expect(\"b\"); let _a = s.alpha.lock().expect(\"a\"); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::LockOrder);
        assert_eq!(findings[0].line, 2); // `ba`, the later fn
        assert!(findings[0].message.contains("alpha"));
        assert!(findings[0].message.contains("beta"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let findings = graph_of(&[(
            "locks.rs",
            "fn one(s: &S) { s.alpha.lock().expect(\"a\"); s.beta.lock().expect(\"b\"); }\n\
             fn two(s: &S) { s.alpha.lock().expect(\"a\"); s.beta.lock().expect(\"b\"); }\n\
             fn solo(s: &S) { s.beta.lock().expect(\"b\"); }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppressions_reach_graph_findings() {
        let lexed = lex(DRIFTED_ENUM);
        let tree = ItemTree::parse(&lexed.toks);
        let sym = extract(
            "speed.rs",
            &lexed.toks,
            &tree,
            &FileContext::default(),
            vec![Suppression {
                rule: Rule::RegistryLabelDrift,
                file_wide: true,
                lo: 0,
                hi: 0,
            }],
        );
        let mut g = Graph::default();
        g.add(sym);
        assert!(g.findings().is_empty());
    }

    #[test]
    fn test_code_contributes_no_symbols() {
        let lexed = lex(DRIFTED_ENUM);
        let tree = ItemTree::parse(&lexed.toks);
        let ctx = FileContext {
            is_test_code: true,
            ..FileContext::default()
        };
        let sym = extract("t.rs", &lexed.toks, &tree, &ctx, Vec::new());
        assert!(sym.enums.is_empty());
        assert!(sym.label_idents.is_empty());
    }
}
