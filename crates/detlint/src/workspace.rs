//! Workspace discovery and the two lint drivers.
//!
//! `--workspace` walks the root package's `src/` plus every
//! `crates/*/src/` tree (sorted, so reports are byte-stable), applies the
//! per-crate scoping from `detlint.toml`, folds `.unwrap()` and
//! panic-surface counts into the two ratchets, and runs the graph rules
//! (`registry-label-drift`, `lock-order`) over a per-crate symbol graph.
//! Explicit-file mode lints the arguments with every line rule, a
//! per-file graph scope and no crate attribution — that is what the CI
//! negative self-test runs over the committed violation fixture, and
//! what the CI `examples/`/`tests/` sweep uses.
//!
//! Scope notes: crate-local `tests/`, `examples/`, `benches/` and
//! `vendor/` are not walked — the contract binds the *library and
//! binary* code that produces record bytes.  `src/main.rs` and
//! `src/bin/**` are scanned, but `stray-print` and `panic-ratchet` do
//! not apply there (a binary owns its stdio and its exits).  In
//! explicit-file mode, paths under `examples/` count as binary roots and
//! paths under `tests/` as test code.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::graph::Graph;
use crate::report::{Finding, Report, UnwrapTally};
use crate::rules::{check_file, FileContext, Rule};

/// Lints the whole workspace rooted at `root` (the directory holding
/// `Cargo.toml`, `detlint.toml` and `crates/`).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let config_path = root.join("detlint.toml");
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
        Config::parse(&text)?
    } else {
        Config::default()
    };

    let mut report = Report::default();
    let mut unwrap_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut panic_counts: BTreeMap<String, u64> = BTreeMap::new();

    for (krate, src_dir) in discover_crates(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", src_dir.display()))?;
        files.sort();
        let unwraps = unwrap_counts.entry(krate.clone()).or_insert(0);
        let panics = panic_counts.entry(krate.clone()).or_insert(0);
        // The graph scope is the crate: lock names and label grammars
        // are crate-local contracts.
        let mut graph = Graph::default();
        for path in files {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let label = rel_label(root, &path);
            let ctx = FileContext {
                is_lib_rs: path == src_dir.join("lib.rs"),
                is_binary_root: is_binary_root(&src_dir, &path),
                wall_clock_exempt: config.wall_clock_exempt_crates.contains(&krate),
                unordered_iter_scoped: config.unordered_iter_crates.contains(&krate),
                is_test_code: false,
            };
            let file_report = check_file(&label, &src, &ctx);
            report.findings.extend(file_report.findings);
            *unwraps += file_report.unwrap_count;
            *panics += file_report.panic_count;
            graph.add(file_report.symbols);
            report.files_scanned += 1;
        }
        report.findings.extend(graph.findings());
    }

    ratchet(
        &config.unwrap_budget,
        &unwrap_counts,
        RatchetKind::Unwrap,
        &mut report,
    );
    ratchet(
        &config.panic_budget,
        &panic_counts,
        RatchetKind::Panic,
        &mut report,
    );
    report.sort();
    Ok(report)
}

/// Lints explicit file paths (no config, no crate attribution).
pub fn lint_files(paths: &[PathBuf]) -> Result<Report, String> {
    let mut sources = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push((path.to_string_lossy().replace('\\', "/"), src));
    }
    Ok(lint_named_sources(&sources))
}

/// The explicit-mode driver proper, shared by [`lint_files`], the
/// `--bless` flag and the golden test: lints `(label, source)` pairs,
/// each file its own graph scope, contexts derived from the label.
pub fn lint_named_sources(sources: &[(String, String)]) -> Report {
    let mut report = Report::default();
    for (name, src) in sources {
        let ctx = context_for_label(name);
        let file_report = check_file(name, src, &ctx);
        report.findings.extend(file_report.findings);
        let mut graph = Graph::default();
        graph.add(file_report.symbols);
        report.findings.extend(graph.findings());
        // No crate attribution here, so the panic ratchet binds per
        // file: any library-code panic surface must be budgeted, and
        // explicit mode has no budgets to give.
        if file_report.panic_count > 0 {
            report.findings.push(Finding {
                rule: Rule::PanicRatchet,
                file: name.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "{} panic-surface site{} (`panic!`/`unreachable!`/`[idx]` indexing) in \
                     library code — return errors instead, or budget the crate under \
                     `[panic_budget]` in detlint.toml",
                    file_report.panic_count,
                    if file_report.panic_count == 1 {
                        ""
                    } else {
                        "s"
                    },
                ),
            });
        }
        report.files_scanned += 1;
    }
    report.sort();
    report
}

/// How explicit-file mode classifies a path: `examples/` are binaries
/// (they own their stdio), `tests/` are test code (prints, fixed seeds
/// and panics are their own business).
fn context_for_label(name: &str) -> FileContext {
    FileContext {
        is_lib_rs: name.ends_with("src/lib.rs"),
        is_binary_root: name.ends_with("src/main.rs")
            || name.contains("/bin/")
            || name.starts_with("examples/")
            || name.contains("/examples/"),
        wall_clock_exempt: false,
        unordered_iter_scoped: true,
        is_test_code: name.starts_with("tests/") || name.contains("/tests/"),
    }
}

/// Which budget a [`ratchet`] pass enforces.
#[derive(Clone, Copy)]
enum RatchetKind {
    Unwrap,
    Panic,
}

impl RatchetKind {
    fn rule(self) -> Rule {
        match self {
            RatchetKind::Unwrap => Rule::UnwrapRatchet,
            RatchetKind::Panic => Rule::PanicRatchet,
        }
    }

    fn what(self) -> &'static str {
        match self {
            RatchetKind::Unwrap => "`.unwrap()` calls",
            RatchetKind::Panic => "panic-surface sites (`panic!`/`unreachable!`/`[idx]`)",
        }
    }

    fn fix(self) -> &'static str {
        match self {
            RatchetKind::Unwrap => "convert to `.expect(\"…\")` with a message",
            RatchetKind::Panic => "return errors or document the invariant and re-budget",
        }
    }

    fn section(self) -> &'static str {
        match self {
            RatchetKind::Unwrap => "unwrap_budget",
            RatchetKind::Panic => "panic_budget",
        }
    }
}

/// Applies one budget ratchet: over budget or unbudgeted-with-sites is a
/// finding; headroom is a note inviting a ratchet-down.
fn ratchet(
    budgets: &BTreeMap<String, u64>,
    counts: &BTreeMap<String, u64>,
    kind: RatchetKind,
    report: &mut Report,
) {
    let (what, section) = (kind.what(), kind.section());
    for (krate, &count) in counts {
        let budget = budgets.get(krate).copied();
        let tallies = match kind {
            RatchetKind::Unwrap => &mut report.unwrap_tallies,
            RatchetKind::Panic => &mut report.panic_tallies,
        };
        tallies.insert(krate.clone(), UnwrapTally { count, budget });
        let anchor = if krate == "self_similar" {
            "src".to_string()
        } else {
            format!("crates/{krate}")
        };
        match budget {
            Some(budget) if count > budget => report.findings.push(Finding {
                rule: kind.rule(),
                file: anchor,
                line: 0,
                col: 0,
                message: format!(
                    "{count} {what}, budget {budget} — {}; budgets only go down",
                    kind.fix()
                ),
            }),
            Some(budget) if count < budget => report.notes.push(format!(
                "crate `{krate}` has {count} {what}, {} under its budget of {budget} \
                 — ratchet `[{section}]` in detlint.toml down",
                budget - count
            )),
            Some(_) => {}
            None if count > 0 => report.findings.push(Finding {
                rule: kind.rule(),
                file: anchor,
                line: 0,
                col: 0,
                message: format!(
                    "{count} {what} but no `[{section}]` entry for `{krate}` in detlint.toml"
                ),
            }),
            None => {}
        }
    }
    // A stale budget (crate renamed or removed) would silently stop
    // ratcheting; surface it.
    for krate in budgets.keys() {
        if !counts.contains_key(krate) {
            report.findings.push(Finding {
                rule: kind.rule(),
                file: "detlint.toml".to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "`[{section}]` entry for `{krate}` names no crate in this workspace"
                ),
            });
        }
    }
}

/// `(crate name, src dir)` for the root package and every `crates/*`
/// member, sorted by name.  Crate names are the directory names —
/// `crates/campaign`, not `selfsim-campaign` — matching `detlint.toml`.
fn discover_crates(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("self_similar".to_string(), root_src));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .ok_or_else(|| format!("unnameable crate dir {}", dir.display()))?;
                out.push((name, src));
            }
        }
    }
    if out.is_empty() {
        return Err(format!(
            "no crates found under {} — is this the workspace root?",
            root.display()
        ));
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn is_binary_root(src_dir: &Path, path: &Path) -> bool {
    path == src_dir.join("main.rs") || path.starts_with(src_dir.join("bin"))
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_budget_and_unbudgeted_crates_are_findings() {
        let config = Config::parse("[unwrap_budget]\na = 1\nstale = 5\n").expect("config");
        let counts = BTreeMap::from([
            ("a".to_string(), 3u64),
            ("b".to_string(), 2),
            ("c".to_string(), 0),
        ]);
        let mut report = Report::default();
        ratchet(
            &config.unwrap_budget,
            &counts,
            RatchetKind::Unwrap,
            &mut report,
        );
        report.sort();
        let anchors: Vec<(&str, Rule)> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.rule))
            .collect();
        assert_eq!(
            anchors,
            [
                ("crates/a", Rule::UnwrapRatchet),     // 3 > 1
                ("crates/b", Rule::UnwrapRatchet),     // no budget
                ("detlint.toml", Rule::UnwrapRatchet)  // stale entry
            ]
        );
        assert_eq!(report.unwrap_tallies.len(), 3);
        assert!(report.panic_tallies.is_empty());
    }

    #[test]
    fn headroom_is_a_note_not_a_finding() {
        let config = Config::parse("[unwrap_budget]\na = 9\n").expect("config");
        let counts = BTreeMap::from([("a".to_string(), 4u64)]);
        let mut report = Report::default();
        ratchet(
            &config.unwrap_budget,
            &counts,
            RatchetKind::Unwrap,
            &mut report,
        );
        assert!(report.findings.is_empty());
        assert_eq!(report.notes.len(), 1);
        assert!(report.notes[0].contains("ratchet"));
    }

    #[test]
    fn panic_ratchet_mirrors_the_unwrap_ratchet() {
        let config = Config::parse("[panic_budget]\na = 1\n").expect("config");
        let counts = BTreeMap::from([("a".to_string(), 5u64), ("b".to_string(), 2)]);
        let mut report = Report::default();
        ratchet(
            &config.panic_budget,
            &counts,
            RatchetKind::Panic,
            &mut report,
        );
        report.sort();
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings.iter().all(|f| f.rule == Rule::PanicRatchet));
        assert!(report.findings[1].message.contains("[panic_budget]"));
        assert_eq!(report.panic_tallies.len(), 2);
        assert!(report.unwrap_tallies.is_empty());
    }

    #[test]
    fn explicit_mode_classifies_examples_and_tests_by_path() {
        let example = context_for_label("examples/quickstart.rs");
        assert!(example.is_binary_root && !example.is_test_code);
        let test = context_for_label("tests/campaign.rs");
        assert!(test.is_test_code && !test.is_binary_root);
        let fixture = context_for_label("crates/detlint/fixtures/violations.rs");
        assert!(!fixture.is_binary_root && !fixture.is_test_code);
    }
}
