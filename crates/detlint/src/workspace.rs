//! Workspace discovery and the two lint drivers.
//!
//! `--workspace` walks the root package's `src/` plus every
//! `crates/*/src/` tree (sorted, so reports are byte-stable), applies the
//! per-crate scoping from `detlint.toml`, and folds `.unwrap()` counts
//! into the `unwrap-ratchet` budgets.  Explicit-file mode lints the
//! arguments with every line rule and no crate attribution — that is
//! what the CI negative self-test runs over the committed violation
//! fixture.
//!
//! Scope notes: `tests/`, `examples/`, `benches/` and `vendor/` are not
//! walked — the contract binds the *library and binary* code that
//! produces record bytes.  `src/main.rs` and `src/bin/**` are scanned,
//! but `stray-print` does not apply there (a binary owns its stdio).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::report::{Finding, Report, UnwrapTally};
use crate::rules::{check_file, FileContext, Rule};

/// Lints the whole workspace rooted at `root` (the directory holding
/// `Cargo.toml`, `detlint.toml` and `crates/`).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let config_path = root.join("detlint.toml");
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
        Config::parse(&text)?
    } else {
        Config::default()
    };

    let mut report = Report::default();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();

    for (krate, src_dir) in discover_crates(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", src_dir.display()))?;
        files.sort();
        let crate_count = counts.entry(krate.clone()).or_insert(0);
        for path in files {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let label = rel_label(root, &path);
            let ctx = FileContext {
                is_lib_rs: path == src_dir.join("lib.rs"),
                is_binary_root: is_binary_root(&src_dir, &path),
                wall_clock_exempt: config.wall_clock_exempt_crates.contains(&krate),
                unordered_iter_scoped: config.unordered_iter_crates.contains(&krate),
            };
            let file_report = check_file(&label, &src, &ctx);
            report.findings.extend(file_report.findings);
            *crate_count += file_report.unwrap_count;
            report.files_scanned += 1;
        }
    }

    ratchet(&config, &counts, &mut report);
    report.sort();
    Ok(report)
}

/// Lints explicit file paths (no config, no crate attribution).
pub fn lint_files(paths: &[PathBuf]) -> Result<Report, String> {
    let mut report = Report::default();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let name = path.to_string_lossy().replace('\\', "/");
        let ctx = FileContext {
            is_lib_rs: name.ends_with("src/lib.rs"),
            is_binary_root: name.ends_with("src/main.rs") || name.contains("/bin/"),
            wall_clock_exempt: false,
            unordered_iter_scoped: true,
        };
        let file_report = check_file(&name, &src, &ctx);
        report.findings.extend(file_report.findings);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Applies the `unwrap-ratchet` budgets: over budget or unbudgeted-with-
/// unwraps is a finding; headroom is a note inviting a ratchet-down.
fn ratchet(config: &Config, counts: &BTreeMap<String, u64>, report: &mut Report) {
    for (krate, &count) in counts {
        let budget = config.unwrap_budget.get(krate).copied();
        report
            .unwrap_tallies
            .insert(krate.clone(), UnwrapTally { count, budget });
        let anchor = if krate == "self_similar" {
            "src".to_string()
        } else {
            format!("crates/{krate}")
        };
        match budget {
            Some(budget) if count > budget => report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: anchor,
                line: 0,
                col: 0,
                message: format!(
                    "{count} `.unwrap()` calls, budget {budget} — convert to `.expect(\"…\")` \
                     with a message; budgets only go down"
                ),
            }),
            Some(budget) if count < budget => report.notes.push(format!(
                "crate `{krate}` has {count} `.unwrap()` calls, {} under its budget of {budget} \
                 — ratchet `[unwrap_budget]` in detlint.toml down",
                budget - count
            )),
            Some(_) => {}
            None if count > 0 => report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: anchor,
                line: 0,
                col: 0,
                message: format!(
                    "{count} `.unwrap()` calls but no `[unwrap_budget]` entry for `{krate}` in \
                     detlint.toml"
                ),
            }),
            None => {}
        }
    }
    // A stale budget (crate renamed or removed) would silently stop
    // ratcheting; surface it.
    for krate in config.unwrap_budget.keys() {
        if !counts.contains_key(krate) {
            report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: "detlint.toml".to_string(),
                line: 0,
                col: 0,
                message: format!("budget for `{krate}` names no crate in this workspace"),
            });
        }
    }
}

/// `(crate name, src dir)` for the root package and every `crates/*`
/// member, sorted by name.  Crate names are the directory names —
/// `crates/campaign`, not `selfsim-campaign` — matching `detlint.toml`.
fn discover_crates(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("self_similar".to_string(), root_src));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .ok_or_else(|| format!("unnameable crate dir {}", dir.display()))?;
                out.push((name, src));
            }
        }
    }
    if out.is_empty() {
        return Err(format!(
            "no crates found under {} — is this the workspace root?",
            root.display()
        ));
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn is_binary_root(src_dir: &Path, path: &Path) -> bool {
    path == src_dir.join("main.rs") || path.starts_with(src_dir.join("bin"))
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_budget_and_unbudgeted_crates_are_findings() {
        let config = Config::parse("[unwrap_budget]\na = 1\nstale = 5\n").expect("config");
        let counts = BTreeMap::from([
            ("a".to_string(), 3u64),
            ("b".to_string(), 2),
            ("c".to_string(), 0),
        ]);
        let mut report = Report::default();
        ratchet(&config, &counts, &mut report);
        report.sort();
        let anchors: Vec<(&str, Rule)> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.rule))
            .collect();
        assert_eq!(
            anchors,
            [
                ("crates/a", Rule::UnwrapRatchet),     // 3 > 1
                ("crates/b", Rule::UnwrapRatchet),     // no budget
                ("detlint.toml", Rule::UnwrapRatchet)  // stale entry
            ]
        );
        assert_eq!(report.unwrap_tallies.len(), 3);
    }

    #[test]
    fn headroom_is_a_note_not_a_finding() {
        let config = Config::parse("[unwrap_budget]\na = 9\n").expect("config");
        let counts = BTreeMap::from([("a".to_string(), 4u64)]);
        let mut report = Report::default();
        ratchet(&config, &counts, &mut report);
        assert!(report.findings.is_empty());
        assert_eq!(report.notes.len(), 1);
        assert!(report.notes[0].contains("ratchet"));
    }
}
