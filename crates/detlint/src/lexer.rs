//! A resolution-free Rust lexer that is exact about the things a textual
//! lint gets wrong: comments (line, nested block, doc), string literals
//! (cooked, raw with any hash count, byte/C-string prefixes), char
//! literals vs. lifetimes, and raw identifiers.
//!
//! The output is deliberately coarse — identifiers, single-char
//! punctuation and opaque literals, each with a 1-based `line:col` span —
//! because every rule in the catalogue is a token-sequence pattern, not a
//! parse.  What matters is that `Instant::now` inside a string, a doc
//! comment or an `r##"…"##` raw string produces *no* `Ident` token, while
//! the same text in code always does.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (bytes).
    pub col: u32,
}

/// The token classes the rule patterns match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number.
    Lit,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// True when this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment, with the delimiters kept in `text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Line the comment starts on (1-based).
    pub line: u32,
    /// Line the comment ends on (equal to `line` for line comments).
    pub end_line: u32,
    /// Raw text including `//` / `/* */` delimiters.
    pub text: String,
    /// Doc comments (`///`, `//!`, `/** */`, `/*! */`) never carry
    /// pragmas or `bare-allow` justifications.
    pub doc: bool,
}

/// A lexed file: the code token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, k: usize) -> u8 {
        self.b.get(self.i + k).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.b[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn done(&self) -> bool {
        self.i >= self.b.len()
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src`, producing the code token stream and the comment list.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while !s.done() {
        let c = s.peek(0);
        if c.is_ascii_whitespace() {
            s.bump();
            continue;
        }
        let (line, col) = (s.line, s.col);
        if c == b'/' && s.peek(1) == b'/' {
            line_comment(&mut s, &mut out, line);
        } else if c == b'/' && s.peek(1) == b'*' {
            block_comment(&mut s, &mut out, line);
        } else if c == b'"' {
            cooked_string(&mut s);
            out.toks.push(Tok {
                kind: TokKind::Lit,
                line,
                col,
            });
        } else if c == b'\'' {
            char_or_lifetime(&mut s, &mut out, line, col);
        } else if is_ident_start(c) {
            ident_or_prefixed_literal(&mut s, &mut out, line, col);
        } else if c.is_ascii_digit() {
            number(&mut s);
            out.toks.push(Tok {
                kind: TokKind::Lit,
                line,
                col,
            });
        } else {
            s.bump();
            out.toks.push(Tok {
                kind: TokKind::Punct(c as char),
                line,
                col,
            });
        }
    }
    out
}

fn line_comment(s: &mut Scanner, out: &mut Lexed, line: u32) {
    let start = s.i;
    // `///x` and `//!` are doc; `//` and `////…` are plain.
    let doc = (s.peek(2) == b'/' && s.peek(3) != b'/') || s.peek(2) == b'!';
    while !s.done() && s.peek(0) != b'\n' {
        s.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: line,
        text: s.src[start..s.i].to_string(),
        doc,
    });
}

fn block_comment(s: &mut Scanner, out: &mut Lexed, line: u32) {
    let start = s.i;
    // `/**x` and `/*!` are doc; `/**/` and `/***/` are plain enough.
    let doc = (s.peek(2) == b'*' && s.peek(3) != b'/' && s.peek(3) != b'*') || s.peek(2) == b'!';
    s.bump();
    s.bump();
    let mut depth = 1u32;
    while !s.done() && depth > 0 {
        if s.peek(0) == b'/' && s.peek(1) == b'*' {
            depth += 1;
            s.bump();
            s.bump();
        } else if s.peek(0) == b'*' && s.peek(1) == b'/' {
            depth -= 1;
            s.bump();
            s.bump();
        } else {
            s.bump();
        }
    }
    out.comments.push(Comment {
        line,
        end_line: s.line,
        text: s.src[start..s.i].to_string(),
        doc,
    });
}

/// Consumes a `"…"` literal (opening quote not yet consumed), honouring
/// `\"` and `\\` escapes; cooked strings may span lines.
fn cooked_string(s: &mut Scanner) {
    s.bump(); // opening quote
    while !s.done() {
        match s.bump() {
            b'\\' if !s.done() => {
                s.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Consumes `r"…"` / `r#"…"#…` with `hashes` leading `#`s already known
/// (prefix and hashes not yet consumed; `extra` is the prefix length).
fn raw_string(s: &mut Scanner, extra: usize, hashes: usize) {
    for _ in 0..extra + hashes + 1 {
        s.bump(); // prefix letters, hashes, opening quote
    }
    while !s.done() {
        if s.bump() == b'"' {
            let mut matched = 0;
            while matched < hashes && s.peek(0) == b'#' {
                s.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

fn char_or_lifetime(s: &mut Scanner, out: &mut Lexed, line: u32, col: u32) {
    if is_ident_start(s.peek(1)) && s.peek(2) != b'\'' {
        // A lifetime (`'a`, `'static`, `'_`): no closing quote follows.
        s.bump();
        while is_ident_continue(s.peek(0)) {
            s.bump();
        }
        out.toks.push(Tok {
            kind: TokKind::Lit,
            line,
            col,
        });
        return;
    }
    // A char literal: `'x'`, `'\''`, `'\u{1F600}'`, `'"'`.
    s.bump(); // opening quote
    while !s.done() && s.peek(0) != b'\'' {
        if s.peek(0) == b'\\' {
            s.bump();
        }
        if !s.done() {
            s.bump();
        }
    }
    if !s.done() {
        s.bump(); // closing quote
    }
    out.toks.push(Tok {
        kind: TokKind::Lit,
        line,
        col,
    });
}

fn ident_or_prefixed_literal(s: &mut Scanner, out: &mut Lexed, line: u32, col: u32) {
    // String-literal prefixes: r" r#" b" br" c" cr" b'  — and the raw
    // identifier `r#name`.  Look ahead without consuming.
    let c0 = s.peek(0);
    if matches!(c0, b'r' | b'b' | b'c') {
        let (extra, raw) = match (c0, s.peek(1)) {
            (b'b', b'r') | (b'c', b'r') => (2, true),
            (b'r', _) => (1, true),
            (b'b' | b'c', _) => (1, false),
            _ => unreachable!(),
        };
        if raw {
            let mut hashes = 0;
            while s.peek(extra + hashes) == b'#' {
                hashes += 1;
            }
            if s.peek(extra + hashes) == b'"' {
                raw_string(s, extra, hashes);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    line,
                    col,
                });
                return;
            }
            if c0 == b'r' && hashes == 1 && is_ident_start(s.peek(2)) {
                // Raw identifier `r#match`: emit the bare name.
                s.bump();
                s.bump();
                let start = s.i;
                while is_ident_continue(s.peek(0)) {
                    s.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(s.src[start..s.i].to_string()),
                    line,
                    col,
                });
                return;
            }
        }
        if extra == 1 && s.peek(1) == b'"' {
            s.bump(); // prefix letter
            cooked_string(s);
            out.toks.push(Tok {
                kind: TokKind::Lit,
                line,
                col,
            });
            return;
        }
        if c0 == b'b' && s.peek(1) == b'\'' {
            s.bump(); // `b`
            char_or_lifetime(s, out, line, col);
            return;
        }
    }
    let start = s.i;
    while is_ident_continue(s.peek(0)) {
        s.bump();
    }
    out.toks.push(Tok {
        kind: TokKind::Ident(s.src[start..s.i].to_string()),
        line,
        col,
    });
}

/// Consumes a numeric literal: enough precision that `0.5`, `1e-3`,
/// `0xFF_u64` and tuple indexing (`x.0.unwrap()`) all tokenize sanely.
fn number(s: &mut Scanner) {
    s.bump();
    while is_ident_continue(s.peek(0)) {
        s.bump();
    }
    if s.peek(0) == b'.' && s.peek(1).is_ascii_digit() {
        s.bump();
        while is_ident_continue(s.peek(0)) {
            s.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_idents() {
        let src = r####"
            // Instant::now in a line comment
            /* thread_rng in /* a nested */ block comment */
            /// doc: println!("x")
            let a = "Instant::now()";
            let b = r#"HashMap::new()"#;
            let c = r##"raw "# with hash"##;
            let d = b"SystemTime::now";
        "####;
        let names = idents(src);
        assert!(!names.contains(&"Instant".to_string()), "{names:?}");
        assert!(!names.contains(&"thread_rng".to_string()));
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"SystemTime".to_string()));
        assert!(!names.contains(&"println".to_string()));
        assert_eq!(
            names,
            ["let", "a", "let", "b", "let", "c", "let", "d"].map(str::to_string)
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let names = idents(r#"let x = "say \"Instant::now\" later"; done();"#);
        assert_eq!(names, ["let", "x", "done"].map(str::to_string));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // A `'"'` char must not open a string; a lifetime has no close.
        let names = idents("fn f<'a>(x: &'a str) { let q = '\"'; let e = '\\''; g(); }");
        assert!(names.contains(&"g".to_string()));
        assert!(!names.iter().any(|n| n == "q\""));
        let names = idents("let c = b'x'; h();");
        assert_eq!(names, ["let", "c", "h"].map(str::to_string));
    }

    #[test]
    fn raw_identifiers_lose_the_prefix() {
        assert_eq!(
            idents("use r#mod::thing;"),
            ["use", "mod", "thing"].map(str::to_string)
        );
    }

    #[test]
    fn comment_side_channel_records_spans_and_docness() {
        let lexed = lex("// plain\n/// doc\n//! inner\ncode(); // trailing\n/* b\nlock */\n");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, [false, true, true, false, false]);
        assert_eq!(lexed.comments[3].line, 4);
        let block = &lexed.comments[4];
        assert_eq!((block.line, block.end_line), (5, 6));
    }

    #[test]
    fn tuple_indexing_still_exposes_unwrap() {
        let lexed = lex("let y = x.0.unwrap();");
        let names: Vec<_> = lexed.toks.iter().filter_map(|t| t.ident()).collect();
        assert!(names.contains(&"unwrap"));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  bb\n");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }
}
