//! `detlint.toml` — the committed lint configuration.
//!
//! A deliberately tiny TOML subset (sections, integer / string /
//! single-line string-array values, `#` comments) parsed by hand: the
//! lint must not depend on anything it lints, vendored stand-ins
//! included.  Unknown sections or keys are *errors*, so a typo'd budget
//! can't silently stop ratcheting.
//!
//! ```toml
//! [wall_clock]
//! exempt_crates = ["bench"]
//!
//! [unordered_iter]
//! crates = ["campaign", "trace"]
//!
//! [unwrap_budget]
//! campaign = 35   # may only go DOWN
//! ```

use std::collections::BTreeMap;

/// Parsed configuration; `Default` is the empty config (no exemptions,
/// no scoped crates, no budgets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Crates (by directory name under `crates/`) exempt from
    /// `wall-clock` — the bench harness is the sanctioned example.
    pub wall_clock_exempt_crates: Vec<String>,
    /// Crates in which `unordered-iter` is enforced (the ones that feed
    /// `TrialRecord` / JSONL serialization).
    pub unordered_iter_crates: Vec<String>,
    /// Per-crate `.unwrap()` ceilings for `unwrap-ratchet`.
    pub unwrap_budget: BTreeMap<String, u64>,
    /// Per-crate `panic!`/`unreachable!`/`[idx]` ceilings for
    /// `panic-ratchet`.
    pub panic_budget: BTreeMap<String, u64>,
}

impl Config {
    /// Parses the `detlint.toml` subset; errors name the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        for (n, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "wall_clock" | "unordered_iter" | "unwrap_budget" | "panic_budget" => {}
                    other => {
                        return Err(format!("detlint.toml:{}: unknown section [{other}]", n + 1))
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("detlint.toml:{}: expected `key = value`", n + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("wall_clock", "exempt_crates") => {
                    config.wall_clock_exempt_crates = parse_string_array(value, n + 1)?;
                }
                ("unordered_iter", "crates") => {
                    config.unordered_iter_crates = parse_string_array(value, n + 1)?;
                }
                (section @ ("unwrap_budget" | "panic_budget"), crate_name) => {
                    let budget = value.parse::<u64>().map_err(|_| {
                        format!(
                            "detlint.toml:{}: budget for `{crate_name}` is not an integer: `{value}`",
                            n + 1
                        )
                    })?;
                    let map = if section == "unwrap_budget" {
                        &mut config.unwrap_budget
                    } else {
                        &mut config.panic_budget
                    };
                    if map.insert(crate_name.to_string(), budget).is_some() {
                        return Err(format!(
                            "detlint.toml:{}: duplicate budget for `{crate_name}`",
                            n + 1
                        ));
                    }
                }
                (section, key) => {
                    return Err(format!(
                        "detlint.toml:{}: unknown key `{key}` in section [{section}]",
                        n + 1
                    ));
                }
            }
        }
        Ok(config)
    }
}

/// Drops a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("detlint.toml:{line}: expected a `[\"…\", …]` array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let name = item
            .strip_prefix('"')
            .and_then(|i| i.strip_suffix('"'))
            .ok_or_else(|| format!("detlint.toml:{line}: array items must be quoted strings"))?;
        out.push(name.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_sections() {
        let config = Config::parse(
            "# header\n[wall_clock]\nexempt_crates = [\"bench\"]\n\n[unordered_iter]\ncrates = [\"campaign\", \"trace\",]\n\n[unwrap_budget]\ncampaign = 35 # ratchet\ntrace = 3\n",
        )
        .expect("valid config");
        assert_eq!(config.wall_clock_exempt_crates, ["bench"]);
        assert_eq!(config.unordered_iter_crates, ["campaign", "trace"]);
        assert_eq!(config.unwrap_budget.get("campaign"), Some(&35));
        assert_eq!(config.unwrap_budget.get("trace"), Some(&3));
    }

    #[test]
    fn panic_budget_parses_like_unwrap_budget() {
        let config = Config::parse("[panic_budget]\nruntime = 4\n\n[unwrap_budget]\nruntime = 7\n")
            .expect("valid config");
        assert_eq!(config.panic_budget.get("runtime"), Some(&4));
        assert_eq!(config.unwrap_budget.get("runtime"), Some(&7));
        assert!(Config::parse("[panic_budget]\na = 1\na = 2\n")
            .expect_err("dup")
            .contains("duplicate budget"));
    }

    #[test]
    fn unknown_sections_and_keys_are_errors() {
        assert!(Config::parse("[wall_clck]\n")
            .expect_err("typo")
            .contains("unknown section"));
        assert!(Config::parse("[wall_clock]\nexempt = []\n")
            .expect_err("typo")
            .contains("unknown key"));
    }

    #[test]
    fn non_integer_budget_and_duplicates_are_errors() {
        assert!(Config::parse("[unwrap_budget]\ncampaign = many\n")
            .expect_err("nan")
            .contains("not an integer"));
        assert!(Config::parse("[unwrap_budget]\na = 1\na = 2\n")
            .expect_err("dup")
            .contains("duplicate budget"));
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let config = Config::parse("[unordered_iter]\ncrates = [\"has#hash\"]\n").expect("ok");
        assert_eq!(config.unordered_iter_crates, ["has#hash"]);
    }
}
