//! The determinism-contract rule catalogue.
//!
//! Every rule is a resolution-free token-sequence pattern over the
//! [`crate::lexer`] output — exact about comments and string literals,
//! deliberately naive about name resolution (there is no `syn` in
//! `vendor/`, and the patterns below don't need it).
//!
//! | rule | what it catches | why it breaks determinism |
//! |------|-----------------|---------------------------|
//! | `wall-clock` | `Instant::now` / `SystemTime::now` | clock reads vary run to run; only the sampled `PipelineObs` path and the bench harness may time things |
//! | `ambient-rng` | `thread_rng`, `from_entropy`, `rand::random`, `OsRng`, `getrandom` | all randomness must derive from per-trial seeds, never ambient entropy |
//! | `unordered-iter` | `HashMap` / `HashSet` in crates that feed `TrialRecord`/JSONL | hash iteration order is nondeterministic across runs and platforms; use `BTreeMap`/`BTreeSet` or sorted `Vec`s |
//! | `addr-as-key` | pointer-to-`usize` casts (`as *const _ as usize`, `.as_ptr() as usize`) | addresses change per run; ordering or keying by them leaks ASLR into output |
//! | `stray-print` | `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code | the sink and `ProgressThrottle` are the only sanctioned outputs; stray prints interleave nondeterministically under threads |
//! | `forbid-unsafe-header` | a crate root without `#![forbid(unsafe_code)]` | `unsafe` is where data races (and thus nondeterminism) enter |
//! | `bare-allow` | `#[allow(…)]` with no justification comment | every suppressed diagnostic needs a reviewable reason |
//! | `unwrap-ratchet` | per-crate `.unwrap()` counts above the committed budget | budgets in `detlint.toml` may only go down; new code uses `.expect("…")` |
//! | `invalid-pragma` | malformed `detlint::allow` pragmas | an exemption with no reason is a silent hole in the contract |
//! | `seed-provenance` | `seed_from_u64`/`from_seed` fed a literal in library code | a hard-coded seed silently decouples an RNG from the per-trial seed chain |
//! | `registry-label-drift` | a label-grammar enum variant or `*Factory` impl missing its emit or parse half | a new variant that doesn't round-trip makes its cells irreproducible |
//! | `condvar-wait-loop` | `Condvar::wait` not re-checked in a `while` loop | spurious wakeups make the reorder window emit records early |
//! | `lock-order` | two fns acquiring the same Mutexes in opposite orders | a deadlock under the right thread interleaving |
//! | `panic-ratchet` | per-crate `panic!`/`unreachable!`/`[idx]` counts above the committed budget | a panic in a worker thread kills determinism *and* the trial |
//!
//! The first nine are token-sequence patterns; the last five ride the
//! [`crate::parser`] item tree and the [`crate::graph`] symbol graph.

use crate::graph::{self, FileSymbols, Suppression};
use crate::lexer::{lex, Comment, Tok};
use crate::parser::ItemTree;
use crate::pragma::{parse_pragmas, Pragma};
use crate::report::Finding;

/// Identifies one rule of the catalogue (see the module docs for the
/// full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    WallClock,
    AmbientRng,
    UnorderedIter,
    AddrAsKey,
    StrayPrint,
    ForbidUnsafeHeader,
    BareAllow,
    UnwrapRatchet,
    InvalidPragma,
    SeedProvenance,
    RegistryLabelDrift,
    CondvarWaitLoop,
    LockOrder,
    PanicRatchet,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 14] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::UnorderedIter,
        Rule::AddrAsKey,
        Rule::StrayPrint,
        Rule::ForbidUnsafeHeader,
        Rule::BareAllow,
        Rule::UnwrapRatchet,
        Rule::InvalidPragma,
        Rule::SeedProvenance,
        Rule::RegistryLabelDrift,
        Rule::CondvarWaitLoop,
        Rule::LockOrder,
        Rule::PanicRatchet,
    ];

    /// The kebab-case id used in reports and pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::AddrAsKey => "addr-as-key",
            Rule::StrayPrint => "stray-print",
            Rule::ForbidUnsafeHeader => "forbid-unsafe-header",
            Rule::BareAllow => "bare-allow",
            Rule::UnwrapRatchet => "unwrap-ratchet",
            Rule::InvalidPragma => "invalid-pragma",
            Rule::SeedProvenance => "seed-provenance",
            Rule::RegistryLabelDrift => "registry-label-drift",
            Rule::CondvarWaitLoop => "condvar-wait-loop",
            Rule::LockOrder => "lock-order",
            Rule::PanicRatchet => "panic-ratchet",
        }
    }

    /// Resolves a pragma/report id back to the rule.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line description for `--rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "`Instant::now`/`SystemTime::now` outside the sampled observability path"
            }
            Rule::AmbientRng => {
                "ambient entropy (`thread_rng`, `from_entropy`, `rand::random`, `OsRng`)"
            }
            Rule::UnorderedIter => "`HashMap`/`HashSet` in a crate that feeds record serialization",
            Rule::AddrAsKey => "pointer-to-`usize` cast usable as an ordering key",
            Rule::StrayPrint => "`println!`-family output from library code",
            Rule::ForbidUnsafeHeader => "crate root missing `#![forbid(unsafe_code)]`",
            Rule::BareAllow => "`#[allow(…)]` without a justification comment",
            Rule::UnwrapRatchet => ".unwrap() count above the crate's committed budget",
            Rule::InvalidPragma => "malformed `detlint::allow` pragma",
            Rule::SeedProvenance => "RNG seeded from a literal instead of the per-trial seed chain",
            Rule::RegistryLabelDrift => {
                "label-grammar enum variant or `*Factory` impl missing its emit/parse half"
            }
            Rule::CondvarWaitLoop => "`Condvar::wait` not guarded by a `while` re-check",
            Rule::LockOrder => "two Mutexes acquired in opposite orders across fns",
            Rule::PanicRatchet => {
                "panic!/unreachable!/[idx] count above the crate's committed budget"
            }
        }
    }
}

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// The crate root (`src/lib.rs`): must carry `#![forbid(unsafe_code)]`.
    pub is_lib_rs: bool,
    /// `src/main.rs` or `src/bin/**`: a binary entry point, where
    /// `stray-print` does not apply (stdout/stderr are its contract).
    pub is_binary_root: bool,
    /// Crate-level exemption from `wall-clock` (the bench harness).
    pub wall_clock_exempt: bool,
    /// Whether this file's crate is in the `unordered-iter` scope.
    pub unordered_iter_scoped: bool,
    /// An integration-test or example file (root `tests/`, `examples/`):
    /// prints are its own business, its symbols stay out of the graph,
    /// and the panic/seed rules don't bind.
    pub is_test_code: bool,
}

/// Everything one file contributes: findings plus its `.unwrap()` and
/// panic-surface counts (folded per crate by the workspace driver for
/// the two ratchets) and its symbol fragment for the graph rules.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub unwrap_count: u64,
    pub panic_count: u64,
    pub symbols: FileSymbols,
}

/// Lints one file's source text.
pub fn check_file(file: &str, src: &str, ctx: &FileContext) -> FileReport {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let tree = ItemTree::parse(toks);
    let (pragmas, pragma_errors) = parse_pragmas(&lexed.comments);
    let mut report = FileReport::default();

    for error in &pragma_errors {
        report.findings.push(Finding {
            rule: Rule::InvalidPragma,
            file: file.to_string(),
            line: error.line,
            col: 1,
            message: error.message.clone(),
        });
    }

    let mut raw = Vec::new();
    scan_wall_clock(file, toks, ctx, &mut raw);
    scan_ambient_rng(file, toks, &mut raw);
    scan_unordered_iter(file, toks, ctx, &mut raw);
    scan_addr_as_key(file, toks, &mut raw);
    scan_stray_print(file, toks, ctx, &mut raw);
    scan_bare_allow(file, toks, &lexed.comments, &mut raw);
    scan_seed_provenance(file, toks, &tree, ctx, &mut raw);
    scan_condvar_wait(file, toks, &tree, &mut raw);
    if ctx.is_lib_rs && !has_forbid_unsafe_header(toks) {
        raw.push(Finding {
            rule: Rule::ForbidUnsafeHeader,
            file: file.to_string(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    report.unwrap_count = count_unwraps(toks);
    report.panic_count = count_panic_surface(toks, &tree, ctx);

    // Pragma suppression: exact (rule, reach) matches only.
    let reaches: Vec<(Pragma, (u32, u32))> = pragmas
        .iter()
        .map(|p| (p.clone(), pragma_reach(p, toks)))
        .collect();
    report.findings.extend(raw.into_iter().filter(|finding| {
        !reaches.iter().any(|(pragma, (lo, hi))| {
            pragma.rule == finding.rule && (pragma.file_wide || (*lo..=*hi).contains(&finding.line))
        })
    }));
    // The graph rules fire later, scope-wide; hand them the suppressions
    // so pragmas keep working for findings emitted there.
    let suppressions = reaches
        .iter()
        .map(|(pragma, (lo, hi))| Suppression {
            rule: pragma.rule,
            file_wide: pragma.file_wide,
            lo: *lo,
            hi: *hi,
        })
        .collect();
    report.symbols = graph::extract(file, toks, &tree, ctx, suppressions);
    report
}

/// The lines a pragma exempts: its own line when trailing code, else the
/// run down to the first following code line that is not attribute-only —
/// so a pragma above `#[allow(clippy::…)]` reaches the statement below
/// the attribute, not just the attribute.
fn pragma_reach(pragma: &Pragma, toks: &[Tok]) -> (u32, u32) {
    let mut lines: Vec<(u32, bool)> = Vec::new(); // (line, starts_with_attr)
    for tok in toks {
        match lines.last_mut() {
            Some((line, _)) if *line == tok.line => {}
            _ => lines.push((tok.line, tok.is_punct('#'))),
        }
    }
    if lines.iter().any(|&(line, _)| line == pragma.line) {
        return (pragma.line, pragma.line); // trailing pragma
    }
    let target = lines
        .iter()
        .find(|&&(line, attr)| line > pragma.line && !attr)
        .map(|&(line, _)| line)
        .unwrap_or(pragma.line);
    (pragma.line, target)
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(Tok::ident)
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// `<Name> :: now` for `Name` in {`Instant`, `SystemTime`}.
fn scan_wall_clock(file: &str, toks: &[Tok], ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.wall_clock_exempt {
        return;
    }
    for i in 0..toks.len() {
        let Some(name @ ("Instant" | "SystemTime")) = ident_at(toks, i) else {
            continue;
        };
        if punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 3) == Some("now")
        {
            out.push(Finding {
                rule: Rule::WallClock,
                file: file.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "`{name}::now` reads the wall clock — derive timing from trial state, or \
                     pragma-allow a sanctioned observability site with a reason"
                ),
            });
        }
    }
}

/// Ambient entropy sources — everything that isn't a derived per-trial seed.
fn scan_ambient_rng(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let hit = match name {
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => true,
            "random" => {
                i >= 3
                    && ident_at(toks, i - 3) == Some("rand")
                    && punct_at(toks, i - 2, ':')
                    && punct_at(toks, i - 1, ':')
            }
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: Rule::AmbientRng,
                file: file.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "`{name}` draws ambient entropy — all randomness must derive from the \
                     per-trial seed (SplitMix64 over campaign seed, scenario and trial index)"
                ),
            });
        }
    }
}

/// Any `HashMap`/`HashSet` mention in a serialization-feeding crate.  The
/// tree is hash-free today; the cheapest sound check keeps it that way.
fn scan_unordered_iter(file: &str, toks: &[Tok], ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ctx.unordered_iter_scoped {
        return;
    }
    for tok in toks {
        let Some(name @ ("HashMap" | "HashSet")) = tok.ident() else {
            continue;
        };
        out.push(Finding {
            rule: Rule::UnorderedIter,
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{name}` in a crate that feeds record serialization — iteration order is \
                 nondeterministic; use `BTreeMap`/`BTreeSet` or a sorted `Vec`"
            ),
        });
    }
}

/// `… as usize` with a pointer source in the lookback window:
/// `&x as *const _ as usize` or `v.as_ptr() as usize`.
fn scan_addr_as_key(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("as") || ident_at(toks, i + 1) != Some("usize") {
            continue;
        }
        let window = &toks[i.saturating_sub(8)..i];
        let pointerish = window.iter().enumerate().any(|(k, tok)| {
            tok.ident() == Some("as_ptr")
                || (tok.is_punct('*')
                    && matches!(
                        window.get(k + 1).and_then(Tok::ident),
                        Some("const" | "mut")
                    ))
        });
        if pointerish {
            out.push(Finding {
                rule: Rule::AddrAsKey,
                file: file.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: "pointer cast to `usize` — addresses vary per run (ASLR); never key or \
                          order by them"
                    .to_string(),
            });
        }
    }
}

/// `println!`-family macros (and the `todo!` placeholder, which prints
/// its way into a panic) outside binary roots and `#[cfg(test)]` mods.
fn scan_stray_print(file: &str, toks: &[Tok], ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.is_binary_root || ctx.is_test_code {
        return;
    }
    let test_ranges = test_mod_ranges(toks);
    for i in 0..toks.len() {
        let Some(name @ ("println" | "eprintln" | "print" | "eprint" | "dbg" | "todo")) =
            ident_at(toks, i)
        else {
            continue;
        };
        if !punct_at(toks, i + 1, '!') {
            continue;
        }
        let line = toks[i].line;
        if test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
        {
            continue;
        }
        let message = if name == "todo" {
            "`todo!` in library code — unfinished code panics at runtime; finish it or \
             return an error"
                .to_string()
        } else {
            format!(
                "`{name}!` in library code — the record sink and `ProgressThrottle` are the \
                 only sanctioned outputs"
            )
        };
        out.push(Finding {
            rule: Rule::StrayPrint,
            file: file.to_string(),
            line,
            col: toks[i].col,
            message,
        });
    }
}

/// `seed_from_u64`/`from_seed` whose argument cannot be traced to a
/// seed-bearing name: a fn parameter, `self` (config fields), any ident
/// containing `seed`, or a local `let` bound from one of those.  Test
/// code is exempt — a fixed seed is exactly what a test wants.
fn scan_seed_provenance(
    file: &str,
    toks: &[Tok],
    tree: &ItemTree,
    ctx: &FileContext,
    out: &mut Vec<Finding>,
) {
    // Binaries are entry points: a fixed demo seed at the top of `main`
    // IS the provenance.  The rule polices library code, where a literal
    // silently forks the per-trial seed chain.
    if ctx.is_test_code || ctx.is_binary_root {
        return;
    }
    for i in 0..toks.len() {
        let Some(name @ ("seed_from_u64" | "from_seed")) = ident_at(toks, i) else {
            continue;
        };
        if !punct_at(toks, i + 1, '(') || tree.line_in_test(toks[i].line) {
            continue;
        }
        let Some(f) = tree.fn_at(i) else {
            continue; // not inside a fn body (a doc-test snippet, say)
        };
        if f.in_test {
            continue;
        }
        let Some((blo, bhi)) = f.body else { continue };
        let safe = safe_seed_names(&toks[blo..bhi], &f.params);
        // Argument span of the call.
        let mut depth = 0i32;
        let mut close = i + 1;
        for (k, t) in toks.iter().enumerate().take(bhi).skip(i + 1) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        let arg_traced = toks[i + 2..close]
            .iter()
            .filter_map(Tok::ident)
            .any(|id| is_seedish(id) || safe.contains(&id.to_string()));
        if !arg_traced {
            out.push(Finding {
                rule: Rule::SeedProvenance,
                file: file.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "`{name}` argument does not trace to a seed-bearing parameter or config \
                     field — a literal seed decouples this RNG from the per-trial seed chain"
                ),
            });
        }
    }
}

/// Whether an identifier is seed-bearing by name.
fn is_seedish(name: &str) -> bool {
    name.to_ascii_lowercase().contains("seed") || name == "self" || name == "config"
}

/// The set of names a seed argument may mention: the fn's parameters
/// plus locals transitively `let`-bound from a safe name (fixpoint over
/// the body's `let x = …;` statements).
fn safe_seed_names(body: &[Tok], params: &[String]) -> Vec<String> {
    let mut safe: Vec<String> = params.to_vec();
    loop {
        let mut grew = false;
        let mut i = 0;
        while i < body.len() {
            if ident_at(body, i) != Some("let") {
                i += 1;
                continue;
            }
            // Binding name: first non-`mut` ident after `let`.
            let mut j = i + 1;
            while ident_at(body, j) == Some("mut") {
                j += 1;
            }
            let Some(bound) = ident_at(body, j) else {
                i = j + 1;
                continue;
            };
            // RHS: from the `=` to the statement's `;` at bracket depth 0.
            let Some(eq) = (j..body.len().min(j + 8))
                .find(|&k| punct_at(body, k, '=') && !punct_at(body, k + 1, '='))
            else {
                i = j + 1;
                continue;
            };
            let mut depth = 0i32;
            let mut k = eq + 1;
            let mut traced = false;
            while k < body.len() {
                let t = &body[k];
                if depth == 0 && t.is_punct(';') {
                    break;
                }
                match &t.kind {
                    _ if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
                    _ if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
                    _ => {}
                }
                if let Some(id) = t.ident() {
                    if is_seedish(id) || safe.iter().any(|s| s == id) {
                        traced = true;
                    }
                }
                k += 1;
            }
            if traced && !safe.iter().any(|s| s == bound) {
                safe.push(bound.to_string());
                grew = true;
            }
            i = k + 1;
        }
        if !grew {
            return safe;
        }
    }
}

/// `guard.wait(…)`-style Condvar waits (an argument distinguishes them
/// from `Child::wait()`-likes) that are not re-checked inside a `while`
/// loop: a spurious wakeup then proceeds on a stale condition.
fn scan_condvar_wait(file: &str, toks: &[Tok], tree: &ItemTree, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("wait")
            || !punct_at(toks, i + 1, '(')
            || punct_at(toks, i + 2, ')')
            || i == 0
            || !toks[i - 1].is_punct('.')
        {
            continue;
        }
        let Some(f) = tree.fn_at(i) else { continue };
        let Some((blo, bhi)) = f.body else { continue };
        let guarded = (blo..i).any(|j| {
            matches!(ident_at(toks, j), Some("while" | "loop"))
                && while_block_contains(toks, j, bhi, i)
        });
        if !guarded {
            out.push(Finding {
                rule: Rule::CondvarWaitLoop,
                file: file.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: "`Condvar::wait` outside a `while` re-check loop — spurious wakeups \
                          will proceed on a stale condition; wrap the wait in \
                          `while !condition { guard = cv.wait(guard)…; }`"
                    .to_string(),
            });
        }
    }
}

/// Whether the loop body of the `while`/`loop` keyword at `j` contains
/// token index `target` (scans the head for its `{` at bracket depth 0,
/// then brace-matches).
fn while_block_contains(toks: &[Tok], j: usize, hi: usize, target: usize) -> bool {
    let mut depth = 0i32;
    let mut k = j + 1;
    let open = loop {
        if k >= hi.min(toks.len()) {
            return false;
        }
        let t = &toks[k];
        if depth == 0 && t.is_punct('{') {
            break k;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        }
        k += 1;
    };
    let mut braces = 0usize;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(open) {
        if t.is_punct('{') {
            braces += 1;
        } else if t.is_punct('}') {
            braces -= 1;
            if braces == 0 {
                return (open..k).contains(&target);
            }
        }
    }
    false
}

/// Keywords that precede a `[` without making it an indexing site.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "ref", "in", "as", "return", "break", "else", "move", "static", "const", "impl",
    "where", "let", "if", "while", "for", "loop", "unsafe", "pub", "use", "match",
];

/// Counts the panic surface of library code: `panic!`/`unreachable!`
/// sites plus `[idx]` indexing expressions (a `[` whose previous token
/// is a value — an ident, `)`, `]` or a literal), outside `#[cfg(test)]`
/// mods.  Binary roots and test files are a binary's/test's own
/// business.
fn count_panic_surface(toks: &[Tok], tree: &ItemTree, ctx: &FileContext) -> u64 {
    if ctx.is_binary_root || ctx.is_test_code {
        return 0;
    }
    let mut count = 0u64;
    for i in 0..toks.len() {
        if tree.line_in_test(toks[i].line) {
            continue;
        }
        if matches!(ident_at(toks, i), Some("panic" | "unreachable")) && punct_at(toks, i + 1, '!')
        {
            count += 1;
            continue;
        }
        if !punct_at(toks, i, '[') || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let is_value = match prev.ident() {
            Some(name) => !NON_INDEX_KEYWORDS.contains(&name),
            None => {
                prev.is_punct(')') || prev.is_punct(']') || prev.kind == crate::lexer::TokKind::Lit
            }
        };
        if is_value {
            count += 1;
        }
    }
    count
}

/// `#[allow(…)]` / `#![allow(…)]` without a justification: a non-doc
/// comment on the same line or ending on the line directly above.
fn scan_bare_allow(file: &str, toks: &[Tok], comments: &[Comment], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if !punct_at(toks, i, '#') {
            continue;
        }
        let j = if punct_at(toks, i + 1, '!') {
            i + 2
        } else {
            i + 1
        };
        if !punct_at(toks, j, '[') || ident_at(toks, j + 1) != Some("allow") {
            continue;
        }
        let line = toks[i].line;
        let justified = comments.iter().any(|c| {
            !c.doc
                && (c.line == line || c.end_line + 1 == line)
                && !c
                    .text
                    .trim_start_matches(['/', '*', ' ', '\t'])
                    .trim()
                    .is_empty()
        });
        if !justified {
            out.push(Finding {
                rule: Rule::BareAllow,
                file: file.to_string(),
                line,
                col: toks[i].col,
                message: "`#[allow(…)]` without a justification — add a `// why` comment on the \
                          same line or the line above"
                    .to_string(),
            });
        }
    }
}

/// `#![forbid(unsafe_code)]` anywhere in the token stream (it must be a
/// crate-root inner attribute to compile, so presence is enough).
fn has_forbid_unsafe_header(toks: &[Tok]) -> bool {
    (0..toks.len()).any(|i| {
        punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '!')
            && punct_at(toks, i + 2, '[')
            && ident_at(toks, i + 3) == Some("forbid")
            && punct_at(toks, i + 4, '(')
            && ident_at(toks, i + 5) == Some("unsafe_code")
    })
}

/// Counts `.unwrap()` call sites (test modules included — the ratchet
/// covers the whole crate).
fn count_unwraps(toks: &[Tok]) -> u64 {
    (0..toks.len())
        .filter(|&i| {
            punct_at(toks, i, '.')
                && ident_at(toks, i + 1) == Some("unwrap")
                && punct_at(toks, i + 2, '(')
                && punct_at(toks, i + 3, ')')
        })
        .count() as u64
}

/// Line ranges of `#[cfg(test)] mod … { … }` blocks (attributes between
/// the cfg and the `mod`, and a `pub` qualifier, are skipped).
fn test_mod_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    for i in 0..toks.len() {
        if !(punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']'))
        {
            continue;
        }
        let mut j = i + 7;
        // Skip further attributes and visibility before the `mod`.
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            let mut depth = 0usize;
            j += 1;
            loop {
                if punct_at(toks, j, '[') {
                    depth += 1;
                } else if punct_at(toks, j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if j >= toks.len() {
                    return ranges;
                }
                j += 1;
            }
        }
        if ident_at(toks, j) == Some("pub") {
            j += 1;
        }
        if ident_at(toks, j) != Some("mod") {
            continue;
        }
        // Find the opening brace (a `mod name;` has none).
        let Some(open) = (j..toks.len().min(j + 4)).find(|&k| punct_at(toks, k, '{')) else {
            continue;
        };
        let mut depth = 0usize;
        for k in open..toks.len() {
            if punct_at(toks, k, '{') {
                depth += 1;
            } else if punct_at(toks, k, '}') {
                depth -= 1;
                if depth == 0 {
                    ranges.push((toks[open].line, toks[k].line));
                    break;
                }
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str, ctx: &FileContext) -> Vec<(Rule, u32)> {
        check_file("test.rs", src, ctx)
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn wall_clock_fires_and_respects_exemption() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            findings(src, &FileContext::default()),
            [(Rule::WallClock, 1)]
        );
        let exempt = FileContext {
            wall_clock_exempt: true,
            ..FileContext::default()
        };
        assert!(findings(src, &exempt).is_empty());
    }

    #[test]
    fn wall_clock_pragma_reaches_past_attributes() {
        let src = "fn f() {\n\
                   // detlint::allow(wall-clock, reason = \"sampled stage timer\")\n\
                   #[allow(clippy::disallowed_methods)] // sanctioned above\n\
                   let t0 = Instant::now();\n\
                   }\n";
        assert!(findings(src, &FileContext::default()).is_empty());
    }

    #[test]
    fn trailing_pragma_covers_its_own_line_only() {
        let src = "fn f() {\n\
                   let a = Instant::now(); // detlint::allow(wall-clock, reason = \"CLI elapsed\")\n\
                   let b = Instant::now();\n\
                   }\n";
        assert_eq!(
            findings(src, &FileContext::default()),
            [(Rule::WallClock, 3)]
        );
    }

    #[test]
    fn ambient_rng_catches_the_catalogue() {
        let src = "fn f() { let r = rand::thread_rng(); let x = rand::random::<u64>(); }\n";
        let got = findings(src, &FileContext::default());
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&(rule, _)| rule == Rule::AmbientRng));
        // `random` as a plain method name is not ambient.
        assert!(findings("fn f(g: &G) { g.random(); }\n", &FileContext::default()).is_empty());
    }

    #[test]
    fn unordered_iter_is_scope_gated() {
        let src = "use std::collections::HashMap;\n";
        let scoped = FileContext {
            unordered_iter_scoped: true,
            ..FileContext::default()
        };
        assert_eq!(findings(src, &scoped), [(Rule::UnorderedIter, 1)]);
        assert!(findings(src, &FileContext::default()).is_empty());
    }

    #[test]
    fn addr_as_key_needs_a_pointer_source() {
        let scoped = FileContext::default();
        assert_eq!(
            findings(
                "fn f(x: &u8) -> usize { &x as *const _ as usize }\n",
                &scoped
            ),
            [(Rule::AddrAsKey, 1)]
        );
        assert_eq!(
            findings("fn f(v: &[u8]) -> usize { v.as_ptr() as usize }\n", &scoped),
            [(Rule::AddrAsKey, 1)]
        );
        // An innocent integer cast is not a pointer key.
        assert!(findings("fn f(n: u32) -> usize { n as usize }\n", &scoped).is_empty());
    }

    #[test]
    fn stray_print_skips_tests_and_binary_roots() {
        let src = "fn f() { println!(\"x\"); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { println!(\"fine in tests\"); }\n\
                   }\n";
        assert_eq!(
            findings(src, &FileContext::default()),
            [(Rule::StrayPrint, 1)]
        );
        let binary = FileContext {
            is_binary_root: true,
            ..FileContext::default()
        };
        assert!(findings(src, &binary).is_empty());
    }

    #[test]
    fn forbid_unsafe_header_only_on_lib_roots() {
        let ctx = FileContext {
            is_lib_rs: true,
            ..FileContext::default()
        };
        assert_eq!(
            findings("pub fn f() {}\n", &ctx),
            [(Rule::ForbidUnsafeHeader, 1)]
        );
        assert!(findings("#![forbid(unsafe_code)]\npub fn f() {}\n", &ctx).is_empty());
        assert!(findings("pub fn f() {}\n", &FileContext::default()).is_empty());
    }

    #[test]
    fn bare_allow_accepts_same_line_or_line_above() {
        let ctx = FileContext::default();
        assert_eq!(
            findings("#[allow(dead_code)]\nfn f() {}\n", &ctx),
            [(Rule::BareAllow, 1)]
        );
        assert!(findings(
            "#[allow(dead_code)] // scaffolding for PR 8\nfn f() {}\n",
            &ctx
        )
        .is_empty());
        assert!(findings(
            "// the builder keeps this arity\n#[allow(dead_code)]\nfn f() {}\n",
            &ctx
        )
        .is_empty());
        // A doc comment is documentation, not a justification.
        assert_eq!(
            findings("/// docs\n#[allow(dead_code)]\nfn f() {}\n", &ctx),
            [(Rule::BareAllow, 2)]
        );
    }

    #[test]
    fn todo_is_a_stray_print() {
        let src = "fn f() { todo!() }\n";
        assert_eq!(
            findings(src, &FileContext::default()),
            [(Rule::StrayPrint, 1)]
        );
    }

    #[test]
    fn seed_provenance_flags_literals_and_traces_names() {
        let ctx = FileContext::default();
        // A literal seed in library code is the violation.
        assert_eq!(
            findings("fn f() -> StdRng { StdRng::seed_from_u64(42) }\n", &ctx),
            [(Rule::SeedProvenance, 1)]
        );
        // A seed-bearing parameter is provenance.
        assert!(findings(
            "fn f(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n",
            &ctx
        )
        .is_empty());
        // Any parameter reaching the argument is provenance, whatever
        // its name.
        assert!(findings(
            "fn f(s: u64) -> StdRng { StdRng::seed_from_u64(s ^ 0xD1FF) }\n",
            &ctx
        )
        .is_empty());
        // Config fields via `self` are provenance.
        assert!(findings(
            "impl S { fn f(&self) -> StdRng { StdRng::seed_from_u64(self.config.seed) } }\n",
            &ctx
        )
        .is_empty());
        // A local bound from a parameter keeps its provenance (one-hop
        // `let` fixpoint).
        assert!(findings(
            "fn f(s: u64) -> StdRng { let mixed = s ^ 0xABCD; StdRng::seed_from_u64(mixed) }\n",
            &ctx
        )
        .is_empty());
        // Test code picks its seeds freely.
        assert!(findings(
            "#[cfg(test)]\nmod tests {\n fn f() -> StdRng { StdRng::seed_from_u64(7) }\n}\n",
            &ctx
        )
        .is_empty());
    }

    #[test]
    fn condvar_wait_needs_a_while_guard() {
        let ctx = FileContext::default();
        let bad = "fn f(cv: &Condvar, m: &Mutex<bool>) {\n\
                   let mut g = m.lock().expect(\"m\");\n\
                   if !*g { g = cv.wait(g).expect(\"cv\"); }\n\
                   }\n";
        assert_eq!(findings(bad, &ctx), [(Rule::CondvarWaitLoop, 3)]);
        let good = "fn f(cv: &Condvar, m: &Mutex<bool>) {\n\
                    let mut g = m.lock().expect(\"m\");\n\
                    while !*g { g = cv.wait(g).expect(\"cv\"); }\n\
                    }\n";
        assert!(findings(good, &ctx).is_empty());
        // `Child::wait()` takes no guard argument and is not a condvar.
        assert!(findings(
            "fn f(c: &mut Child) { c.wait().expect(\"child\"); }\n",
            &ctx
        )
        .is_empty());
    }

    #[test]
    fn panic_surface_counts_panics_and_indexing_only() {
        let ctx = FileContext::default();
        let src = "fn f(v: &[u8], i: usize) -> u8 {\n\
                   if i > v.len() { panic!(\"oob\") }\n\
                   let x: [u8; 2] = [1, 2];\n\
                   let m = vec![1, 2];\n\
                   #[derive(Clone)]\n\
                   struct T;\n\
                   match i { 0 => unreachable!(), _ => v[i] + x[0] + m[0] }\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn t(v: &[u8]) -> u8 { v[0] } }\n";
        let report = check_file("t.rs", src, &ctx);
        // panic! + unreachable! + v[i] + x[0] + m[0]; the array type,
        // the array literal, vec![…], #[derive] and the test-mod index
        // do not count.
        assert_eq!(report.panic_count, 5);
        // Binary roots own their panics.
        let binary = FileContext {
            is_binary_root: true,
            ..FileContext::default()
        };
        assert_eq!(check_file("t.rs", src, &binary).panic_count, 0);
    }

    #[test]
    fn unwrap_counting_is_token_exact() {
        let report = check_file(
            "t.rs",
            "fn f() { a.unwrap(); /* .unwrap() */ let s = \".unwrap()\"; b.unwrap ( ) ; }\n",
            &FileContext::default(),
        );
        assert_eq!(report.unwrap_count, 2);
    }
}
